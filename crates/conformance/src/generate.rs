//! Seeded random generators for causal patterns and distributed
//! executions.
//!
//! Patterns are grown as [`Program`] ASTs over the full operator and
//! constraint grammar, rendered through the AST `Display` impls and
//! validated by [`Pattern::parse`] (retry on semantic rejects such as
//! `<->` over primitives). Executions come in three flavours: direct
//! random recording against a [`PoetServer`], scripted actors on the
//! deterministic [`SimKernel`], and the paper's random-walk/deadlock
//! workload with injected violations. With some probability a
//! *satisfying assignment* for the generated pattern is injected into
//! the execution so the positive paths of the engine get exercised,
//! not just the (overwhelmingly likely) no-match paths.

use crate::case::Case;
use ocep_pattern::{Attr, BinOp, ClassDef, Constraint, Expr, Pattern, Program};
use ocep_poet::{EventKind, PoetServer};
use ocep_rng::Rng;
use ocep_simulator::workloads::random_walk;
use ocep_simulator::{Actor, Ctx, Message, SimKernel};
use ocep_vclock::TraceId;
use std::collections::HashMap;

/// Event-type alphabet the generators draw from. Kept tiny so random
/// executions actually collide with random patterns.
const TYPES: [&str; 3] = ["a", "b", "c"];
/// Text alphabet, same rationale.
const TEXTS: [&str; 3] = ["u", "v", "w"];
/// Type used for pure synchronization messages the injector emits to
/// realize happens-before edges. Deliberately outside [`TYPES`] so a
/// sync message can never itself satisfy a leaf.
const SYNC_TY: &str = "z";

/// A generated pattern: the rendered source and its compiled form.
#[derive(Debug)]
pub struct GeneratedPattern {
    /// Rendered pattern-language source.
    pub source: String,
    /// The parsed pattern.
    pub pattern: Pattern,
}

/// Generates a random well-formed pattern over the full grammar.
///
/// Renders a random AST and keeps it only if [`Pattern::parse`]
/// accepts it, so semantic rules (entanglement needs compounds,
/// partner/limited precedence need primitives, event vars must be
/// declared) are enforced by the real front end rather than
/// re-implemented here. Falls back to a fixed known-good pattern if
/// forty attempts all get rejected — keeping the case stream flowing
/// matters more than novelty on a pathological seed.
pub fn gen_pattern(rng: &mut Rng) -> GeneratedPattern {
    for _ in 0..40 {
        let src = render(&random_program(rng));
        if let Ok(pattern) = Pattern::parse(&src) {
            if pattern.n_leaves() <= 4 {
                return GeneratedPattern {
                    source: src,
                    pattern,
                };
            }
        }
    }
    let src = "A := [*, 'a', *];\nB := [*, 'b', *];\npattern := A -> B;\n".to_string();
    let pattern = Pattern::parse(&src).expect("fallback pattern is well-formed");
    GeneratedPattern {
        source: src,
        pattern,
    }
}

/// Renders a program AST back to parseable source.
#[must_use]
pub(crate) fn render(program: &Program) -> String {
    let mut src = String::new();
    for c in &program.classes {
        src.push_str(&format!("{c};\n"));
    }
    for (class, var) in &program.event_vars {
        src.push_str(&format!("{class} ${var};\n"));
    }
    src.push_str(&format!("pattern := {};\n", program.pattern));
    src
}

fn random_attr(rng: &mut Rng, pool: &[&str], var: &str, var_p: f64, lit_p: f64) -> Attr {
    let r = rng.gen_f64();
    if r < var_p {
        Attr::Var(var.to_string())
    } else if r < var_p + lit_p {
        Attr::Literal((*rng.choose(pool).expect("pool non-empty")).to_string())
    } else {
        Attr::Wildcard
    }
}

fn random_program(rng: &mut Rng) -> Program {
    let n_classes = rng.gen_range(1..4usize);
    let trace_names = ["T0", "T1", "T2"];
    let mut classes = Vec::with_capacity(n_classes);
    for i in 0..n_classes {
        classes.push(ClassDef {
            name: format!("C{i}"),
            // Process: usually wildcard; sometimes a shared process
            // variable or a concrete trace pin.
            process: random_attr(rng, &trace_names, "p", 0.15, 0.10),
            // Type: always a literal — patterns with wildcard types
            // are legal but drown the oracle in candidates.
            ty: Attr::Literal((*rng.choose(&TYPES).expect("non-empty")).to_string()),
            // Text: wildcard-heavy, with literal and variable salt.
            text: random_attr(rng, &TEXTS, "m", 0.15, 0.25),
        });
    }
    // Occasionally declare an event variable over a random class.
    let mut event_vars = Vec::new();
    if rng.gen_bool(0.25) {
        let class = format!("C{}", rng.gen_range(0..n_classes));
        event_vars.push((class, "x".to_string()));
    }
    // Occurrences: mostly fresh class uses, sometimes the event var.
    let n_occ = rng.gen_range(2..5usize);
    let occs: Vec<Expr> = (0..n_occ)
        .map(|_| {
            if !event_vars.is_empty() && rng.gen_bool(0.3) {
                Expr::EventVar("x".to_string())
            } else {
                Expr::Class(format!("C{}", rng.gen_range(0..n_classes)))
            }
        })
        .collect();
    let pattern = random_expr(rng, &occs);
    Program {
        classes,
        event_vars,
        pattern,
    }
}

/// Folds occurrences into a random binary tree with random operators.
fn random_expr(rng: &mut Rng, occs: &[Expr]) -> Expr {
    if occs.len() == 1 {
        return occs[0].clone();
    }
    let cut = rng.gen_range(1..occs.len());
    let lhs = random_expr(rng, &occs[..cut]);
    let rhs = random_expr(rng, &occs[cut..]);
    // Weighted toward the workhorse operators; the rarer compound ops
    // are still drawn often enough to keep their code paths hot. The
    // parser rejects ill-typed uses (e.g. `<>` over compounds) and
    // `gen_pattern` simply retries.
    let op = match rng.gen_range(0..100u32) {
        0..=29 => BinOp::HappensBefore,
        30..=49 => BinOp::And,
        50..=64 => BinOp::Concurrent,
        65..=74 => BinOp::StrongPrecedes,
        75..=84 => BinOp::Partner,
        85..=92 => BinOp::Lim,
        _ => BinOp::Entangled,
    };
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// Generates one complete fuzz case: a pattern plus an execution.
pub fn gen_case(rng: &mut Rng) -> Case {
    match rng.gen_range(0..10u32) {
        0..=5 => {
            let gp = gen_pattern(rng);
            let poet = direct_execution(rng, &gp.pattern);
            Case::from_store(gp.source, poet.store())
        }
        6..=7 => {
            let gp = gen_pattern(rng);
            let poet = kernel_execution(rng, &gp.pattern);
            Case::from_store(gp.source, poet.store())
        }
        _ => workload_case(rng),
    }
}

/// Random recording directly against the tracer: local events, sends,
/// receives of pending sends, with an optional injected match.
fn direct_execution(rng: &mut Rng, pattern: &Pattern) -> PoetServer {
    let n_traces = rng.gen_range(2..5usize);
    let mut poet = PoetServer::new(n_traces);
    let steps = rng.gen_range(3..28usize);
    let inject_at = if rng.gen_bool(0.55) {
        Some(rng.gen_range(0..steps))
    } else {
        None
    };
    // Sends not yet received, as (event id, sender trace).
    let mut pending: Vec<(ocep_vclock::EventId, u32)> = Vec::new();
    for step in 0..steps {
        if Some(step) == inject_at {
            inject_match(rng, &mut poet, pattern);
        }
        let t = rng.gen_range(0..n_traces as u32);
        let ty = *rng.choose(&TYPES).expect("non-empty");
        let text = if rng.gen_bool(0.5) {
            *rng.choose(&TEXTS).expect("non-empty")
        } else {
            ""
        };
        match rng.gen_range(0..3u32) {
            0 => {
                poet.record(TraceId::new(t), EventKind::Unary, ty, text);
            }
            1 => {
                let e = poet.record(TraceId::new(t), EventKind::Send, ty, text);
                pending.push((e.id(), t));
            }
            _ => {
                // Receive a pending send on some *other* trace, if any;
                // otherwise degrade to a local event.
                let candidates: Vec<usize> =
                    (0..pending.len()).filter(|&i| pending[i].1 != t).collect();
                if let Some(&i) = rng.choose(&candidates) {
                    let (send, _) = pending.swap_remove(i);
                    poet.record_receive(TraceId::new(t), send, ty, text);
                } else {
                    poet.record(TraceId::new(t), EventKind::Unary, ty, text);
                }
            }
        }
    }
    poet
}

/// A table-driven actor for the kernel mode: a fixed start script and a
/// reaction script consumed one entry per delivered message.
struct Scripted {
    start: Vec<(Option<u32>, String, String)>,
    on_msg: Vec<(Option<u32>, String, String)>,
    next: usize,
}

impl Actor for Scripted {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (to, ty, text) in &self.start {
            match to {
                Some(t) => {
                    ctx.send_with_text(TraceId::new(*t), ty, ty, text, text);
                }
                None => {
                    ctx.local(ty, text);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, _msg: &Message, _recv: &ocep_poet::Event) {
        if let Some((to, ty, text)) = self.on_msg.get(self.next) {
            self.next += 1;
            match to {
                Some(t) => {
                    ctx.send_with_text(TraceId::new(*t), ty, ty, text, text);
                }
                None => {
                    ctx.local(ty, text);
                }
            }
        }
    }
}

/// Runs randomly scripted actors on the deterministic simulation
/// kernel, then optionally injects a match on top of the recording.
fn kernel_execution(rng: &mut Rng, pattern: &Pattern) -> PoetServer {
    let n_traces = rng.gen_range(2..4usize);
    let mut kernel = SimKernel::new(n_traces, rng.next_u64());
    for me in 0..n_traces as u32 {
        let script = |rng: &mut Rng, len: usize| -> Vec<(Option<u32>, String, String)> {
            (0..len)
                .map(|_| {
                    let ty = (*rng.choose(&TYPES).expect("non-empty")).to_string();
                    let text = (*rng.choose(&TEXTS).expect("non-empty")).to_string();
                    if rng.gen_bool(0.5) {
                        let mut to = rng.gen_range(0..n_traces as u32);
                        if to == me {
                            to = (to + 1) % n_traces as u32;
                        }
                        (Some(to), ty, text)
                    } else {
                        (None, ty, text)
                    }
                })
                .collect()
        };
        let start_len = rng.gen_range(1..4usize);
        let msg_len = rng.gen_range(0..3usize);
        kernel.add_actor(Scripted {
            start: script(rng, start_len),
            on_msg: script(rng, msg_len),
            next: 0,
        });
    }
    let mut poet = kernel.run(200);
    if rng.gen_bool(0.4) {
        inject_match(rng, &mut poet, pattern);
    }
    poet
}

/// A small instance of the paper's §V-C random-walk/deadlock workload:
/// a real multi-process computation with construction-guaranteed
/// violations and a cycle pattern over process/text attribute
/// variables.
fn workload_case(rng: &mut Rng) -> Case {
    let cycle_len = rng.gen_range(2..4usize);
    let n_processes = rng.gen_range(cycle_len..6usize.max(cycle_len + 1));
    let params = random_walk::Params {
        n_processes,
        rounds: rng.gen_range(2..6usize),
        walk_steps: rng.gen_range(0..2usize),
        cycle_len,
        deadlock_prob: 0.4,
        seed: rng.next_u64(),
    };
    let generated = random_walk::generate(&params);
    Case::from_store(generated.pattern_src.clone(), generated.poet.store())
}

/// Appends events realizing one satisfying assignment of `pattern` to
/// the recording, best-effort. Bails (leaving the recording valid but
/// unaugmented) whenever the pattern's constraints cannot be satisfied
/// by the simple construction below — the differential check does not
/// depend on injection succeeding.
fn inject_match(rng: &mut Rng, poet: &mut PoetServer, pattern: &Pattern) {
    let n = poet.n_traces();
    let k = pattern.n_leaves();
    if k == 0 || k > 6 || n == 0 {
        return;
    }

    // Happens-before obligations from the compiled constraint closure.
    let before_edge = |i: usize, j: usize| {
        pattern.rel(
            ocep_pattern::LeafId::from_index(i as u32),
            ocep_pattern::LeafId::from_index(j as u32),
        ) == Some(ocep_pattern::PairRel::Before)
    };

    // Topological order over Before edges (Kahn). The compiler rejects
    // cyclic precedence, so this always completes.
    let mut indeg = vec![0usize; k];
    for i in 0..k {
        for (j, d) in indeg.iter_mut().enumerate() {
            if i != j && before_edge(i, j) {
                *d += 1;
            }
        }
    }
    let mut order = Vec::with_capacity(k);
    let mut ready: Vec<usize> = (0..k).filter(|&i| indeg[i] == 0).collect();
    while let Some(&i) = rng.choose(&ready) {
        ready.retain(|&x| x != i);
        order.push(i);
        for (j, d) in indeg.iter_mut().enumerate() {
            if j != i && before_edge(i, j) {
                *d -= 1;
                if *d == 0 {
                    ready.push(j);
                }
            }
        }
    }
    if order.len() != k {
        return;
    }

    // Class table: leaf -> declared attributes.
    let classes: HashMap<&str, &ClassDef> = pattern
        .program()
        .classes
        .iter()
        .map(|c| (c.name.as_str(), c))
        .collect();
    let leaf_class = |i: usize| -> &ClassDef { classes[pattern.leaves()[i].class_name()] };

    // --- assign a trace to every leaf --------------------------------
    // Literal pins are forced; leaves sharing a process variable share a
    // trace; concurrent pairs need distinct traces (events on one trace
    // are totally ordered).
    let mut trace_of = vec![usize::MAX; k];
    let mut var_trace: HashMap<String, usize> = HashMap::new();
    #[allow(clippy::needless_range_loop)] // `leaf_class(i)` needs the index anyway
    for i in 0..k {
        trace_of[i] = match &leaf_class(i).process {
            Attr::Literal(s) => {
                // Only `T<n>` literals within range are realizable.
                match s.strip_prefix('T').and_then(|d| d.parse::<usize>().ok()) {
                    Some(t) if t < n => t,
                    _ => return,
                }
            }
            Attr::Var(v) => *var_trace
                .entry(v.clone())
                .or_insert_with(|| rng.gen_range(0..n)),
            Attr::Wildcard => rng.gen_range(0..n),
        };
    }
    // Repair pass: concurrent leaves that landed on one trace get moved
    // apart when the assignment is free (wildcard process only).
    for _ in 0..3 {
        let mut ok = true;
        for i in 0..k {
            for j in i + 1..k {
                let concurrent = pattern.rel(
                    ocep_pattern::LeafId::from_index(i as u32),
                    ocep_pattern::LeafId::from_index(j as u32),
                ) == Some(ocep_pattern::PairRel::Concurrent);
                if concurrent && trace_of[i] == trace_of[j] {
                    ok = false;
                    if n > 1 && matches!(leaf_class(j).process, Attr::Wildcard) {
                        trace_of[j] = (trace_of[j] + 1 + rng.gen_range(0..n - 1)) % n;
                    } else if n > 1 && matches!(leaf_class(i).process, Attr::Wildcard) {
                        trace_of[i] = (trace_of[i] + 1 + rng.gen_range(0..n - 1)) % n;
                    }
                }
            }
        }
        if ok {
            break;
        }
    }

    // --- resolve attribute values ------------------------------------
    // A variable used anywhere as a *process* attribute is bound to a
    // trace name, which its text occurrences must then repeat (the
    // random-walk cycle pattern relies on exactly this coupling).
    let mut var_value: HashMap<String, String> = HashMap::new();
    for (v, t) in &var_trace {
        var_value.insert(v.clone(), TraceId::new(*t as u32).to_string());
    }

    // Partner obligations: leaf -> (is_send, peer).
    let mut partner_send_of = vec![None; k]; // recv leaf -> send leaf
    let mut is_partner_send = vec![false; k];
    for c in pattern.constraints() {
        if let Constraint::Partner { send, recv } = c {
            partner_send_of[recv.as_usize()] = Some(send.as_usize());
            is_partner_send[send.as_usize()] = true;
            // Partner endpoints must sit on distinct traces.
            if trace_of[send.as_usize()] == trace_of[recv.as_usize()] {
                if n <= 1 {
                    return;
                }
                if matches!(leaf_class(recv.as_usize()).process, Attr::Wildcard) {
                    trace_of[recv.as_usize()] = (trace_of[recv.as_usize()] + 1) % n;
                } else if matches!(leaf_class(send.as_usize()).process, Attr::Wildcard) {
                    trace_of[send.as_usize()] = (trace_of[send.as_usize()] + 1) % n;
                } else {
                    return;
                }
            }
        }
    }

    // --- emit, in topological order ----------------------------------
    fn resolve(attr: &Attr, rng: &mut Rng, var_value: &mut HashMap<String, String>) -> String {
        match attr {
            Attr::Literal(s) => s.clone(),
            Attr::Wildcard => (*rng.choose(&TEXTS).expect("non-empty")).to_string(),
            Attr::Var(v) => var_value
                .entry(v.clone())
                .or_insert_with(|| (*rng.choose(&TEXTS).expect("non-empty")).to_string())
                .clone(),
        }
    }

    let mut emitted: Vec<Option<ocep_vclock::EventId>> = vec![None; k];
    for &i in &order {
        let t = TraceId::new(trace_of[i] as u32);
        let class = leaf_class(i);
        let ty = resolve(&class.ty, rng, &mut var_value);
        let text = resolve(&class.text, rng, &mut var_value);
        // Realize cross-trace happens-before edges with sync messages
        // (same-trace edges hold by program order since we emit in
        // topological order). The partner send, if any, carries the
        // ordering itself.
        for &j in &order {
            if j == i {
                break;
            }
            if before_edge(j, i) && trace_of[j] != trace_of[i] && partner_send_of[i] != Some(j) {
                if emitted[j].is_none() {
                    return;
                }
                // Leaf j is already on trace j, so it precedes this sync
                // send by program order; receiving the sync on trace i
                // orders it before everything later there, leaf i
                // included.
                let sync = poet.record(
                    TraceId::new(trace_of[j] as u32),
                    EventKind::Send,
                    SYNC_TY,
                    "",
                );
                poet.record_receive(t, sync.id(), SYNC_TY, "");
            }
        }
        let ev = if let Some(send_leaf) = partner_send_of[i] {
            let Some(send) = emitted[send_leaf] else {
                return;
            };
            poet.record_receive(t, send, ty.as_str(), text.as_str())
        } else if is_partner_send[i] {
            poet.record(t, EventKind::Send, ty.as_str(), text.as_str())
        } else {
            poet.record(t, EventKind::Unary, ty.as_str(), text.as_str())
        };
        emitted[i] = Some(ev.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generation_is_deterministic_and_valid() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..64 {
            let pa = gen_pattern(&mut a);
            let pb = gen_pattern(&mut b);
            assert_eq!(pa.source, pb.source);
            assert!(Pattern::parse(&pa.source).is_ok());
            assert!(pa.pattern.n_leaves() >= 1);
        }
    }

    #[test]
    fn generated_patterns_are_diverse() {
        let mut rng = Rng::seed_from_u64(0);
        let sources: std::collections::HashSet<String> =
            (0..64).map(|_| gen_pattern(&mut rng).source).collect();
        assert!(
            sources.len() > 32,
            "only {} distinct patterns",
            sources.len()
        );
    }

    #[test]
    fn cases_replay_deterministically() {
        for seed in 0..32u64 {
            let mut a = Rng::seed_from_u64(seed);
            let mut b = Rng::seed_from_u64(seed);
            let ca = gen_case(&mut a);
            let cb = gen_case(&mut b);
            assert_eq!(ca.pattern_src, cb.pattern_src);
            assert_eq!(ca.actions, cb.actions);
            // Rebuilding from actions reproduces the exact store.
            assert!(ca.build().store().content_eq(cb.build().store()));
        }
    }

    #[test]
    fn injection_produces_matches_reasonably_often() {
        use ocep_baselines::ExhaustiveMatcher;
        let mut rng = Rng::seed_from_u64(11);
        let mut matched = 0usize;
        let total = 60usize;
        for _ in 0..total {
            let case = gen_case(&mut rng);
            let Ok(pattern) = Pattern::parse(&case.pattern_src) else {
                continue;
            };
            let poet = case.build();
            let events: Vec<_> = poet.store().iter_arrival().cloned().collect();
            if ExhaustiveMatcher::new(&pattern).any_match(&events) {
                matched += 1;
            }
        }
        assert!(
            matched >= total / 6,
            "only {matched}/{total} generated cases contain a match"
        );
    }
}
