//! The differential executor: one case, four invariants.
//!
//! Truth is established by [`ExhaustiveMatcher`] over the full
//! recording; the online engine and the naive baseline must agree with
//! it, the representative subset must honor the §IV-B bound, coverage
//! cells must be justified, and re-linearizing the same partial order
//! must not change the verdict.

use crate::case::Case;
use ocep_baselines::{ExhaustiveMatcher, NaiveMatcher};
use ocep_core::{MetricsSnapshot, Monitor, MonitorConfig, ObsLevel, SubsetPolicy};
use ocep_pattern::Pattern;
use ocep_poet::{Event, Linearizer};
use ocep_vclock::EventId;
use std::collections::HashSet;
use std::fmt;

/// The invariant a mismatch violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariant {
    /// The pattern source failed to parse — only possible on replayed
    /// (hand-edited) dumps, never on generated cases.
    PatternParse,
    /// The monitor reported an assignment the oracle does not contain
    /// (false positive).
    OracleSoundness,
    /// The oracle contains a match the monitor never detected (false
    /// negative).
    OracleCompleteness,
    /// The naive per-arrival baseline disagrees with the oracle on
    /// whether a match exists.
    NaiveAgreement,
    /// The representative subset exceeded `k·n` (§IV-B).
    SubsetBound,
    /// A `(leaf, trace)` coverage cell is claimed but no oracle match
    /// justifies it.
    Coverage,
    /// A different linearization of the same partial order changed the
    /// verdict.
    Linearization,
    /// A guarded run over a fault-injected stream diverged from the
    /// clean-delivery run even though the guard could repair every
    /// injected fault (duplicates and causal-safe reorders, no drops).
    GuardTransparency,
    /// The guard's ingest counters disagree with the number of faults the
    /// harness actually injected.
    QuarantineAccounting,
    /// A monitor restored from a checkpoint diverged from the
    /// uninterrupted run over the same stream.
    CheckpointRestore,
    /// Delivery over the loopback OCWP transport diverged from
    /// in-process `observe_raw` delivery (verdicts, subsets, or ingest
    /// statistics).
    NetTransparency,
    /// Delivery through the N-shard engine core diverged from
    /// in-process `observe_raw` delivery (merged verdict order,
    /// subsets, ingest statistics, or checkpoint bytes).
    ShardTransparency,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Invariant::PatternParse => "pattern-parse",
            Invariant::OracleSoundness => "oracle-soundness",
            Invariant::OracleCompleteness => "oracle-completeness",
            Invariant::NaiveAgreement => "naive-agreement",
            Invariant::SubsetBound => "subset-bound",
            Invariant::Coverage => "coverage",
            Invariant::Linearization => "linearization",
            Invariant::GuardTransparency => "guard-transparency",
            Invariant::QuarantineAccounting => "quarantine-accounting",
            Invariant::CheckpointRestore => "checkpoint-restore",
            Invariant::NetTransparency => "net-transparency",
            Invariant::ShardTransparency => "shard-transparency",
        })
    }
}

impl Invariant {
    /// Parses the [`Display`](fmt::Display) form back (for replay
    /// metadata).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "pattern-parse" => Invariant::PatternParse,
            "oracle-soundness" => Invariant::OracleSoundness,
            "oracle-completeness" => Invariant::OracleCompleteness,
            "naive-agreement" => Invariant::NaiveAgreement,
            "subset-bound" => Invariant::SubsetBound,
            "coverage" => Invariant::Coverage,
            "linearization" => Invariant::Linearization,
            "guard-transparency" => Invariant::GuardTransparency,
            "quarantine-accounting" => Invariant::QuarantineAccounting,
            "checkpoint-restore" => Invariant::CheckpointRestore,
            "net-transparency" => Invariant::NetTransparency,
            "shard-transparency" => Invariant::ShardTransparency,
            _ => return None,
        })
    }
}

/// A violated invariant with human-readable context.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// What exactly disagreed.
    pub detail: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Knobs for one differential check.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Run the engines with §VI dedup on or off.
    pub dedup: bool,
    /// Tie-break seeds for the two extra linearizations of invariant 4.
    pub lin_seeds: [u64; 2],
    /// Worker threads for the monitors' §VI parallel trace traversal
    /// (`1` = the paper's sequential search). The invariants are
    /// parallelism-independent, so raising this exercises the worker-pool
    /// partitioning against the same oracle truth.
    pub parallelism: usize,
    /// Observability level for the monitors under test. Must never change
    /// a verdict — the metrics-transparency suite pins this by running
    /// the same cases at [`ObsLevel::Off`] and [`ObsLevel::Full`].
    pub obs: ObsLevel,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            dedup: true,
            lin_seeds: [1, 2],
            parallelism: 1,
            obs: ObsLevel::Off,
        }
    }
}

/// Statistics from a passing check.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseOutcome {
    /// Number of assignments in the oracle truth set.
    pub truth: usize,
    /// Matches the per-arrival monitor reported.
    pub reported: usize,
    /// Size of the representative subset after the run.
    pub subset: usize,
    /// Whether a match exists at all.
    pub detected: bool,
}

fn ids(events: &[Event]) -> Vec<EventId> {
    events.iter().map(Event::id).collect()
}

/// Runs one case through the online engine, the exhaustive oracle, and
/// the naive baseline, checking all four invariants.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
pub fn check_case(case: &Case, cfg: &CheckConfig) -> Result<CaseOutcome, Mismatch> {
    check_case_with_metrics(case, cfg, None)
}

/// Like [`check_case`], additionally absorbing the per-arrival and
/// representative monitors' [`Monitor::metrics`] snapshots into `metrics`
/// (when given) so callers can export what a fuzz run observed.
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
pub fn check_case_with_metrics(
    case: &Case,
    cfg: &CheckConfig,
    mut metrics: Option<&mut MetricsSnapshot>,
) -> Result<CaseOutcome, Mismatch> {
    let parse = || {
        Pattern::parse(&case.pattern_src).map_err(|e| Mismatch {
            invariant: Invariant::PatternParse,
            detail: format!("{e:?}"),
        })
    };
    let pattern = parse()?;
    let poet = case.build();
    let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();

    // --- ground truth ------------------------------------------------
    let truth = ExhaustiveMatcher::new(&pattern).matches(&events);
    let truth_ids: HashSet<Vec<EventId>> = truth.iter().map(|a| ids(a)).collect();
    let exists = !truth.is_empty();

    // --- invariant 1a: per-arrival monitor vs oracle -----------------
    let mut per_arrival = Monitor::with_config(
        parse()?,
        case.n_traces,
        MonitorConfig {
            dedup: cfg.dedup,
            policy: SubsetPolicy::PerArrival,
            parallelism: cfg.parallelism,
            obs: cfg.obs,
            ..MonitorConfig::default()
        },
    );
    let mut reported = 0usize;
    for e in &events {
        for m in per_arrival.observe(e) {
            reported += 1;
            let got = ids(m.events());
            if !truth_ids.contains(&got) {
                return Err(Mismatch {
                    invariant: Invariant::OracleSoundness,
                    detail: format!(
                        "monitor reported {got:?} which is not among the {} oracle assignments",
                        truth.len()
                    ),
                });
            }
        }
    }
    if let Some(sink) = metrics.as_deref_mut() {
        sink.absorb(&per_arrival.metrics());
    }
    if exists && reported == 0 {
        return Err(Mismatch {
            invariant: Invariant::OracleCompleteness,
            detail: format!(
                "oracle holds {} assignments but the monitor reported none",
                truth.len()
            ),
        });
    }

    // --- invariant 1b: naive baseline agreement ----------------------
    let mut naive = NaiveMatcher::new(parse()?, case.n_traces);
    let mut naive_detected = false;
    for e in &events {
        naive_detected |= naive.observe(e);
    }
    if naive_detected != exists {
        return Err(Mismatch {
            invariant: Invariant::NaiveAgreement,
            detail: format!(
                "naive baseline detected={naive_detected}, oracle match exists={exists}"
            ),
        });
    }

    // --- invariants 2 + 3: representative subset ---------------------
    let mut representative = Monitor::with_config(
        parse()?,
        case.n_traces,
        MonitorConfig {
            dedup: cfg.dedup,
            policy: SubsetPolicy::Representative,
            parallelism: cfg.parallelism,
            obs: cfg.obs,
            ..MonitorConfig::default()
        },
    );
    let mut rep_reported = 0usize;
    for e in &events {
        for m in representative.observe(e) {
            rep_reported += 1;
            let got = ids(m.events());
            if !truth_ids.contains(&got) {
                return Err(Mismatch {
                    invariant: Invariant::OracleSoundness,
                    detail: format!("representative monitor reported non-oracle match {got:?}"),
                });
            }
        }
    }
    if let Some(sink) = metrics {
        sink.absorb(&representative.metrics());
    }
    let bound = pattern.n_leaves() * case.n_traces;
    if rep_reported > bound {
        return Err(Mismatch {
            invariant: Invariant::SubsetBound,
            detail: format!(
                "representative policy reported {rep_reported} matches, k*n bound is {bound}"
            ),
        });
    }
    let subset = representative.subset().len();
    if subset > bound {
        return Err(Mismatch {
            invariant: Invariant::SubsetBound,
            detail: format!("maintained subset holds {subset} matches, k*n bound is {bound}"),
        });
    }
    if exists && rep_reported == 0 {
        return Err(Mismatch {
            invariant: Invariant::OracleCompleteness,
            detail: "representative monitor missed an existing match".to_string(),
        });
    }
    for leaf in pattern.leaves() {
        // `covers` resolves a name to every leaf whose display *or*
        // class name matches (so "C" covers both occurrences of a
        // repeated class); mirror that group here.
        let name = leaf.display_name();
        let group: Vec<usize> = pattern
            .leaves()
            .iter()
            .filter(|l| l.display_name() == name || l.class_name() == name)
            .map(|l| l.id().as_usize())
            .collect();
        for t in 0..case.n_traces as u32 {
            let trace = ocep_vclock::TraceId::new(t);
            if representative.covers(name, trace)
                && !truth
                    .iter()
                    .any(|a| group.iter().any(|&li| a[li].trace() == trace))
            {
                return Err(Mismatch {
                    invariant: Invariant::Coverage,
                    detail: format!(
                        "cell ({name}, T{t}) claimed covered but no oracle match places \
                         any such leaf on that trace"
                    ),
                });
            }
        }
    }

    // --- invariant 4: linearization invariance -----------------------
    for &seed in &cfg.lin_seeds {
        let lin = Linearizer::new(poet.store()).with_seed(seed).linearize();
        let mut mon = Monitor::with_config(
            parse()?,
            case.n_traces,
            MonitorConfig {
                dedup: cfg.dedup,
                policy: SubsetPolicy::PerArrival,
                parallelism: cfg.parallelism,
                obs: cfg.obs,
                ..MonitorConfig::default()
            },
        );
        let mut detected = false;
        for e in &lin {
            for m in mon.observe(e) {
                detected = true;
                let got = ids(m.events());
                if !truth_ids.contains(&got) {
                    return Err(Mismatch {
                        invariant: Invariant::Linearization,
                        detail: format!(
                            "under tie-break seed {seed} the monitor reported non-oracle \
                             match {got:?}"
                        ),
                    });
                }
            }
        }
        if detected != exists {
            return Err(Mismatch {
                invariant: Invariant::Linearization,
                detail: format!(
                    "verdict flipped under tie-break seed {seed}: detected={detected}, \
                     oracle={exists}"
                ),
            });
        }
    }

    Ok(CaseOutcome {
        truth: truth.len(),
        reported,
        subset,
        detected: exists,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Action;

    fn matching_case() -> Case {
        Case {
            pattern_src: "A := [*, 'a', *];\nB := [*, 'b', *];\npattern := A -> B;\n".into(),
            n_traces: 2,
            actions: vec![
                Action::Send {
                    trace: 0,
                    ty: "a".into(),
                    text: "".into(),
                },
                Action::Receive {
                    trace: 1,
                    sender: 0,
                    ty: "b".into(),
                    text: "".into(),
                },
            ],
        }
    }

    #[test]
    fn a_matching_case_passes_all_invariants() {
        let outcome = check_case(&matching_case(), &CheckConfig::default()).unwrap();
        assert!(outcome.detected);
        assert_eq!(outcome.truth, 1);
        assert!(outcome.reported >= 1);
    }

    #[test]
    fn a_non_matching_case_passes_too() {
        let case = Case {
            pattern_src: "A := [*, 'a', *];\nB := [*, 'b', *];\npattern := B -> A;\n".into(),
            ..matching_case()
        };
        let outcome = check_case(&case, &CheckConfig::default()).unwrap();
        assert!(!outcome.detected);
        assert_eq!(outcome.truth, 0);
    }

    #[test]
    fn parse_failure_is_reported_not_panicked() {
        let case = Case {
            pattern_src: "pattern := ;".into(),
            n_traces: 1,
            actions: vec![],
        };
        let err = check_case(&case, &CheckConfig::default()).unwrap_err();
        assert_eq!(err.invariant, Invariant::PatternParse);
    }

    #[test]
    fn invariant_names_round_trip() {
        for inv in [
            Invariant::PatternParse,
            Invariant::OracleSoundness,
            Invariant::OracleCompleteness,
            Invariant::NaiveAgreement,
            Invariant::SubsetBound,
            Invariant::Coverage,
            Invariant::Linearization,
            Invariant::GuardTransparency,
            Invariant::QuarantineAccounting,
            Invariant::CheckpointRestore,
            Invariant::NetTransparency,
            Invariant::ShardTransparency,
        ] {
            assert_eq!(Invariant::from_name(&inv.to_string()), Some(inv));
        }
    }
}
