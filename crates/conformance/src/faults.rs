//! Fault injection: seeded transport-level perturbation of a clean
//! linearization, differentially checked against the admission guard.
//!
//! A [`FaultPlan`] perturbs the arrival stream the way a lossy transport
//! would — duplicates, reorders, drops, and corrupt-clock garbage — all
//! derived from one seed. The harness then runs the *same* case twice:
//! once clean and unguarded, once faulted through a monitor fronted by
//! an [`AdmissionGuard`](ocep_core::AdmissionGuard), and demands:
//!
//! * **Guard transparency** — for repairable plans (duplicates plus
//!   causal-safe reorders, no drops) the guarded run's reported matches,
//!   representative subset, coverage cells, and history are *identical*
//!   to the clean run's. Causal-safe reorders only displace an event
//!   behind followers that causally depend on it, so the guard's
//!   deliverability rule provably restores the exact clean order.
//! * **Linearization-level transparency** — for arbitrary in-window
//!   shuffles the guard still delivers *some* causal linearization, so
//!   the detection verdict must not change (the same invariance the
//!   clean fuzzer checks across tie-break seeds).
//! * **Quarantine accounting** — every injected corrupt-clock event is
//!   quarantined and counted, exactly; every injected duplicate is
//!   dropped, exactly; nothing is silently lost.
//! * **No panics** — degraded plans (with drops, exercising every
//!   overflow policy) must still terminate with consistent counters.
//!
//! Checkpoint/restore rides the same differential style:
//! [`check_checkpoint_restart`] cuts a run mid-stream, round-trips the
//! monitor through [`Monitor::checkpoint`], and requires the resumed
//! run to be indistinguishable — down to byte-identical final
//! checkpoints — from the uninterrupted one.

use crate::case::Case;
use crate::diff::{CheckConfig, Invariant, Mismatch};
use crate::fuzz::{case_seed, nth_case};
use ocep_core::{GuardConfig, Monitor, MonitorConfig, OverflowPolicy, SubsetPolicy};
use ocep_pattern::Pattern;
use ocep_poet::{Event, EventKind};
use ocep_rng::Rng;
use ocep_vclock::{EventId, EventIndex, StampedEvent, TraceId, VectorClock};

/// Salt mixed into [`case_seed`] so a fault plan's randomness is
/// independent of the case generator's.
const FAULT_SALT: u64 = 0x8f5c_28f5_c28f_5c29;

/// How injected reorders displace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderMode {
    /// Delay an event only behind followers that causally depend on it.
    /// The guard provably restores the exact original order, so the
    /// differential check demands full equality.
    #[default]
    CausalSafe,
    /// Shuffle disjoint windows arbitrarily. The guard restores *a*
    /// causal linearization (not necessarily the original), so only the
    /// detection verdict is compared.
    Arbitrary,
}

impl std::fmt::Display for ReorderMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReorderMode::CausalSafe => "causal-safe",
            ReorderMode::Arbitrary => "arbitrary",
        })
    }
}

impl ReorderMode {
    /// Parses the [`Display`](std::fmt::Display) form (for replay
    /// metadata).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "causal-safe" => ReorderMode::CausalSafe,
            "arbitrary" => ReorderMode::Arbitrary,
            _ => return None,
        })
    }
}

/// A seeded description of transport faults to inject into a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault-injection randomness.
    pub seed: u64,
    /// Per-event probability of re-sending a copy at a later offset.
    pub duplicate_p: f64,
    /// Maximum displacement window for reorders (`0` disables them).
    pub reorder_window: usize,
    /// How reorders displace events.
    pub reorder: ReorderMode,
    /// Per-event probability of losing the event entirely. Non-zero
    /// plans are *degraded*: the differential check relaxes to
    /// accounting consistency and panic-freedom.
    pub drop_p: f64,
    /// Per-event probability of injecting an additional corrupt-clock
    /// event next to it (never replacing it).
    pub corrupt_clock_p: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            duplicate_p: 0.1,
            reorder_window: 3,
            reorder: ReorderMode::CausalSafe,
            drop_p: 0.0,
            corrupt_clock_p: 0.05,
        }
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={} dup={:.3} reorder={}x{} drop={:.3} corrupt={:.3}",
            self.seed,
            self.duplicate_p,
            self.reorder,
            self.reorder_window,
            self.drop_p,
            self.corrupt_clock_p
        )
    }
}

/// Exact counts of the faults a plan injected into one stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Duplicate copies inserted after their originals.
    pub duplicates: u64,
    /// Reorder displacements performed (windows, not events).
    pub reorders: u64,
    /// Events removed from the stream.
    pub drops: u64,
    /// Corrupt-clock events inserted.
    pub corrupt: u64,
}

/// Synthesizes one guaranteed-invalid event near `template`: an
/// out-of-range trace id, a wrong clock dimension, or a Fidge-violating
/// own-trace entry — one of the three categories the guard quarantines.
fn corrupt_event(template: &Event, n_traces: usize, rng: &mut Rng) -> Event {
    let stamp = match rng.gen_range(0u32..3) {
        0 => {
            // Trace id outside the computation.
            let bad = TraceId::new(n_traces as u32 + rng.gen_range(0u32..4));
            StampedEvent::new_unchecked(
                EventId::new(bad, EventIndex::new(1)),
                VectorClock::new(n_traces),
            )
        }
        1 => {
            // Clock of the wrong dimension.
            StampedEvent::new_unchecked(template.id(), VectorClock::new(n_traces + 1))
        }
        _ => {
            // Own-trace entry disagrees with the index.
            let mut entries = template.clock().entries().to_vec();
            entries[template.trace().as_usize()] += 7;
            StampedEvent::new_unchecked(template.id(), VectorClock::from_entries(entries))
        }
    };
    Event::new(stamp, EventKind::Unary, "corrupt", "", None)
}

/// Applies `plan` to a clean arrival stream, returning the perturbed
/// stream and the exact injected-fault counts.
///
/// Fault order is fixed — reorder, drop, duplicate, corrupt — so that
/// duplicates always copy surviving events and corrupt events are purely
/// additive; this is what makes the accounting in [`check_fault_case`]
/// exact.
#[must_use]
pub fn apply_faults(
    events: &[Event],
    n_traces: usize,
    plan: &FaultPlan,
) -> (Vec<Event>, InjectedFaults) {
    let mut rng = Rng::seed_from_u64(plan.seed);
    let mut injected = InjectedFaults::default();
    let mut out: Vec<Event> = events.to_vec();

    // --- reorders in disjoint windows --------------------------------
    if plan.reorder_window > 0 {
        let mut i = 0;
        while i < out.len() {
            if !rng.gen_bool(0.5) {
                i += 1;
                continue;
            }
            match plan.reorder {
                ReorderMode::CausalSafe => {
                    // Displace out[i] behind the longest run of followers
                    // that all causally depend on it (O(1) per test).
                    let mut d = 0;
                    while d < plan.reorder_window
                        && i + d + 1 < out.len()
                        && out[i].stamp().happens_before(out[i + d + 1].stamp())
                    {
                        d += 1;
                    }
                    if d > 0 {
                        out[i..=i + d].rotate_left(1);
                        injected.reorders += 1;
                        i += d; // windows stay disjoint
                    }
                }
                ReorderMode::Arbitrary => {
                    let end = (i + plan.reorder_window + 1).min(out.len());
                    if end - i > 1 {
                        rng.shuffle(&mut out[i..end]);
                        injected.reorders += 1;
                        i = end - 1;
                    }
                }
            }
            i += 1;
        }
    }

    // --- drops -------------------------------------------------------
    if plan.drop_p > 0.0 {
        let mut i = 0;
        while i < out.len() {
            if rng.gen_bool(plan.drop_p) {
                out.remove(i);
                injected.drops += 1;
            } else {
                i += 1;
            }
        }
    }

    // --- duplicates (strictly after their originals) -----------------
    if plan.duplicate_p > 0.0 {
        let mut inserts: Vec<(usize, Event)> = Vec::new();
        for (i, e) in out.iter().enumerate() {
            if rng.gen_bool(plan.duplicate_p) {
                let offset = rng.gen_range(1usize..plan.reorder_window.max(1) + 4);
                inserts.push(((i + offset).min(out.len()), e.clone()));
            }
        }
        // Insert back-to-front so earlier positions stay valid; every
        // copy lands at an index strictly greater than its original's.
        for (p, e) in inserts.into_iter().rev() {
            out.insert(p, e);
            injected.duplicates += 1;
        }
    }

    // --- corrupt-clock events (additive, never replacing) ------------
    if plan.corrupt_clock_p > 0.0 && !out.is_empty() {
        let mut inserts: Vec<(usize, Event)> = Vec::new();
        for (i, e) in out.iter().enumerate() {
            if rng.gen_bool(plan.corrupt_clock_p) {
                let ev = corrupt_event(e, n_traces, &mut rng);
                inserts.push((i, ev));
            }
        }
        for (p, e) in inserts.into_iter().rev() {
            out.insert(p, e);
            injected.corrupt += 1;
        }
    }

    (out, injected)
}

/// Statistics from a passing fault check.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultOutcome {
    /// What the plan actually injected.
    pub injected: InjectedFaults,
    /// Matches the clean run reported.
    pub clean_reported: usize,
    /// Whether a match was detected (identical on both sides).
    pub detected: bool,
    /// Events the guard quarantined (equals `injected.corrupt` on
    /// non-degraded plans).
    pub quarantined: u64,
    /// Whether the guarded run ended in degraded mode.
    pub degraded: bool,
}

fn parse_pattern(case: &Case) -> Result<Pattern, Mismatch> {
    Pattern::parse(&case.pattern_src).map_err(|e| Mismatch {
        invariant: Invariant::PatternParse,
        detail: format!("{e:?}"),
    })
}

fn monitor_for(
    case: &Case,
    cfg: &CheckConfig,
    guard: Option<GuardConfig>,
) -> Result<Monitor, Mismatch> {
    Ok(Monitor::with_config(
        parse_pattern(case)?,
        case.n_traces,
        MonitorConfig {
            dedup: cfg.dedup,
            policy: SubsetPolicy::Representative,
            parallelism: cfg.parallelism,
            guard,
            ..MonitorConfig::default()
        },
    ))
}

fn sorted_subset(m: &Monitor) -> Vec<String> {
    let mut out: Vec<String> = m.subset().iter().map(|m| m.to_string()).collect();
    out.sort();
    out
}

fn coverage_cells(m: &Monitor, n_traces: usize) -> Vec<(String, u32)> {
    let mut cells = Vec::new();
    for leaf in m.pattern().leaves() {
        let name = leaf.display_name().to_string();
        for t in 0..n_traces as u32 {
            if m.covers(&name, TraceId::new(t)) {
                cells.push((name.clone(), t));
            }
        }
    }
    cells
}

/// Runs one case clean and one fault-injected-but-guarded, checking
/// guard transparency and quarantine accounting (see the module docs).
///
/// # Errors
///
/// Returns the first [`Mismatch`] found.
pub fn check_fault_case(
    case: &Case,
    cfg: &CheckConfig,
    plan: &FaultPlan,
) -> Result<FaultOutcome, Mismatch> {
    let poet = case.build();
    let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();
    let (faulted, injected) = apply_faults(&events, case.n_traces, plan);

    // --- clean, unguarded reference ----------------------------------
    let mut clean = monitor_for(case, cfg, None)?;
    let mut clean_verdicts: Vec<String> = Vec::new();
    for e in &events {
        for m in clean.observe(e) {
            clean_verdicts.push(m.to_string());
        }
    }

    // --- guarded run over the faulted stream -------------------------
    // Capacity comfortably exceeds the worst premature backlog a
    // repairable plan can create (one reorder window's worth).
    let guard_cfg = GuardConfig {
        capacity: (2 * plan.reorder_window + 16).max(32),
        overflow: degraded_policy(plan),
    };
    let mut guarded = monitor_for(case, cfg, Some(guard_cfg))?;
    let mut guarded_verdicts: Vec<String> = Vec::new();
    for e in &faulted {
        for m in guarded.observe(e) {
            guarded_verdicts.push(m.to_string());
        }
    }
    for m in guarded.flush_guard() {
        guarded_verdicts.push(m.to_string());
    }
    let ingest = guarded.stats().ingest;

    // --- quarantine accounting (all plans) ---------------------------
    if ingest.quarantined() != injected.corrupt {
        return Err(Mismatch {
            invariant: Invariant::QuarantineAccounting,
            detail: format!(
                "injected {} corrupt events but the guard quarantined {} \
                 (trace-range {}, clock-width {}, non-monotone {})",
                injected.corrupt,
                ingest.quarantined(),
                ingest.quarantined_trace_range,
                ingest.quarantined_clock_width,
                ingest.quarantined_non_monotone
            ),
        });
    }

    if plan.drop_p > 0.0 {
        // Degraded plan: the stream genuinely lost information, so the
        // only demands are panic-freedom (we got here) and conservation:
        // every valid event is admitted (degraded flushes deliver through
        // the same path), dropped as a duplicate, lost to the overflow
        // policy, or still buffered.
        let sent = faulted.len() as u64 - injected.corrupt;
        let accounted = ingest.admitted
            + ingest.duplicates_dropped
            + ingest.overflow_rejected
            + ingest.overflow_dropped
            + guarded.guard().map_or(0, |g| g.buffered() as u64);
        if accounted != sent {
            return Err(Mismatch {
                invariant: Invariant::QuarantineAccounting,
                detail: format!(
                    "degraded plan: {sent} valid events sent but only {accounted} accounted \
                     for (admitted {}, dup-dropped {}, rejected {}, evicted {})",
                    ingest.admitted,
                    ingest.duplicates_dropped,
                    ingest.overflow_rejected,
                    ingest.overflow_dropped
                ),
            });
        }
        return Ok(FaultOutcome {
            injected,
            clean_reported: clean_verdicts.len(),
            detected: !clean_verdicts.is_empty(),
            quarantined: ingest.quarantined(),
            degraded: guarded.ingest_degraded(),
        });
    }

    // --- repairable plans: exact accounting --------------------------
    if ingest.duplicates_dropped != injected.duplicates {
        return Err(Mismatch {
            invariant: Invariant::QuarantineAccounting,
            detail: format!(
                "injected {} duplicates but the guard dropped {}",
                injected.duplicates, ingest.duplicates_dropped
            ),
        });
    }
    if ingest.admitted != events.len() as u64 {
        return Err(Mismatch {
            invariant: Invariant::QuarantineAccounting,
            detail: format!(
                "{} clean events but the guard admitted {}",
                events.len(),
                ingest.admitted
            ),
        });
    }
    let leftover = guarded.guard().map_or(0, |g| g.buffered());
    if leftover != 0 {
        return Err(Mismatch {
            invariant: Invariant::GuardTransparency,
            detail: format!("{leftover} events still buffered after a complete, no-drop stream"),
        });
    }

    // --- guard transparency ------------------------------------------
    match plan.reorder {
        ReorderMode::CausalSafe => {
            // The guard restores the exact clean order: everything the
            // monitor computes must be identical, in order.
            if clean_verdicts != guarded_verdicts {
                return Err(Mismatch {
                    invariant: Invariant::GuardTransparency,
                    detail: format!(
                        "reported matches diverged: clean {clean_verdicts:?} vs guarded \
                         {guarded_verdicts:?}"
                    ),
                });
            }
            if sorted_subset(&clean) != sorted_subset(&guarded) {
                return Err(Mismatch {
                    invariant: Invariant::GuardTransparency,
                    detail: "representative subsets diverged".to_string(),
                });
            }
            if coverage_cells(&clean, case.n_traces) != coverage_cells(&guarded, case.n_traces) {
                return Err(Mismatch {
                    invariant: Invariant::GuardTransparency,
                    detail: "coverage cells diverged".to_string(),
                });
            }
            if clean.history_size() != guarded.history_size() {
                return Err(Mismatch {
                    invariant: Invariant::GuardTransparency,
                    detail: format!(
                        "history size diverged: clean {} vs guarded {}",
                        clean.history_size(),
                        guarded.history_size()
                    ),
                });
            }
        }
        ReorderMode::Arbitrary => {
            // The guard delivered *some* causal linearization; the
            // verdict is linearization-invariant.
            if clean_verdicts.is_empty() != guarded_verdicts.is_empty() {
                return Err(Mismatch {
                    invariant: Invariant::GuardTransparency,
                    detail: format!(
                        "verdict flipped under arbitrary reorder: clean detected={}, \
                         guarded detected={}",
                        !clean_verdicts.is_empty(),
                        !guarded_verdicts.is_empty()
                    ),
                });
            }
        }
    }

    Ok(FaultOutcome {
        injected,
        clean_reported: clean_verdicts.len(),
        detected: !clean_verdicts.is_empty(),
        quarantined: ingest.quarantined(),
        degraded: guarded.ingest_degraded(),
    })
}

/// Overflow policy a degraded plan exercises, rotated by seed so the
/// fuzzer covers all three.
fn degraded_policy(plan: &FaultPlan) -> OverflowPolicy {
    if plan.drop_p == 0.0 {
        return OverflowPolicy::Reject;
    }
    match plan.seed % 3 {
        0 => OverflowPolicy::Reject,
        1 => OverflowPolicy::DropOldest,
        _ => OverflowPolicy::FlushDegraded,
    }
}

/// Cuts a run at `cut`, round-trips the monitor through a checkpoint,
/// resumes, and compares against the uninterrupted run — per-arrival
/// verdicts, final subset, and byte-identical final checkpoints.
///
/// # Errors
///
/// Returns a [`Mismatch`] (invariant `checkpoint-restore`) on any
/// divergence, including a checkpoint that fails to decode.
pub fn check_checkpoint_restart(
    case: &Case,
    cfg: &CheckConfig,
    cut: usize,
) -> Result<(), Mismatch> {
    let poet = case.build();
    let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();
    let cut = cut.min(events.len());

    let guard = Some(GuardConfig::default());
    let mut straight = monitor_for(case, cfg, guard)?;
    let mut resumed = monitor_for(case, cfg, guard)?;

    let mut straight_verdicts: Vec<String> = Vec::new();
    let mut resumed_verdicts: Vec<String> = Vec::new();
    for e in &events[..cut] {
        straight_verdicts.extend(straight.observe(e).iter().map(ToString::to_string));
        resumed_verdicts.extend(resumed.observe(e).iter().map(ToString::to_string));
    }

    let bytes = resumed.checkpoint(&case.pattern_src);
    let (mut resumed, src) = Monitor::restore(&bytes).map_err(|e| Mismatch {
        invariant: Invariant::CheckpointRestore,
        detail: format!("checkpoint failed to restore: {e}"),
    })?;
    if src != case.pattern_src {
        return Err(Mismatch {
            invariant: Invariant::CheckpointRestore,
            detail: "embedded pattern source changed across the round trip".to_string(),
        });
    }

    for e in &events[cut..] {
        straight_verdicts.extend(straight.observe(e).iter().map(ToString::to_string));
        resumed_verdicts.extend(resumed.observe(e).iter().map(ToString::to_string));
    }

    if straight_verdicts != resumed_verdicts {
        return Err(Mismatch {
            invariant: Invariant::CheckpointRestore,
            detail: format!(
                "verdicts diverged after restart at event {cut}: straight \
                 {straight_verdicts:?} vs resumed {resumed_verdicts:?}"
            ),
        });
    }
    if sorted_subset(&straight) != sorted_subset(&resumed) {
        return Err(Mismatch {
            invariant: Invariant::CheckpointRestore,
            detail: format!("final subsets diverged after restart at event {cut}"),
        });
    }
    let a = straight.checkpoint(&case.pattern_src);
    let b = resumed.checkpoint(&case.pattern_src);
    if a != b {
        return Err(Mismatch {
            invariant: Invariant::CheckpointRestore,
            detail: format!(
                "final checkpoints are not bit-identical after restart at event {cut} \
                 ({} vs {} bytes)",
                a.len(),
                b.len()
            ),
        });
    }
    Ok(())
}

/// Configuration for one fault-injection fuzz run.
#[derive(Debug, Clone)]
pub struct FaultFuzzConfig {
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Number of cases to generate, perturb, and check.
    pub cases: usize,
    /// Stop after this many failures (0 means never stop early).
    pub max_failures: usize,
}

impl Default for FaultFuzzConfig {
    fn default() -> Self {
        FaultFuzzConfig {
            seed: 0,
            cases: 200,
            max_failures: 5,
        }
    }
}

/// One failed fault-differential case. Fault cases replay directly from
/// `(master seed, index)` via [`nth_fault_case`], so no shrink/dump
/// machinery is needed.
#[derive(Debug)]
pub struct FaultFailure {
    /// Index of the failing case within the run.
    pub case_index: usize,
    /// The derived per-case seed.
    pub case_seed: u64,
    /// The plan that was injected.
    pub plan: FaultPlan,
    /// The violated invariant and its context.
    pub mismatch: Mismatch,
}

/// Aggregate result of a fault-injection fuzz run.
#[derive(Debug, Default)]
pub struct FaultFuzzReport {
    /// Cases actually executed.
    pub cases_run: usize,
    /// Cases whose clean run detected a match.
    pub detected: usize,
    /// Sum of all injected fault counts across the run.
    pub injected: InjectedFaults,
    /// Cases run with a degraded (lossy) plan.
    pub degraded_cases: usize,
    /// All failures, in case order.
    pub failures: Vec<FaultFailure>,
}

/// Generates the `i`-th fault case of a run: the same case and check
/// config as [`nth_case`] (forced sequential) plus a derived plan.
/// Every 4th case is degraded (non-zero drop probability) to exercise
/// the overflow policies; the rest are repairable and checked strictly.
#[must_use]
pub fn nth_fault_case(master: u64, i: usize) -> (Case, CheckConfig, FaultPlan) {
    let (case, mut cfg) = nth_case(master, i);
    // The pool is exercised by the clean fuzzer; fault differentials
    // compare exact report orders, so keep both sides sequential.
    cfg.parallelism = 1;
    let mut rng = Rng::seed_from_u64(case_seed(master, i) ^ FAULT_SALT);
    let degraded = i % 4 == 3;
    let plan = FaultPlan {
        seed: rng.next_u64(),
        duplicate_p: 0.3 * rng.gen_f64(),
        reorder_window: rng.gen_range(0usize..6),
        reorder: if rng.gen_bool(0.25) {
            ReorderMode::Arbitrary
        } else {
            ReorderMode::CausalSafe
        },
        drop_p: if degraded {
            0.05 + 0.15 * rng.gen_f64()
        } else {
            0.0
        },
        corrupt_clock_p: 0.15 * rng.gen_f64(),
    };
    (case, cfg, plan)
}

/// Runs `cfg.cases` fault-differential checks. `on_case` observes every
/// case result (for CLI progress).
pub fn run_fault_fuzz(
    cfg: &FaultFuzzConfig,
    mut on_case: impl FnMut(usize, &Result<FaultOutcome, Mismatch>),
) -> FaultFuzzReport {
    let mut report = FaultFuzzReport::default();
    for i in 0..cfg.cases {
        let (case, check_cfg, plan) = nth_fault_case(cfg.seed, i);
        let result = check_fault_case(&case, &check_cfg, &plan);
        report.cases_run += 1;
        on_case(i, &result);
        match result {
            Ok(outcome) => {
                if outcome.detected {
                    report.detected += 1;
                }
                if plan.drop_p > 0.0 {
                    report.degraded_cases += 1;
                }
                report.injected.duplicates += outcome.injected.duplicates;
                report.injected.reorders += outcome.injected.reorders;
                report.injected.drops += outcome.injected.drops;
                report.injected.corrupt += outcome.injected.corrupt;
            }
            Err(mismatch) => {
                report.failures.push(FaultFailure {
                    case_index: i,
                    case_seed: case_seed(cfg.seed, i),
                    plan,
                    mismatch,
                });
                if cfg.max_failures != 0 && report.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Action;

    fn message_case() -> Case {
        Case {
            pattern_src: "A := [*, 'a', *];\nB := [*, 'b', *];\npattern := A -> B;\n".into(),
            n_traces: 2,
            actions: vec![
                Action::Send {
                    trace: 0,
                    ty: "a".into(),
                    text: "".into(),
                },
                Action::Local {
                    trace: 0,
                    ty: "x".into(),
                    text: "".into(),
                },
                Action::Receive {
                    trace: 1,
                    sender: 0,
                    ty: "b".into(),
                    text: "".into(),
                },
                Action::Local {
                    trace: 1,
                    ty: "b".into(),
                    text: "tail".into(),
                },
            ],
        }
    }

    #[test]
    fn apply_faults_is_reproducible_and_additive() {
        let case = message_case();
        let poet = case.build();
        let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let plan = FaultPlan {
            seed: 42,
            duplicate_p: 0.5,
            reorder_window: 2,
            corrupt_clock_p: 0.5,
            ..FaultPlan::default()
        };
        let (a, ia) = apply_faults(&events, case.n_traces, &plan);
        let (b, ib) = apply_faults(&events, case.n_traces, &plan);
        assert_eq!(ia, ib);
        assert_eq!(
            a.iter().map(ToString::to_string).collect::<Vec<_>>(),
            b.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        assert_eq!(
            a.len(),
            events.len() + ia.duplicates as usize + ia.corrupt as usize
        );
    }

    #[test]
    fn causal_safe_reorder_only_displaces_behind_dependents() {
        let case = message_case();
        let poet = case.build();
        let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let plan = FaultPlan {
            seed: 7,
            duplicate_p: 0.0,
            reorder_window: 3,
            corrupt_clock_p: 0.0,
            ..FaultPlan::default()
        };
        let (faulted, _) = apply_faults(&events, case.n_traces, &plan);
        // Same multiset of events, possibly different order.
        let mut a: Vec<String> = events.iter().map(ToString::to_string).collect();
        let mut b: Vec<String> = faulted.iter().map(ToString::to_string).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Every displaced event only moved behind followers that depend
        // on it: in the faulted stream, whenever x precedes y but was
        // after y in the clean stream, y must happen-before x.
        for (i, x) in faulted.iter().enumerate() {
            for y in &faulted[i + 1..] {
                let clean_x = events.iter().position(|e| e.id() == x.id()).unwrap();
                let clean_y = events.iter().position(|e| e.id() == y.id()).unwrap();
                if clean_y < clean_x {
                    assert!(
                        y.stamp().happens_before(x.stamp()),
                        "unsafe displacement: {} overtaken by non-dependent {}",
                        x.id(),
                        y.id()
                    );
                }
            }
        }
    }

    #[test]
    fn a_repairable_plan_is_transparent() {
        let plan = FaultPlan {
            seed: 3,
            duplicate_p: 0.4,
            reorder_window: 3,
            corrupt_clock_p: 0.3,
            ..FaultPlan::default()
        };
        let outcome = check_fault_case(&message_case(), &CheckConfig::default(), &plan).unwrap();
        assert!(outcome.detected);
        assert_eq!(outcome.quarantined, outcome.injected.corrupt);
    }

    #[test]
    fn checkpoint_restart_is_indistinguishable() {
        let case = message_case();
        for cut in 0..=4 {
            check_checkpoint_restart(&case, &CheckConfig::default(), cut)
                .unwrap_or_else(|m| panic!("cut {cut}: {m}"));
        }
    }

    #[test]
    fn fault_runs_are_reproducible() {
        let cfg = FaultFuzzConfig {
            seed: 11,
            cases: 12,
            max_failures: 0,
        };
        let a = run_fault_fuzz(&cfg, |_, _| {});
        let b = run_fault_fuzz(&cfg, |_, _| {});
        assert_eq!(a.cases_run, b.cases_run);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn reorder_mode_names_round_trip() {
        for mode in [ReorderMode::CausalSafe, ReorderMode::Arbitrary] {
            assert_eq!(ReorderMode::from_name(&mode.to_string()), Some(mode));
        }
        assert_eq!(ReorderMode::from_name("nope"), None);
    }
}
