//! Differential conformance harness for the OCEP engine.
//!
//! The paper's central claims (§IV–§V) are turned into machine-checked
//! invariants over seeded random (pattern, execution) cases:
//!
//! 1. **Oracle agreement** — the online [`ocep_core::Monitor`] reports
//!    exactly the matches the [`ocep_baselines::ExhaustiveMatcher`]
//!    oracle enumerates: no false positives (every reported assignment
//!    is in the oracle set) and no false negatives (a match exists iff
//!    the monitor finds one), cross-checked against
//!    [`ocep_baselines::NaiveMatcher`] detection.
//! 2. **k·n subset bound** — under the representative policy the
//!    reported subset never exceeds `n_leaves · n_traces` (§IV-B).
//! 3. **Participation coverage** — every `(leaf, trace)` cell the
//!    monitor marks covered is justified by at least one oracle match.
//! 4. **Linearization invariance** — re-delivering the same partial
//!    order through [`ocep_poet::Linearizer`] with different tie-break
//!    seeds never changes the verdict (cf. "Worlds of Events":
//!    conclusions must be invariant across linearizations).
//!
//! On a mismatch the harness greedily shrinks the failing case (drop
//! processes, drop events, shorten the pattern) and writes a replayable
//! dump directory (`pattern.ocep` + `trace.poet` + `meta.txt`) that
//! `ocep fuzz --replay <dir>` reproduces deterministically.
//!
//! Everything is reproducible from a single `u64` seed: all randomness
//! flows from [`ocep_rng::Rng`]; the harness never consults the clock
//! or the OS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod diff;
mod faults;
mod fuzz;
mod generate;
mod netdiff;
mod replay;
mod sharddiff;
mod shrink;

pub use case::{Action, Case};
pub use diff::{
    check_case, check_case_with_metrics, CaseOutcome, CheckConfig, Invariant, Mismatch,
};
pub use faults::{
    apply_faults, check_checkpoint_restart, check_fault_case, nth_fault_case, run_fault_fuzz,
    FaultFailure, FaultFuzzConfig, FaultFuzzReport, FaultOutcome, FaultPlan, InjectedFaults,
    ReorderMode,
};
pub use fuzz::{case_seed, nth_case, run_fuzz, Failure, FuzzConfig, FuzzReport};
pub use generate::{gen_case, gen_pattern, GeneratedPattern};
pub use netdiff::{
    check_net_transparency, in_process_fingerprint, loopback_fingerprint, Fingerprint,
};
pub use replay::{load_dump, replay_dump, write_dump, ReplayOutcome};
pub use sharddiff::{check_shard_transparency, check_shard_transparency_sabotaged};
pub use shrink::shrink_case;
