//! Greedy shrinking of failing cases.
//!
//! Three reduction moves, applied to fixpoint under a predicate-call
//! budget: drop whole traces, drop action chunks (halving chunk sizes,
//! ddmin-style, with the send→receive cascade handled by
//! [`Case::drop_actions`]), and replace the pattern expression by one
//! of its proper subtrees (re-rendered from the AST and re-validated by
//! the real parser, with unused classes and event variables pruned).
//! A candidate is accepted only if it still fails the *same* invariant,
//! so the shrunk dump reproduces the original bug, not a different one.

use crate::case::Case;
use crate::diff::{check_case, CheckConfig, Invariant};
use crate::generate::render;
use ocep_pattern::{Expr, Pattern, Program};

/// Shrinks `case` while it keeps failing `invariant` under `cfg`.
///
/// Deterministic: no randomness, bounded by an internal predicate-call
/// budget so pathological cases cannot stall the fuzz loop.
#[must_use]
pub fn shrink_case(case: &Case, cfg: &CheckConfig, invariant: Invariant) -> Case {
    let fails = |c: &Case| matches!(check_case(c, cfg), Err(m) if m.invariant == invariant);
    if !fails(case) {
        // Flaky failure (should be impossible — everything is
        // deterministic); return unshrunk rather than loop.
        return case.clone();
    }
    let mut cur = case.clone();
    let mut budget = 500usize;
    loop {
        let mut progressed = false;

        // Move 1: drop whole traces.
        let mut t = 0u32;
        while (t as usize) < cur.n_traces {
            if budget == 0 {
                return cur;
            }
            if let Some(cand) = cur.drop_trace(t) {
                budget -= 1;
                if fails(&cand) {
                    cur = cand;
                    progressed = true;
                    // Index t now names the next trace; retry in place.
                    continue;
                }
            }
            t += 1;
        }

        // Move 2: drop action chunks, halving the chunk size.
        let mut chunk = (cur.actions.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < cur.actions.len() {
                if budget == 0 {
                    return cur;
                }
                let end = (start + chunk).min(cur.actions.len());
                let mut drop = vec![false; cur.actions.len()];
                drop[start..end].iter_mut().for_each(|d| *d = true);
                let cand = cur.drop_actions(&drop);
                budget -= 1;
                if cand.actions.len() < cur.actions.len() && fails(&cand) {
                    cur = cand;
                    progressed = true;
                    // The tail shifted down into `start`; retry in place.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Move 3: shorten the pattern.
        while let Some(cand) = shrink_pattern_once(&cur, &fails, &mut budget) {
            cur = cand;
            progressed = true;
        }

        if !progressed || budget == 0 {
            return cur;
        }
    }
}

/// Tries every proper subtree of the pattern expression as a
/// replacement root, smallest leaf-count first; returns the first
/// candidate that still fails.
fn shrink_pattern_once(
    cur: &Case,
    fails: &dyn Fn(&Case) -> bool,
    budget: &mut usize,
) -> Option<Case> {
    let pattern = Pattern::parse(&cur.pattern_src).ok()?;
    let program = pattern.program();
    let mut subs = Vec::new();
    collect_subtrees(&program.pattern, &mut subs);
    subs.sort_by_key(expr_size);
    for sub in subs {
        if *budget == 0 {
            return None;
        }
        let mut p = program.clone();
        p.pattern = sub;
        prune_unused(&mut p);
        let src = render(&p);
        if src == cur.pattern_src || Pattern::parse(&src).is_err() {
            continue;
        }
        let cand = Case {
            pattern_src: src,
            n_traces: cur.n_traces,
            actions: cur.actions.clone(),
        };
        *budget -= 1;
        if fails(&cand) {
            return Some(cand);
        }
    }
    None
}

fn collect_subtrees(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary { lhs, rhs, .. } = e {
        out.push((**lhs).clone());
        out.push((**rhs).clone());
        collect_subtrees(lhs, out);
        collect_subtrees(rhs, out);
    }
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Class(_) | Expr::EventVar(_) => 1,
        Expr::Binary { lhs, rhs, .. } => expr_size(lhs) + expr_size(rhs),
    }
}

/// Drops class definitions and event-variable declarations no longer
/// referenced by the (shrunk) pattern expression.
fn prune_unused(p: &mut Program) {
    fn visit(e: &Expr, classes: &mut Vec<String>, vars: &mut Vec<String>) {
        match e {
            Expr::Class(c) => classes.push(c.clone()),
            Expr::EventVar(v) => vars.push(v.clone()),
            Expr::Binary { lhs, rhs, .. } => {
                visit(lhs, classes, vars);
                visit(rhs, classes, vars);
            }
        }
    }
    let mut used_classes = Vec::new();
    let mut used_vars = Vec::new();
    visit(&p.pattern, &mut used_classes, &mut used_vars);
    p.event_vars
        .retain(|(_, v)| used_vars.iter().any(|u| u == v));
    // Classes are reachable directly or through a kept event variable.
    for (c, _) in &p.event_vars {
        used_classes.push(c.clone());
    }
    p.classes.retain(|c| used_classes.contains(&c.name));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Action;
    use crate::diff::CheckConfig;
    use ocep_rng::Rng;

    /// Shrinking against an artificial predicate ("case still contains
    /// an event of type `a` on trace 0 and the pattern still mentions
    /// class A") exercises all three moves without needing a real
    /// engine bug.
    #[test]
    fn shrinks_to_a_small_core() {
        // Build a deliberately bloated case whose `PatternParse`
        // failure (invalid source) survives every execution shrink, so
        // trace and action moves run to completion.
        let mut actions = Vec::new();
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..40 {
            actions.push(Action::Local {
                trace: rng.gen_range(0..4u32),
                ty: "a".into(),
                text: "".into(),
            });
        }
        let case = Case {
            pattern_src: "pattern := ;".into(),
            n_traces: 4,
            actions,
        };
        let shrunk = shrink_case(&case, &CheckConfig::default(), Invariant::PatternParse);
        assert_eq!(shrunk.n_traces, 1, "all droppable traces dropped");
        assert!(shrunk.actions.is_empty(), "all actions dropped");
        assert_eq!(shrunk.pattern_src, case.pattern_src);
    }

    #[test]
    fn prune_removes_orphans() {
        let p = Pattern::parse(
            "A := [*, 'a', *];\nB := [*, 'b', *];\nA $x;\npattern := ($x -> B) && (A -> B);\n",
        )
        .unwrap();
        let mut prog = p.program().clone();
        // Shrink to just `A -> B`: $x is gone, so its declaration goes.
        prog.pattern = Expr::Binary {
            op: ocep_pattern::BinOp::HappensBefore,
            lhs: Box::new(Expr::Class("A".into())),
            rhs: Box::new(Expr::Class("B".into())),
        };
        prune_unused(&mut prog);
        assert!(prog.event_vars.is_empty());
        assert_eq!(prog.classes.len(), 2);
        assert!(Pattern::parse(&render(&prog)).is_ok());
    }
}
