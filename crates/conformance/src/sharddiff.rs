//! Sharded-core driver: the shard-transparency differential.
//!
//! Replays a conformance [`Case`] twice — once through in-process
//! [`MonitorSet::observe_raw`] delivery, once through an N-shard
//! [`ShardGroup`] (the engine core behind `ocep serve --shards N`) —
//! and demands **bit-identical** verdict sequences, representative
//! subsets, [`IngestStats`], and per-monitor checkpoint bytes. The
//! shard count is an implementation detail: splitting the monitor
//! partition across N admission-guard replicas and re-merging the
//! verdict fan-in must not change a single conclusion, byte, or
//! counter.
//!
//! [`MonitorSet::observe_raw`]: ocep_core::MonitorSet::observe_raw
//! [`IngestStats`]: ocep_core::IngestStats

use crate::netdiff::{build_set, match_ids, Fingerprint, MONITOR};
use crate::{Case, Invariant, Mismatch};
use ocep_core::MonitorSet;
use ocep_net::ShardGroup;
use ocep_poet::Event;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

fn err(detail: String) -> Mismatch {
    Mismatch {
        invariant: Invariant::ShardTransparency,
        detail,
    }
}

/// The in-process oracle run: fingerprint plus the checkpoint bytes
/// the single engine would write for the monitor (`save_at`, LSN 0 —
/// no log is involved on either side of this differential).
fn oracle(case: &Case, events: &[Event]) -> Result<(Fingerprint, Vec<u8>), Mismatch> {
    let mut set = build_set(case)?;
    let mut verdicts = Vec::new();
    for e in events {
        verdicts.extend(set.observe_raw(e));
    }
    verdicts.extend(set.flush_guard());
    let monitor = set.monitor(MONITOR).expect("monitor registered");
    let checkpoint = ocep_core::save_at(monitor, &case.pattern_src, 0);
    let fp = Fingerprint {
        verdicts: verdicts
            .iter()
            .map(|(n, m)| (n.clone(), match_ids(m)))
            .collect(),
        subset: monitor.subset().iter().map(|m| match_ids(m)).collect(),
        ingest: set.ingest_stats(),
    };
    Ok((fp, checkpoint))
}

/// The sharded run: the same arrival stream through an N-shard group
/// (inline slots — thread parity is pinned by `ocep-net`'s own suite),
/// returning the merged fingerprint and the monitor's checkpoint-file
/// bytes as written by [`ShardGroup::checkpoint`].
fn sharded(
    case: &Case,
    events: &[Event],
    shards: usize,
    batch: usize,
    sabotage: bool,
) -> Result<(Fingerprint, Vec<u8>), Mismatch> {
    let set: MonitorSet = build_set(case)?;
    let mut sources = HashMap::new();
    sources.insert(MONITOR.to_string(), case.pattern_src.clone());
    let mut group = ShardGroup::new(set, shards, &sources);
    if sabotage {
        group.sabotage_misroute_next();
    }
    let mut verdicts = Vec::new();
    if batch <= 1 {
        for e in events {
            verdicts.extend(group.deliver("conformance", e).verdicts);
        }
    } else {
        for chunk in events.chunks(batch) {
            verdicts.extend(group.deliver_batch("conformance", chunk.to_vec()).verdicts);
        }
    }
    verdicts.extend(group.flush().verdicts);

    // Checkpoint through the real per-shard path: one `.ockp` file per
    // owned monitor, written into a scratch directory.
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ocep-sharddiff-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    let written = group
        .checkpoint(Some(&dir))
        .map_err(|e| err(format!("sharded checkpoint failed: {e}")))?;
    let checkpoint = match written.as_slice() {
        [path] => {
            std::fs::read(path).map_err(|e| err(format!("cannot read {}: {e}", path.display())))
        }
        other => Err(err(format!(
            "sharded checkpoint wrote {} file(s) for one monitor",
            other.len()
        ))),
    };
    let _ = std::fs::remove_dir_all(&dir);
    let checkpoint = checkpoint?;

    let fp = Fingerprint {
        verdicts: verdicts
            .iter()
            .map(|(n, m)| (n.clone(), match_ids(m)))
            .collect(),
        subset: group
            .monitor(MONITOR)
            .map(|m| m.subset().iter().map(|m| match_ids(m)).collect())
            .unwrap_or_default(),
        ingest: group.ingest_stats(),
    };
    Ok((fp, checkpoint))
}

fn check(case: &Case, shards: usize, batch: usize, sabotage: bool) -> Result<usize, Mismatch> {
    let poet = case.build();
    let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();
    let (local, local_ckpt) = oracle(case, &events)?;
    let (shard_fp, shard_ckpt) = sharded(case, &events, shards, batch, sabotage)?;
    if let Some(d) = local.diff(&shard_fp) {
        return Err(err(format!("{shards}-shard delivery diverged: {d}")));
    }
    if local_ckpt != shard_ckpt {
        return Err(err(format!(
            "{shards}-shard checkpoint bytes diverged: {} vs {} byte(s)",
            local_ckpt.len(),
            shard_ckpt.len()
        )));
    }
    Ok(local.verdicts.len())
}

/// Checks shard transparency for one case: verdicts, subset, ingest
/// statistics, and checkpoint bytes after delivery through an
/// N-shard engine core (batched by `batch` events per frame; `0`/`1`
/// delivers single events) must equal in-process
/// [`MonitorSet::observe_raw`] delivery. Returns the number of
/// verdicts both sides agreed on.
///
/// # Errors
///
/// Returns a [`Mismatch`] with invariant
/// [`Invariant::ShardTransparency`] on any divergence,
/// [`Invariant::PatternParse`] if the case's pattern is invalid.
///
/// [`MonitorSet::observe_raw`]: ocep_core::MonitorSet::observe_raw
pub fn check_shard_transparency(
    case: &Case,
    shards: usize,
    batch: usize,
) -> Result<usize, Mismatch> {
    check(case, shards, batch, false)
}

/// [`check_shard_transparency`] with the misroute sabotage hook armed:
/// the group silently skips delivering the first data frame to the
/// shard owning the monitor. A correct differential **must** fail this
/// check — it is how the suite proves it would catch a routing bug.
///
/// # Errors
///
/// See [`check_shard_transparency`]; here an `Err` is the expected
/// outcome.
pub fn check_shard_transparency_sabotaged(
    case: &Case,
    shards: usize,
    batch: usize,
) -> Result<usize, Mismatch> {
    check(case, shards, batch, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nth_case;

    #[test]
    fn generated_cases_are_shard_transparent() {
        for i in 0..3 {
            let (case, _) = nth_case(0x0CE9_0002, i);
            for shards in [1, 2, 4] {
                check_shard_transparency(&case, shards, 1).unwrap();
                check_shard_transparency(&case, shards, 8).unwrap();
            }
        }
    }

    #[test]
    fn misroute_sabotage_is_caught() {
        // Deliver the whole workload as one frame: the misrouted frame
        // is then the entire stream, so any case with at least one
        // verdict must fail the sabotaged differential.
        for i in 0..16 {
            let (case, _) = nth_case(0x0CE9_0002, i);
            if check_shard_transparency(&case, 2, 1).unwrap() == 0 {
                continue;
            }
            assert!(
                check_shard_transparency_sabotaged(&case, 2, usize::MAX).is_err(),
                "case {i}: misrouted delivery went undetected"
            );
            return;
        }
        panic!("no verdict-bearing case in the first 16 generated cases");
    }
}
