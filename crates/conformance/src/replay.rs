//! Replayable failure dumps.
//!
//! A dump directory holds everything needed to reproduce a failing
//! case deterministically, in formats the rest of the toolchain
//! already speaks:
//!
//! * `pattern.ocep` — the pattern source, byte for byte;
//! * `trace.poet`   — the execution in the binary POET dump format
//!   ([`ocep_poet::dump`]), vector timestamps included;
//! * `meta.txt`     — `key=value` lines: the originating fuzz seed and
//!   case index, the violated invariant, and the check configuration
//!   (dedup flag, linearizer tie-break seeds).
//!
//! `ocep fuzz --replay <dir>` reloads the trio and re-runs the
//! differential check, reporting whether the recorded invariant still
//! fails.

use crate::case::Case;
use crate::diff::{check_case, CaseOutcome, CheckConfig, Invariant, Mismatch};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

fn other_err(e: impl std::fmt::Debug) -> io::Error {
    io::Error::other(format!("{e:?}"))
}

/// Writes a failure dump under `dir` (created if absent).
///
/// `meta` carries provenance pairs (e.g. `seed`, `case`) alongside the
/// mismatch and check configuration.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_dump(
    dir: &Path,
    case: &Case,
    cfg: &CheckConfig,
    mismatch: &Mismatch,
    meta: &[(&str, String)],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("pattern.ocep"), case.pattern_src.as_bytes())?;
    let poet = case.build();
    std::fs::write(dir.join("trace.poet"), ocep_poet::dump::dump(poet.store()))?;
    let mut text = String::new();
    for (k, v) in meta {
        text.push_str(&format!("{k}={v}\n"));
    }
    text.push_str(&format!("invariant={}\n", mismatch.invariant));
    text.push_str(&format!("detail={}\n", mismatch.detail.replace('\n', " ")));
    text.push_str(&format!("dedup={}\n", cfg.dedup));
    text.push_str(&format!("lin_seed_0={}\n", cfg.lin_seeds[0]));
    text.push_str(&format!("lin_seed_1={}\n", cfg.lin_seeds[1]));
    text.push_str(&format!("parallelism={}\n", cfg.parallelism));
    std::fs::write(dir.join("meta.txt"), text)?;
    Ok(dir.to_path_buf())
}

/// Reloads a dump directory into a runnable case.
///
/// # Errors
///
/// Fails on missing files, a corrupt POET dump, or malformed metadata.
pub fn load_dump(dir: &Path) -> io::Result<(Case, CheckConfig, Option<Invariant>)> {
    let pattern_src = std::fs::read_to_string(dir.join("pattern.ocep"))?;
    let bytes = std::fs::read(dir.join("trace.poet"))?;
    let poet = ocep_poet::dump::reload(&bytes).map_err(other_err)?;
    let case = Case::from_store(pattern_src, poet.store());

    let meta_text = std::fs::read_to_string(dir.join("meta.txt")).unwrap_or_default();
    let meta: HashMap<&str, &str> = meta_text
        .lines()
        .filter_map(|l| l.split_once('='))
        .collect();
    let mut cfg = CheckConfig::default();
    if let Some(d) = meta.get("dedup") {
        cfg.dedup = *d == "true";
    }
    for (i, key) in ["lin_seed_0", "lin_seed_1"].iter().enumerate() {
        if let Some(s) = meta.get(key).and_then(|v| v.parse().ok()) {
            cfg.lin_seeds[i] = s;
        }
    }
    // Absent in dumps written before the pool existed: default to 1.
    if let Some(p) = meta.get("parallelism").and_then(|v| v.parse().ok()) {
        cfg.parallelism = p;
    }
    let expected = meta.get("invariant").and_then(|s| Invariant::from_name(s));
    Ok((case, cfg, expected))
}

/// The result of replaying a dump.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The invariant the dump's metadata says should fail, if any.
    pub expected: Option<Invariant>,
    /// What the differential check produced on this run.
    pub result: Result<CaseOutcome, Mismatch>,
}

impl ReplayOutcome {
    /// True when the replay failed the same invariant the dump
    /// recorded (or failed at all, when no expectation was recorded).
    #[must_use]
    pub fn reproduced(&self) -> bool {
        match (&self.result, self.expected) {
            (Err(m), Some(inv)) => m.invariant == inv,
            (Err(_), None) => true,
            (Ok(_), _) => false,
        }
    }
}

/// Loads and re-checks a dump directory.
///
/// # Errors
///
/// Fails only on I/O or decode problems; a non-reproducing case is an
/// `Ok` outcome with [`ReplayOutcome::reproduced`] `false`.
pub fn replay_dump(dir: &Path) -> io::Result<ReplayOutcome> {
    let (case, cfg, expected) = load_dump(dir)?;
    Ok(ReplayOutcome {
        expected,
        result: check_case(&case, &cfg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Action;

    #[test]
    fn dump_and_replay_round_trip() {
        let case = Case {
            pattern_src: "A := [*, 'a', *];\nB := [*, 'b', *];\npattern := A -> B;\n".into(),
            n_traces: 2,
            actions: vec![
                Action::Send {
                    trace: 0,
                    ty: "a".into(),
                    text: "m".into(),
                },
                Action::Receive {
                    trace: 1,
                    sender: 0,
                    ty: "b".into(),
                    text: "m".into(),
                },
            ],
        };
        let cfg = CheckConfig {
            dedup: false,
            lin_seeds: [7, 8],
            parallelism: 2,
            ..CheckConfig::default()
        };
        let mismatch = Mismatch {
            invariant: Invariant::OracleSoundness,
            detail: "synthetic\nmulti-line".into(),
        };
        let dir = std::env::temp_dir().join("ocep-conformance-replay-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_dump(&dir, &case, &cfg, &mismatch, &[("seed", "42".into())]).unwrap();

        let (loaded, loaded_cfg, expected) = load_dump(&dir).unwrap();
        assert_eq!(loaded.pattern_src, case.pattern_src);
        assert_eq!(loaded.actions, case.actions);
        assert_eq!(loaded.n_traces, case.n_traces);
        assert!(!loaded_cfg.dedup);
        assert_eq!(loaded_cfg.lin_seeds, [7, 8]);
        assert_eq!(loaded_cfg.parallelism, 2);
        assert_eq!(expected, Some(Invariant::OracleSoundness));

        // This case is healthy, so the replay must NOT reproduce the
        // synthetic mismatch.
        let outcome = replay_dump(&dir).unwrap();
        assert!(!outcome.reproduced());
        assert!(outcome.result.is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
