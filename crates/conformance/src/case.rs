//! A self-contained fuzz case: a pattern source plus an execution
//! described as an arrival-ordered action list.
//!
//! The action list is the shrinkable representation: dropping actions
//! or whole traces and replaying through a fresh [`PoetServer`]
//! re-derives all vector timestamps, so a shrunk case is always a
//! *valid* execution (never a hand-edited, inconsistent one).

use ocep_poet::{EventKind, PoetServer, TraceStore};
use ocep_vclock::TraceId;

/// One recorded step of an execution, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// A unary (purely local) event.
    Local {
        /// Trace the event occurs on.
        trace: u32,
        /// Event type attribute.
        ty: String,
        /// Event text attribute.
        text: String,
    },
    /// A send event (possibly never received — e.g. a blocked send).
    Send {
        /// Trace the send occurs on.
        trace: u32,
        /// Event type attribute.
        ty: String,
        /// Event text attribute.
        text: String,
    },
    /// A receive joining the send at arrival position `sender`.
    Receive {
        /// Trace the receive occurs on.
        trace: u32,
        /// Arrival index of the matching [`Action::Send`].
        sender: usize,
        /// Event type attribute.
        ty: String,
        /// Event text attribute.
        text: String,
    },
}

impl Action {
    /// The trace this action records on.
    #[must_use]
    pub fn trace(&self) -> u32 {
        match self {
            Action::Local { trace, .. }
            | Action::Send { trace, .. }
            | Action::Receive { trace, .. } => *trace,
        }
    }
}

/// A (pattern, execution) pair — the unit the differential executor
/// checks and the shrinker minimizes.
#[derive(Debug, Clone)]
pub struct Case {
    /// Pattern program source.
    pub pattern_src: String,
    /// Number of traces in the execution.
    pub n_traces: usize,
    /// The execution, in arrival order.
    pub actions: Vec<Action>,
}

impl Case {
    /// Replays the action list through a fresh tracer, re-deriving all
    /// vector timestamps.
    ///
    /// # Panics
    ///
    /// Panics if an action names an out-of-range trace or a receive
    /// references a non-send / later action — the constructors uphold
    /// these invariants.
    #[must_use]
    pub fn build(&self) -> PoetServer {
        let mut poet = PoetServer::new(self.n_traces);
        let mut ids = Vec::with_capacity(self.actions.len());
        for (i, a) in self.actions.iter().enumerate() {
            let ev = match a {
                Action::Local { trace, ty, text } => poet.record(
                    TraceId::new(*trace),
                    EventKind::Unary,
                    ty.as_str(),
                    text.as_str(),
                ),
                Action::Send { trace, ty, text } => poet.record(
                    TraceId::new(*trace),
                    EventKind::Send,
                    ty.as_str(),
                    text.as_str(),
                ),
                Action::Receive {
                    trace,
                    sender,
                    ty,
                    text,
                } => {
                    assert!(*sender < i, "receive references a later action");
                    poet.record_receive(
                        TraceId::new(*trace),
                        ids[*sender],
                        ty.as_str(),
                        text.as_str(),
                    )
                }
            };
            ids.push(ev.id());
        }
        poet
    }

    /// Reconstructs the action list from a recorded store (the inverse
    /// of [`Case::build`] up to event identity).
    #[must_use]
    pub fn from_store(pattern_src: String, store: &TraceStore) -> Self {
        let mut pos = std::collections::HashMap::new();
        let mut actions = Vec::with_capacity(store.len());
        for (i, e) in store.iter_arrival().enumerate() {
            pos.insert(e.id(), i);
            let (trace, ty, text) = (e.trace().as_u32(), e.ty().to_owned(), e.text().to_owned());
            actions.push(match e.kind() {
                EventKind::Unary => Action::Local { trace, ty, text },
                EventKind::Send => Action::Send { trace, ty, text },
                EventKind::Receive => Action::Receive {
                    trace,
                    sender: pos[&e.partner().expect("receives have partners")],
                    ty,
                    text,
                },
            });
        }
        Case {
            pattern_src,
            n_traces: store.n_traces(),
            actions,
        }
    }

    /// Returns a copy with the marked actions removed. Receives whose
    /// send is dropped are dropped too (transitively safe because a
    /// sender always precedes its receive in arrival order).
    #[must_use]
    pub fn drop_actions(&self, drop: &[bool]) -> Self {
        assert_eq!(drop.len(), self.actions.len());
        let mut kept_at: Vec<Option<usize>> = Vec::with_capacity(self.actions.len());
        let mut actions = Vec::new();
        for (i, a) in self.actions.iter().enumerate() {
            if drop[i] {
                kept_at.push(None);
                continue;
            }
            let keep = match a {
                Action::Receive { sender, .. } => kept_at[*sender].is_some(),
                _ => true,
            };
            if !keep {
                kept_at.push(None);
                continue;
            }
            let mut a = a.clone();
            if let Action::Receive { sender, .. } = &mut a {
                *sender = kept_at[*sender].expect("checked above");
            }
            kept_at.push(Some(actions.len()));
            actions.push(a);
        }
        Case {
            pattern_src: self.pattern_src.clone(),
            n_traces: self.n_traces,
            actions,
        }
    }

    /// Returns a copy with trace `t` removed entirely (its events, and
    /// any receive of a dropped send), renumbering the traces above it.
    /// Returns `None` when only one trace is left.
    #[must_use]
    pub fn drop_trace(&self, t: u32) -> Option<Self> {
        if self.n_traces <= 1 {
            return None;
        }
        let drop: Vec<bool> = self.actions.iter().map(|a| a.trace() == t).collect();
        let mut out = self.drop_actions(&drop);
        for a in &mut out.actions {
            match a {
                Action::Local { trace, .. }
                | Action::Send { trace, .. }
                | Action::Receive { trace, .. } => {
                    if *trace > t {
                        *trace -= 1;
                    }
                }
            }
        }
        out.n_traces = self.n_traces - 1;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Case {
        Case {
            pattern_src: "A := [*, 'a', *]; B := [*, 'b', *]; pattern := (A -> B);".into(),
            n_traces: 3,
            actions: vec![
                Action::Local {
                    trace: 0,
                    ty: "a".into(),
                    text: "".into(),
                },
                Action::Send {
                    trace: 0,
                    ty: "a".into(),
                    text: "m".into(),
                },
                Action::Receive {
                    trace: 2,
                    sender: 1,
                    ty: "b".into(),
                    text: "m".into(),
                },
                Action::Local {
                    trace: 1,
                    ty: "c".into(),
                    text: "".into(),
                },
            ],
        }
    }

    #[test]
    fn build_round_trips_through_from_store() {
        let case = sample();
        let poet = case.build();
        let back = Case::from_store(case.pattern_src.clone(), poet.store());
        assert_eq!(back.actions, case.actions);
        assert_eq!(back.n_traces, case.n_traces);
    }

    #[test]
    fn dropping_a_send_cascades_to_its_receive() {
        let case = sample();
        let drop = vec![false, true, false, false];
        let out = case.drop_actions(&drop);
        assert_eq!(out.actions.len(), 2, "send and its receive both gone");
        assert!(out
            .actions
            .iter()
            .all(|a| !matches!(a, Action::Receive { .. })));
        // The shrunk case still replays cleanly.
        assert_eq!(out.build().store().len(), 2);
    }

    #[test]
    fn drop_trace_renumbers() {
        let case = sample();
        let out = case.drop_trace(1).unwrap();
        assert_eq!(out.n_traces, 2);
        // Trace 2 became trace 1; trace 0 unchanged.
        assert!(out.actions.iter().all(|a| a.trace() <= 1));
        assert_eq!(out.build().store().len(), 3);
    }

    #[test]
    fn drop_last_trace_refused() {
        let case = Case {
            pattern_src: String::new(),
            n_traces: 1,
            actions: vec![],
        };
        assert!(case.drop_trace(0).is_none());
    }
}
