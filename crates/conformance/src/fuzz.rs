//! The seeded fuzz driver.
//!
//! Case `i` of a run with master seed `s` is generated from its own
//! PRNG seeded with `s` mixed with `i`, so any single case can be
//! regenerated without replaying the stream, and a failure report is
//! fully described by `(master seed, case index)`.

use crate::case::Case;
use crate::diff::{check_case_with_metrics, CaseOutcome, CheckConfig, Mismatch};
use crate::generate::gen_case;
use crate::replay::write_dump;
use crate::shrink::shrink_case;
use ocep_core::{MetricsSnapshot, ObsLevel};
use ocep_rng::Rng;
use std::path::PathBuf;

/// Weyl increment used to spread case indices over the seed space —
/// the same constant SplitMix64 itself advances by.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Configuration for one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: usize,
    /// Where to write failure dumps (`failure-<index>` subdirectories);
    /// `None` disables dumping.
    pub dump_dir: Option<PathBuf>,
    /// Stop after this many failures (0 means never stop early).
    pub max_failures: usize,
    /// Observability level forced onto every case's monitors. `Off`
    /// keeps the generated per-case configs untouched; an enabled level
    /// additionally collects a [`FuzzReport::metrics`] aggregate.
    pub obs: ObsLevel,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            cases: 500,
            dump_dir: None,
            max_failures: 5,
            obs: ObsLevel::Off,
        }
    }
}

/// One shrunk, dumped failure.
#[derive(Debug)]
pub struct Failure {
    /// Index of the failing case within the run.
    pub case_index: usize,
    /// The derived per-case seed (regenerates the case directly).
    pub case_seed: u64,
    /// The violated invariant and its context.
    pub mismatch: Mismatch,
    /// The greedily minimized case that still fails identically.
    pub shrunk: Case,
    /// Dump directory, when dumping was enabled and succeeded.
    pub dump: Option<PathBuf>,
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases actually executed (may be short of the request when
    /// `max_failures` stops the run early).
    pub cases_run: usize,
    /// Cases in which a pattern match existed.
    pub detected: usize,
    /// Total oracle assignments across the run.
    pub truth_total: usize,
    /// All failures, in case order.
    pub failures: Vec<Failure>,
    /// Aggregated monitor metrics over the run, when
    /// [`FuzzConfig::obs`] enabled collection.
    pub metrics: Option<MetricsSnapshot>,
}

/// Derives the self-contained seed for case `i` of a run.
#[must_use]
pub fn case_seed(master: u64, i: usize) -> u64 {
    master ^ GOLDEN_GAMMA.wrapping_mul(i as u64 + 1)
}

/// Generates the `i`-th case of a run (shared by the fuzzer and any
/// test that wants to pin a specific case).
#[must_use]
pub fn nth_case(master: u64, i: usize) -> (Case, CheckConfig) {
    let mut rng = Rng::seed_from_u64(case_seed(master, i));
    let case = gen_case(&mut rng);
    let cfg = CheckConfig {
        dedup: rng.gen_bool(0.5),
        lin_seeds: [rng.next_u64(), rng.next_u64()],
        parallelism: 1,
        obs: ObsLevel::Off,
    };
    (case, cfg)
}

/// Runs `cfg.cases` differential checks, shrinking and dumping each
/// failure. `on_case` observes every case result (for CLI progress).
pub fn run_fuzz(
    cfg: &FuzzConfig,
    mut on_case: impl FnMut(usize, &Result<CaseOutcome, Mismatch>),
) -> FuzzReport {
    let mut report = FuzzReport::default();
    if cfg.obs.enabled() {
        report.metrics = Some(MetricsSnapshot::default());
    }
    for i in 0..cfg.cases {
        let (case, mut check_cfg) = nth_case(cfg.seed, i);
        if cfg.obs.enabled() {
            check_cfg.obs = cfg.obs;
        }
        let result = check_case_with_metrics(&case, &check_cfg, report.metrics.as_mut());
        report.cases_run += 1;
        on_case(i, &result);
        match result {
            Ok(outcome) => {
                report.truth_total += outcome.truth;
                if outcome.detected {
                    report.detected += 1;
                }
            }
            Err(mismatch) => {
                let shrunk = shrink_case(&case, &check_cfg, mismatch.invariant);
                let dump = cfg.dump_dir.as_ref().and_then(|root| {
                    write_dump(
                        &root.join(format!("failure-{i}")),
                        &shrunk,
                        &check_cfg,
                        &mismatch,
                        &[
                            ("seed", cfg.seed.to_string()),
                            ("case", i.to_string()),
                            ("case_seed", case_seed(cfg.seed, i).to_string()),
                        ],
                    )
                    .ok()
                });
                report.failures.push(Failure {
                    case_index: i,
                    case_seed: case_seed(cfg.seed, i),
                    mismatch,
                    shrunk,
                    dump,
                });
                if cfg.max_failures != 0 && report.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::check_case;

    #[test]
    fn runs_are_reproducible() {
        let cfg = FuzzConfig {
            seed: 9,
            cases: 20,
            dump_dir: None,
            max_failures: 0,
            ..FuzzConfig::default()
        };
        let a = run_fuzz(&cfg, |_, _| {});
        let b = run_fuzz(&cfg, |_, _| {});
        assert_eq!(a.cases_run, b.cases_run);
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.truth_total, b.truth_total);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn case_seeds_are_spread() {
        let s: std::collections::HashSet<u64> = (0..100).map(|i| case_seed(0, i)).collect();
        assert_eq!(s.len(), 100);
    }

    /// The headline acceptance gate, kept cheap enough for `cargo
    /// test`: a healthy engine survives a fuzz burst with zero
    /// invariant violations. (The CLI smoke run and CI cover larger
    /// counts.)
    #[test]
    fn healthy_engine_survives_a_burst() {
        let cfg = FuzzConfig {
            seed: 0,
            cases: 60,
            dump_dir: None,
            max_failures: 0,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg, |_, _| {});
        assert_eq!(report.cases_run, 60);
        assert!(
            report.failures.is_empty(),
            "invariant violations: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.case_index, f.mismatch.to_string()))
                .collect::<Vec<_>>()
        );
        assert!(report.detected > 0, "burst never exercised a match");
    }

    /// The pool-enabled engine must satisfy the same four invariants as
    /// the sequential one AND reach the same detection verdict on every
    /// pinned case (parallel partitioning may pick different — equally
    /// valid — representatives, but never change what exists).
    #[test]
    fn parallel_search_matches_sequential_verdicts() {
        let mut exercised = 0;
        for seed in [0u64, 7] {
            for i in 0..25 {
                let (case, mut cfg) = nth_case(seed, i);
                cfg.parallelism = 1;
                let sequential = check_case(&case, &cfg)
                    .unwrap_or_else(|m| panic!("seed {seed} case {i} sequential: {m}"));
                cfg.parallelism = 3;
                let parallel = check_case(&case, &cfg)
                    .unwrap_or_else(|m| panic!("seed {seed} case {i} parallel: {m}"));
                assert_eq!(
                    sequential.detected, parallel.detected,
                    "seed {seed} case {i}: detection verdict changed under the worker pool"
                );
                assert_eq!(sequential.truth, parallel.truth);
                if sequential.detected {
                    exercised += 1;
                }
            }
        }
        assert!(exercised > 0, "pinned cases never exercised a match");
    }
}
