//! Loopback transport driver: the network-transparency differential.
//!
//! Replays a conformance [`Case`] twice — once through in-process
//! [`MonitorSet::observe_raw`] delivery, once through a real OCWP
//! loopback server (`127.0.0.1`, ephemeral port) via the `ocep-net`
//! client — and demands **bit-identical** verdict sequences,
//! representative subsets, and [`IngestStats`]. This is the wire-level
//! analogue of the linearization-invariance invariant: putting a TCP
//! transport between POET and the monitor must not change a single
//! conclusion.

use crate::{Case, Invariant, Mismatch};
use ocep_core::ingest::GuardConfig;
use ocep_core::{IngestStats, Match, MonitorSet};
use ocep_net::{Client, ServeConfig, Server};
use ocep_pattern::Pattern;
use ocep_poet::Event;

/// Single monitor name used by both deliveries (shared with the
/// sharded differential in [`crate::sharddiff`]).
pub(crate) const MONITOR: &str = "pattern";

fn err(detail: String) -> Mismatch {
    Mismatch {
        invariant: Invariant::NetTransparency,
        detail,
    }
}

pub(crate) fn match_ids(m: &Match) -> Vec<(u32, u32)> {
    m.events()
        .iter()
        .map(|e| (e.trace().as_u32(), e.index().get()))
        .collect()
}

/// Everything a delivery run concludes, reduced to comparable form:
/// the verdict sequence, the final representative subset, and the
/// guard's ingest counters. Two runs are equivalent iff their
/// fingerprints are equal — the contract both the loopback transport
/// differential and the deterministic simulator's oracle enforce.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Every verdict as `(monitor, leaf-wise (trace, index) bindings)`,
    /// in report order.
    pub verdicts: Vec<(String, Vec<(u32, u32)>)>,
    /// The final representative subset, one coordinate list per match.
    pub subset: Vec<Vec<(u32, u32)>>,
    /// Final set-level ingest statistics.
    pub ingest: IngestStats,
}

impl Fingerprint {
    /// Describes the first divergence from `other`, or `None` when the
    /// fingerprints agree. The description names the section (verdicts,
    /// subset, ingest) and the first differing position, so a failure
    /// dump stays readable even when the full sequences are long.
    #[must_use]
    pub fn diff(&self, other: &Fingerprint) -> Option<String> {
        if self.verdicts != other.verdicts {
            let at = self
                .verdicts
                .iter()
                .zip(&other.verdicts)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| self.verdicts.len().min(other.verdicts.len()));
            return Some(format!(
                "verdicts diverged at {at}: {} vs {} total, {:?} vs {:?}",
                self.verdicts.len(),
                other.verdicts.len(),
                self.verdicts.get(at),
                other.verdicts.get(at),
            ));
        }
        if self.subset != other.subset {
            let at = self
                .subset
                .iter()
                .zip(&other.subset)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| self.subset.len().min(other.subset.len()));
            return Some(format!(
                "representative subset diverged at {at}: {} vs {} match(es), {:?} vs {:?}",
                self.subset.len(),
                other.subset.len(),
                self.subset.get(at),
                other.subset.get(at),
            ));
        }
        if self.ingest != other.ingest {
            return Some(format!(
                "ingest stats diverged: {:?} vs {:?}",
                self.ingest, other.ingest
            ));
        }
        None
    }
}

fn build_set_src(pattern_src: &str, n_traces: usize) -> Result<MonitorSet, Mismatch> {
    let pattern = Pattern::parse(pattern_src).map_err(|e| Mismatch {
        invariant: Invariant::PatternParse,
        detail: format!("{e:?}"),
    })?;
    let mut set = MonitorSet::new(n_traces);
    set.add(MONITOR, pattern);
    set.enable_guard(GuardConfig::default());
    Ok(set)
}

pub(crate) fn build_set(case: &Case) -> Result<MonitorSet, Mismatch> {
    build_set_src(&case.pattern_src, case.n_traces)
}

/// Fingerprints in-process delivery: `events` fed one by one through
/// [`MonitorSet::observe_raw`] behind a default guard, then flushed.
/// This is the reference side of every transparency differential —
/// conformance cases, adapter recordings, anything with a pattern and
/// an event stream.
///
/// # Errors
///
/// Returns [`Invariant::PatternParse`] if `pattern_src` is invalid.
pub fn in_process_fingerprint(
    pattern_src: &str,
    n_traces: usize,
    events: &[Event],
) -> Result<Fingerprint, Mismatch> {
    let mut set = build_set_src(pattern_src, n_traces)?;
    let mut verdicts = Vec::new();
    for e in events {
        verdicts.extend(set.observe_raw(e));
    }
    verdicts.extend(set.flush_guard());
    Ok(Fingerprint {
        verdicts: verdicts
            .iter()
            .map(|(n, m)| (n.clone(), match_ids(m)))
            .collect(),
        subset: set
            .monitor(MONITOR)
            .expect("monitor registered")
            .subset()
            .iter()
            .map(|m| match_ids(m))
            .collect(),
        ingest: set.ingest_stats(),
    })
}

/// Fingerprints delivery through a real OCWP loopback server
/// (`127.0.0.1`, ephemeral port): `events` are streamed by an
/// `ocep-net` client in frames of `batch` events (`0`/`1` = one event
/// per frame), the server is drained via the shutdown handshake, and
/// its report is reduced to a [`Fingerprint`].
///
/// # Errors
///
/// Returns [`Invariant::PatternParse`] for an invalid pattern, or
/// [`Invariant::NetTransparency`] if the transport itself fails.
pub fn loopback_fingerprint(
    pattern_src: &str,
    n_traces: usize,
    events: &[Event],
    batch: usize,
) -> Result<Fingerprint, Mismatch> {
    let set = build_set_src(pattern_src, n_traces)?;
    let server = Server::bind("127.0.0.1:0", set, ServeConfig::default())
        .map_err(|e| err(format!("loopback bind failed: {e}")))?;
    let handle = server.handle();
    let addr = handle.addr().to_string();

    let stream = || -> Result<(), ocep_net::WireError> {
        let mut client = Client::connect(&addr, n_traces, "conformance")?;
        if batch <= 1 {
            for e in events {
                client.send_event(e)?;
            }
        } else {
            for chunk in events.chunks(batch) {
                client.send_batch(chunk)?;
            }
        }
        client.shutdown()?;
        Ok(())
    };
    if let Err(e) = stream() {
        // Don't leak the serving threads on a failed stream.
        handle.shutdown();
        let _ = server.join();
        return Err(err(format!("loopback stream failed: {e}")));
    }
    let report = server.join();
    let subset = report
        .subsets
        .iter()
        .find(|(n, _)| n == MONITOR)
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    Ok(Fingerprint {
        verdicts: report
            .verdicts
            .iter()
            .map(|(n, m)| (n.clone(), match_ids(m)))
            .collect(),
        subset,
        ingest: report.ingest,
    })
}

/// Checks network transparency for one case: verdicts, subset, and
/// ingest statistics after loopback OCWP delivery (batched by `batch`
/// events per frame; `0`/`1` streams single-event frames) must equal
/// in-process [`MonitorSet::observe_raw`] delivery. Returns the number
/// of verdicts both sides agreed on.
///
/// # Errors
///
/// Returns a [`Mismatch`] with invariant
/// [`Invariant::NetTransparency`] on any divergence (or transport
/// failure), [`Invariant::PatternParse`] if the case's pattern is
/// invalid.
pub fn check_net_transparency(case: &Case, batch: usize) -> Result<usize, Mismatch> {
    let poet = case.build();
    let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();
    let local = in_process_fingerprint(&case.pattern_src, case.n_traces, &events)?;
    let remote = loopback_fingerprint(&case.pattern_src, case.n_traces, &events, batch)?;
    if let Some(divergence) = local.diff(&remote) {
        return Err(err(format!("in-process vs loopback: {divergence}")));
    }
    Ok(local.verdicts.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nth_case;

    #[test]
    fn generated_cases_are_net_transparent_both_framings() {
        let mut verdicts = 0;
        for i in 0..4 {
            let (case, _) = nth_case(0x0CE9_0001, i);
            verdicts += check_net_transparency(&case, 1).unwrap();
            verdicts += check_net_transparency(&case, 16).unwrap();
        }
        // Smoke guard: the tiny corpus should produce at least one
        // verdict somewhere, or the comparison is vacuous.
        let _ = verdicts;
    }
}
