//! Property tests: the online matcher against a brute-force oracle on
//! seeded random computations and a family of representative patterns.
//!
//! The oracle enumerates *all* leaf assignments over the full event set
//! and checks every constraint directly with vector-clock causality. The
//! monitor must (a) report only assignments the oracle accepts
//! (soundness — no false positives, §V-D), (b) find a match whenever the
//! oracle does (detection completeness), and (c) keep its reported
//! subset within the k·n bound (§IV-B).

use ocep_core::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_pattern::{Bindings, Constraint, PairRel, Pattern};
use ocep_poet::{Event, EventKind, PoetServer};
use ocep_rng::Rng;
use ocep_vclock::{Causality, EventSet, TraceId};

#[derive(Debug, Clone)]
enum Step {
    Local(u32, u8, u8),
    Message(u32, u32, u8),
}

const TYPES: [&str; 3] = ["a", "b", "c"];
const TEXTS: [&str; 3] = ["", "u", "v"];

fn random_computation(rng: &mut Rng) -> (u32, Vec<Step>) {
    let n = rng.gen_range(2u32..5);
    let len = rng.gen_range(1usize..30);
    let steps = (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                Step::Local(
                    rng.gen_range(0..n),
                    rng.gen_range(0u8..3),
                    rng.gen_range(0u8..3),
                )
            } else {
                Step::Message(
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(0u8..3),
                )
            }
        })
        .collect();
    (n, steps)
}

fn run_steps(n: u32, steps: &[Step]) -> PoetServer {
    let mut poet = PoetServer::new(n as usize);
    for s in steps {
        match *s {
            Step::Local(t, ty, tx) => {
                poet.record(
                    TraceId::new(t),
                    EventKind::Unary,
                    TYPES[ty as usize],
                    TEXTS[tx as usize],
                );
            }
            Step::Message(from, to, ty) => {
                let send = poet.record(TraceId::new(from), EventKind::Send, TYPES[ty as usize], "");
                if from != to {
                    poet.record_receive(TraceId::new(to), send.id(), TYPES[ty as usize], "");
                }
            }
        }
    }
    poet
}

const PATTERNS: [&str; 11] = [
    "A := [*, a, *]; B := [*, b, *]; pattern := A -> B;",
    "A := [*, a, *]; B := [*, b, *]; pattern := A || B;",
    "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; pattern := A -> B && C -> B;",
    "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; A $x; \
     pattern := $x -> B && $x -> C;",
    "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; B $m; \
     pattern := A -> $m && $m -> C;",
    "S := [*, a, *]; R := [*, a, *]; pattern := S <> R;",
    "X := [$p, a, *]; Y := [*, b, $p]; pattern := X -> Y;",
    "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; pattern := (A || B) -> C;",
    "A := [*, a, *]; B := [*, b, *]; pattern := A ~> B;",
    "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; pattern := (A && B) ->> C;",
    "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; \
     pattern := (A && B) <-> (B && C);",
];

/// Checks one full assignment against every pattern constraint, using
/// only the causality algebra (independent of the search code).
fn oracle_accepts(pattern: &Pattern, events: &[&Event], all: &[Event]) -> bool {
    // Distinct events per leaf.
    for i in 0..events.len() {
        for j in i + 1..events.len() {
            if events[i].id() == events[j].id() {
                return false;
            }
        }
    }
    // Shape + attribute-variable consistency, assigned in leaf order.
    let mut bindings = Bindings::new(pattern.n_vars());
    for (leaf, e) in pattern.leaves().iter().zip(events) {
        match pattern.leaf_match(leaf.id(), e, &bindings) {
            Some(delta) => bindings.apply(&delta),
            None => return false,
        }
    }
    // Pairwise causal requirements.
    for i in 0..events.len() {
        for j in 0..events.len() {
            let (li, lj) = (pattern.leaves()[i].id(), pattern.leaves()[j].id());
            if let Some(rel) = pattern.rel(li, lj) {
                let got = events[i].stamp().causality(events[j].stamp());
                let ok = matches!(
                    (rel, got),
                    (PairRel::Before, Causality::Before)
                        | (PairRel::After, Causality::After)
                        | (PairRel::Concurrent, Causality::Concurrent)
                );
                if !ok {
                    return false;
                }
            }
        }
    }
    // Partner, lim, weak-precede.
    for c in pattern.constraints() {
        match c {
            Constraint::Partner { send, recv } => {
                let s = events[send.as_usize()];
                let r = events[recv.as_usize()];
                if r.partner() != Some(s.id()) {
                    return false;
                }
            }
            Constraint::Lim { from, to } => {
                let a = events[from.as_usize()];
                let b = events[to.as_usize()];
                let from_spec = &pattern.leaves()[from.as_usize()];
                let blocked = all.iter().any(|x| {
                    x.id() != a.id()
                        && x.id() != b.id()
                        && from_spec.matches_shape(x)
                        && a.stamp().happens_before(x.stamp())
                        && x.stamp().happens_before(b.stamp())
                });
                if blocked {
                    return false;
                }
            }
            Constraint::WeakPrecede { from, to } => {
                let fs: EventSet = from
                    .iter()
                    .map(|l| events[l.as_usize()].stamp().clone())
                    .collect();
                let ts: EventSet = to
                    .iter()
                    .map(|l| events[l.as_usize()].stamp().clone())
                    .collect();
                if !fs.weakly_precedes(&ts) {
                    return false;
                }
            }
            Constraint::Entangled { left, right } => {
                let ls: EventSet = left
                    .iter()
                    .map(|l| events[l.as_usize()].stamp().clone())
                    .collect();
                let rs: EventSet = right
                    .iter()
                    .map(|l| events[l.as_usize()].stamp().clone())
                    .collect();
                if !ls.entangled(&rs) {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

/// Enumerates all oracle matches (bounded: k <= 3, |events| <= ~60).
fn oracle_matches<'a>(pattern: &Pattern, all: &'a [Event]) -> Vec<Vec<&'a Event>> {
    let k = pattern.n_leaves();
    let mut out = Vec::new();
    let mut stack: Vec<&Event> = Vec::with_capacity(k);
    fn rec<'a>(
        pattern: &Pattern,
        all: &'a [Event],
        stack: &mut Vec<&'a Event>,
        out: &mut Vec<Vec<&'a Event>>,
    ) {
        if stack.len() == pattern.n_leaves() {
            if oracle_accepts(pattern, stack, all) {
                out.push(stack.clone());
            }
            return;
        }
        let leaf = &pattern.leaves()[stack.len()];
        for e in all {
            if leaf.matches_shape(e) {
                stack.push(e);
                rec(pattern, all, stack, out);
                stack.pop();
            }
        }
    }
    rec(pattern, all, &mut stack, &mut out);
    out
}

#[test]
fn monitor_agrees_with_oracle() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0x0AC1E ^ case);
        let (n, steps) = random_computation(&mut rng);
        let pat_idx = rng.gen_range(0..PATTERNS.len());
        let dedup = rng.gen_bool(0.5);

        let poet = run_steps(n, &steps);
        let all: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let pattern = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        let truth = oracle_matches(&pattern, &all);

        let pattern2 = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        let mut monitor = Monitor::with_config(
            pattern2,
            n as usize,
            MonitorConfig {
                dedup,
                policy: SubsetPolicy::PerArrival,
                node_limit: 0,
                parallelism: 1,
                ..MonitorConfig::default()
            },
        );
        let mut reported = Vec::new();
        for e in &all {
            reported.extend(monitor.observe(e));
        }

        // (a) Soundness: every reported match is accepted by the oracle.
        let p_check = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        for m in &reported {
            let evs: Vec<&Event> = m.events().iter().collect();
            assert!(
                oracle_accepts(&p_check, &evs, &all),
                "case {case}: false positive: {m} (pattern {pat_idx})"
            );
        }

        // (b) Detection completeness: a match exists iff one is found.
        assert_eq!(
            truth.is_empty(),
            monitor.stats().matches_found == 0,
            "case {case}: oracle found {} matches, monitor found {} (pattern {}, dedup={})",
            truth.len(),
            monitor.stats().matches_found,
            pat_idx,
            dedup
        );

        // (c) With the representative policy, reports stay within k*n.
        let pattern3 = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        let k = pattern3.n_leaves();
        let mut rep_monitor = Monitor::new(pattern3, n as usize);
        let mut rep_count = 0usize;
        for e in &all {
            rep_count += rep_monitor.observe(e).len();
        }
        assert!(rep_count <= k * n as usize, "case {case}");

        // (d) Cell soundness: every covered (class, trace) cell appears in
        // some oracle match (`covers` resolves names at class granularity,
        // so compare against any same-class leaf position).
        let leaves = rep_monitor.pattern().leaves().to_vec();
        for leaf in &leaves {
            for tr in 0..n {
                if rep_monitor.covers(leaf.display_name(), TraceId::new(tr)) {
                    let in_truth = truth.iter().any(|m| {
                        m.iter().zip(&leaves).any(|(e, l)| {
                            l.class_name() == leaf.class_name() && e.trace() == TraceId::new(tr)
                        })
                    });
                    assert!(
                        in_truth,
                        "case {case}: cell ({}, T{}) covered but not in any oracle match",
                        leaf.display_name(),
                        tr
                    );
                }
            }
        }
    }
}

/// With dedup off, every terminating arrival that the oracle says
/// participates (as the causally-newest element) in a match triggers
/// at least one found match at that arrival.
#[test]
fn every_completing_arrival_is_detected() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xA11 ^ case);
        let (n, steps) = random_computation(&mut rng);
        let pat_idx = rng.gen_range(0..PATTERNS.len());

        let poet = run_steps(n, &steps);
        let all: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let pattern = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        let truth = oracle_matches(&pattern, &all);

        let pattern2 = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        let mut monitor = Monitor::with_config(
            pattern2,
            n as usize,
            MonitorConfig {
                dedup: false,
                policy: SubsetPolicy::PerArrival,
                node_limit: 0,
                parallelism: 1,
                ..MonitorConfig::default()
            },
        );
        let mut found_at: Vec<u64> = Vec::new(); // arrival positions with found matches
        for (i, e) in all.iter().enumerate() {
            let before = monitor.stats().matches_found;
            let _ = monitor.observe(e);
            if monitor.stats().matches_found > before {
                found_at.push(i as u64);
            }
        }
        // For each oracle match, its delivery-last constituent position
        // must be an arrival where the monitor found something.
        for m in &truth {
            let last_pos = m
                .iter()
                .map(|e| all.iter().position(|x| x.id() == e.id()).unwrap())
                .max()
                .unwrap() as u64;
            assert!(
                found_at.contains(&last_pos),
                "case {case}: match completing at arrival {last_pos} was not detected \
                 (pattern {pat_idx})"
            );
        }
    }
}

/// Delivery-order independence of *detection*: every valid
/// linearization agrees on whether the pattern occurred, and any
/// covered (class, trace) cell is justified by the oracle. (Exactly
/// *which* representative cells a run covers is best-effort and may
/// legitimately vary with delivery order, as in the paper.)
#[test]
fn detection_is_linearization_independent() {
    use ocep_poet::Linearizer;
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x11DE ^ case);
        let (n, steps) = random_computation(&mut rng);
        let pat_idx = rng.gen_range(0..PATTERNS.len());
        let seed_a = rng.gen_range(0u64..64);
        let seed_b = rng.gen_range(0u64..64);

        let poet = run_steps(n, &steps);
        let all: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let pattern = Pattern::parse(PATTERNS[pat_idx]).unwrap();
        let truth = oracle_matches(&pattern, &all);

        let run = |seed: u64| {
            let lin = Linearizer::new(poet.store()).with_seed(seed).linearize();
            let pattern = Pattern::parse(PATTERNS[pat_idx]).unwrap();
            let mut monitor = Monitor::new(pattern, n as usize);
            for e in &lin {
                let _ = monitor.observe(e);
            }
            let mut cells = Vec::new();
            for leaf in monitor.pattern().leaves() {
                for tr in 0..n {
                    if monitor.covers(leaf.display_name(), TraceId::new(tr)) {
                        cells.push((leaf.class_name().to_owned(), tr));
                    }
                }
            }
            cells.sort();
            cells.dedup();
            (monitor.stats().matches_found > 0, cells)
        };
        let (found_a, cells_a) = run(seed_a);
        let (found_b, cells_b) = run(seed_b);
        assert_eq!(found_a, !truth.is_empty(), "case {case}");
        assert_eq!(found_b, !truth.is_empty(), "case {case}");
        // Cell soundness for both orders, at class granularity.
        let leaves = pattern.leaves();
        for cells in [&cells_a, &cells_b] {
            for (class, tr) in cells {
                let ok = truth.iter().any(|m| {
                    m.iter()
                        .zip(leaves)
                        .any(|(e, l)| l.class_name() == class && e.trace() == TraceId::new(*tr))
                });
                assert!(
                    ok,
                    "case {case}: covered cell ({class}, T{tr}) not in oracle"
                );
            }
        }
    }
}
