//! End-to-end panic containment: a search partition that panics mid-
//! arrival must not abort the process — the monitor completes the
//! arrival via inline fallback, counts it, and later arrivals run on a
//! respawned worker.

use ocep_core::{Monitor, MonitorConfig, SubsetPolicy, WorkerPool};
use ocep_pattern::Pattern;
use ocep_poet::{Event, EventKind, PoetServer};
use ocep_vclock::TraceId;
use std::sync::Arc;

fn t(i: u32) -> TraceId {
    TraceId::new(i)
}

fn pattern() -> Pattern {
    Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A || B;").unwrap()
}

/// Matches as display strings, order-insensitive (the parallel merge
/// visits partitions in worker order, not trace order).
fn sorted(ms: &[ocep_core::Match]) -> Vec<String> {
    let mut out: Vec<String> = ms.iter().map(|m| m.to_string()).collect();
    out.sort();
    out
}

/// A 4-trace workload with plenty of concurrent a/b pairs.
fn workload() -> Vec<Event> {
    let mut poet = PoetServer::new(4);
    for round in 0..6u32 {
        for tr in 0..4u32 {
            let ty = if (round + tr) % 2 == 0 { "a" } else { "b" };
            poet.record(t(tr), EventKind::Unary, ty, format!("{round}"));
        }
    }
    poet.linearization().collect()
}

#[test]
fn injected_partition_panic_degrades_instead_of_aborting() {
    let events = workload();

    // Reference: the sequential monitor (PerArrival reporting is exactly
    // reproducible across worker counts, unlike representatives).
    let mut reference = Monitor::with_config(
        pattern(),
        4,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );

    let pool = Arc::new(WorkerPool::new(2));
    let mut m = Monitor::with_config(
        pattern(),
        4,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            parallelism: 3,
            inject_partition_panic: Some(1),
            ..MonitorConfig::default()
        },
    );
    m.set_pool(Arc::clone(&pool));

    let half = events.len() / 2;
    for e in &events[..half] {
        let want = sorted(&reference.observe(e));
        let got = sorted(&m.observe(e));
        assert_eq!(
            want, got,
            "fallback must still complete the arrival's verdicts"
        );
    }
    assert!(
        m.stats().degraded_arrivals > 0,
        "the injected panic should have degraded at least one arrival"
    );
    assert!(pool.caught_panics() > 0, "the pool caught the injections");

    // Heal the hook: subsequent arrivals run on respawned workers with
    // no further degradation.
    m.config_mut().inject_partition_panic = None;
    let degraded_before = m.stats().degraded_arrivals;
    for e in &events[half..] {
        assert_eq!(sorted(&reference.observe(e)), sorted(&m.observe(e)));
    }
    assert!(pool.respawned() > 0, "a fresh worker replaced the corpse");
    assert_eq!(
        m.stats().degraded_arrivals,
        degraded_before,
        "healed searches are no longer degraded"
    );
    assert_eq!(reference.stats().matches_found, m.stats().matches_found);
}
