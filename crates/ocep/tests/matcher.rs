//! Scenario tests for the OCEP matcher: each exercises one mechanism of
//! §III–§IV against a hand-built computation.

use ocep_core::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_pattern::Pattern;
use ocep_poet::plugin::{MpiPlugin, UcxxPlugin};
use ocep_poet::{EventKind, PoetServer};
use ocep_vclock::TraceId;

fn t(i: u32) -> TraceId {
    TraceId::new(i)
}

fn drain(poet: &mut PoetServer, monitor: &mut Monitor) -> Vec<ocep_core::Match> {
    poet.linearization()
        .flat_map(|e| monitor.observe(&e))
        .collect()
}

#[test]
fn happens_before_respects_causality_not_arrival_order() {
    // a on T0, b on T1 concurrent: A -> B must NOT match even though a is
    // delivered before b.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let mut poet = PoetServer::new(2);
    let mut monitor = Monitor::new(p, 2);
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(1), EventKind::Unary, "b", "");
    assert!(drain(&mut poet, &mut monitor).is_empty());

    // Now a causally ordered pair matches.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let mut poet = PoetServer::new(2);
    let mut monitor = Monitor::new(p, 2);
    let s = poet.record(t(0), EventKind::Send, "a", "");
    poet.record_receive(t(1), s.id(), "deliver", "");
    poet.record(t(1), EventKind::Unary, "b", "");
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].binding_for("A").unwrap().id(), s.id());
}

#[test]
fn partner_operator_requires_the_exact_message() {
    let p =
        Pattern::parse("S := [*, mpi_send, *]; R := [*, mpi_recv, *]; pattern := S <> R;").unwrap();
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::with_config(
        p,
        3,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    let mut mpi = MpiPlugin::new(&mut poet);
    let s1 = mpi.send(t(0), t(2));
    let s2 = mpi.send(t(1), t(2));
    let r1 = mpi.recv(t(2), &s1);
    let r2 = mpi.recv(t(2), &s2);
    let matches = drain(&mut poet, &mut monitor);
    // Exactly the two (send, its-receive) pairs — never s1 with r2.
    assert_eq!(matches.len(), 2);
    for m in &matches {
        let s = m.binding_for("S").unwrap();
        let r = m.binding_for("R").unwrap();
        assert_eq!(r.partner(), Some(s.id()));
    }
    let pairs: Vec<_> = matches
        .iter()
        .map(|m| {
            (
                m.binding_for("S").unwrap().id(),
                m.binding_for("R").unwrap().id(),
            )
        })
        .collect();
    assert!(pairs.contains(&(s1.id(), r1.id())));
    assert!(pairs.contains(&(s2.id(), r2.id())));
}

#[test]
fn paper_ordering_bug_pattern_detects_stale_snapshot() {
    // §III-D: snapshot taken on a synch request, then an update, then the
    // stale snapshot forwarded.
    let src = r#"
        Synch    := [$l, synch_leader, $f];
        Snapshot := [$l, take_snapshot, $f];
        Update   := [$l, make_update, *];
        Forward  := [$l, forward_snapshot, $f];
        Snapshot $diff;
        Update $write;
        pattern := (Synch -> $diff) && ($diff -> $write) && ($write -> Forward);
    "#;
    let p = Pattern::parse(src).unwrap();
    // Traces: 0 = leader, 1 = good follower, 2 = victim follower.
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::new(p, 3);

    // Correct round for follower 1: synch, snapshot, forward (no update
    // in between).
    let req1 = poet.record(t(1), EventKind::Send, "synch_request", "T0");
    poet.record_receive(t(0), req1.id(), "synch_leader", "T1");
    poet.record(t(0), EventKind::Unary, "take_snapshot", "T1");
    poet.record(t(0), EventKind::Send, "forward_snapshot", "T1");

    // Buggy round for follower 2: update sneaks in after the snapshot.
    let req2 = poet.record(t(2), EventKind::Send, "synch_request", "T0");
    poet.record_receive(t(0), req2.id(), "synch_leader", "T2");
    poet.record(t(0), EventKind::Unary, "take_snapshot", "T2");
    poet.record(t(0), EventKind::Unary, "make_update", "x=1");
    poet.record(t(0), EventKind::Send, "forward_snapshot", "T2");

    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1, "only the buggy round matches");
    let m = &matches[0];
    // The variable binding isolated the victim follower.
    assert_eq!(m.binding_for("Synch").unwrap().text(), "T2");
    assert_eq!(m.binding_for("Forward").unwrap().text(), "T2");
    assert_eq!(m.binding_for("$diff").unwrap().text(), "T2");
}

#[test]
fn ordering_pattern_rejects_cross_follower_confusion() {
    // An update between follower-1's snapshot and follower-2's forward
    // must not produce a match for either follower when each follower's
    // own round is clean... except the leader's trace orders everything:
    // snapshot(T1) -> update -> forward(T2) *does* causally match if the
    // variables allowed mixing. The $f variable forbids it.
    let src = r#"
        Synch    := [$l, synch_leader, $f];
        Snapshot := [$l, take_snapshot, $f];
        Update   := [$l, make_update, *];
        Forward  := [$l, forward_snapshot, $f];
        Snapshot $diff;
        Update $write;
        pattern := (Synch -> $diff) && ($diff -> $write) && ($write -> Forward);
    "#;
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::new(p, 3);

    // Follower 1 round completes BEFORE its update-free forward.
    let req1 = poet.record(t(1), EventKind::Send, "synch_request", "T0");
    poet.record_receive(t(0), req1.id(), "synch_leader", "T1");
    poet.record(t(0), EventKind::Unary, "take_snapshot", "T1");
    poet.record(t(0), EventKind::Send, "forward_snapshot", "T1");
    // Update AFTER follower 1 was served.
    poet.record(t(0), EventKind::Unary, "make_update", "x=2");
    // Follower 2 round, snapshot after the update, clean.
    let req2 = poet.record(t(2), EventKind::Send, "synch_request", "T0");
    poet.record_receive(t(0), req2.id(), "synch_leader", "T2");
    poet.record(t(0), EventKind::Unary, "take_snapshot", "T2");
    poet.record(t(0), EventKind::Send, "forward_snapshot", "T2");

    let matches = drain(&mut poet, &mut monitor);
    assert!(
        matches.is_empty(),
        "variable binding must prevent mixing rounds: {matches:?}"
    );
}

#[test]
fn deadlock_cycle_pattern_with_attribute_variables() {
    // Three blocked sends forming a cycle T0→T1→T2→T0, all concurrent.
    let src = r#"
        S1 := [$a, mpi_block_send, $b];
        S2 := [$b, mpi_block_send, $c];
        S3 := [$c, mpi_block_send, $a];
        S1 $x; S2 $y; S3 $z;
        pattern := $x || $y && $y || $z && $x || $z;
    "#;
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::new(p, 3);
    let mut mpi = MpiPlugin::new(&mut poet);
    mpi.block_send(t(0), t(1));
    mpi.block_send(t(1), t(2));
    mpi.block_send(t(2), t(0));
    let matches = drain(&mut poet, &mut monitor);
    assert!(!matches.is_empty(), "the 3-cycle must be detected");
    let m = &matches[0];
    // Verify the cycle: each send's destination is the next sender.
    let s1 = m.binding_for("S1").unwrap();
    let s2 = m.binding_for("S2").unwrap();
    let s3 = m.binding_for("S3").unwrap();
    assert_eq!(s1.text(), s2.trace().to_string());
    assert_eq!(s2.text(), s3.trace().to_string());
    assert_eq!(s3.text(), s1.trace().to_string());
}

#[test]
fn no_deadlock_match_without_a_cycle() {
    let src = r#"
        S1 := [$a, mpi_block_send, $b];
        S2 := [$b, mpi_block_send, $a];
        pattern := S1 || S2;
    "#;
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::new(p, 3);
    let mut mpi = MpiPlugin::new(&mut poet);
    // T0 sends to T1, T1 sends to T2 — no cycle.
    mpi.block_send(t(0), t(1));
    mpi.block_send(t(1), t(2));
    assert!(drain(&mut poet, &mut monitor).is_empty());
}

#[test]
fn atomicity_violation_via_semaphore_traces() {
    let p = Pattern::parse(
        "E1 := [*, enter_method, *]; E2 := [*, enter_method, *]; pattern := E1 || E2;",
    )
    .unwrap();
    let mut poet = PoetServer::new(3); // threads 0,1; semaphore 2
    let mut monitor = Monitor::new(p, 3);
    let sem = t(2);
    {
        let mut ucxx = UcxxPlugin::new(&mut poet);
        // Proper protocol: serialized entries — no violation.
        ucxx.acquire(t(0), sem);
        ucxx.enter_method(t(0), "m");
        ucxx.exit_method(t(0), "m");
        ucxx.release(t(0), sem);
        ucxx.acquire(t(1), sem);
        ucxx.enter_method(t(1), "m");
        ucxx.exit_method(t(1), "m");
        ucxx.release(t(1), sem);
    }
    assert!(drain(&mut poet, &mut monitor).is_empty());

    // Buggy run: thread 1 skips the acquire — concurrent entries.
    let p = Pattern::parse(
        "E1 := [*, enter_method, *]; E2 := [*, enter_method, *]; pattern := E1 || E2;",
    )
    .unwrap();
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::new(p, 3);
    {
        let mut ucxx = UcxxPlugin::new(&mut poet);
        ucxx.acquire(t(0), sem);
        ucxx.enter_method(t(0), "m");
        ucxx.enter_method(t(1), "m"); // no acquire!
        ucxx.exit_method(t(1), "m");
        ucxx.exit_method(t(0), "m");
        ucxx.release(t(0), sem);
    }
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1, "the skipped acquire must be caught");
}

#[test]
fn lim_operator_requires_immediate_precedence() {
    // A ~> B: the matched A must have no other A causally between it and B.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A ~> B;").unwrap();
    let mut poet = PoetServer::new(1);
    let mut monitor = Monitor::with_config(
        p,
        1,
        MonitorConfig {
            dedup: false, // keep both a's so the lim check is observable
            policy: SubsetPolicy::PerArrival,
            node_limit: 0,
            parallelism: 1,
            ..MonitorConfig::default()
        },
    );
    let _a1 = poet.record(t(0), EventKind::Unary, "a", "first");
    let a2 = poet.record(t(0), EventKind::Unary, "a", "second");
    poet.record(t(0), EventKind::Unary, "b", "");
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1);
    assert_eq!(
        matches[0].binding_for("A").unwrap().id(),
        a2.id(),
        "only the latest A immediately precedes B"
    );
}

#[test]
fn weak_precedence_between_compounds() {
    // (A || B) -> (C || D): some constituent ordered, groups not entangled.
    let src = "A := [*,a,*]; B := [*,b,*]; C := [*,c,*]; D := [*,d,*]; \
               pattern := (A || B) -> (C || D);";
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(4);
    let mut monitor = Monitor::new(p, 4);
    // a on T0, b on T1 concurrent; then a message from T0 to T2 makes
    // a -> c; d on T3 concurrent with everything except... c and d must
    // be concurrent with each other and (weak) follow {a, b}.
    let a = poet.record(t(0), EventKind::Send, "a", "");
    poet.record(t(1), EventKind::Unary, "b", "");
    poet.record_receive(t(2), a.id(), "deliver", "");
    poet.record(t(2), EventKind::Unary, "c", "");
    poet.record(t(3), EventKind::Unary, "d", "");
    let matches = drain(&mut poet, &mut monitor);
    assert!(
        !matches.is_empty(),
        "a->c orders the compounds; b, d stay concurrent"
    );
}

#[test]
fn weak_precedence_rejects_entangled_compounds() {
    // Crossing messages entangle the two compounds: no match.
    let src = "A := [*,a,*]; B := [*,b,*]; C := [*,c,*]; D := [*,d,*]; \
               pattern := (A && B) -> (C && D);";
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(2);
    let mut monitor = Monitor::new(p, 2);
    // a(T0) -> c(T1)  and  d(T1) -> b(T0): crossing.
    let a = poet.record(t(0), EventKind::Send, "a", "");
    let d = poet.record(t(1), EventKind::Send, "d", "");
    let _c = poet.record_receive(t(1), a.id(), "c", "");
    let _b = poet.record_receive(t(0), d.id(), "b", "");
    let matches = drain(&mut poet, &mut monitor);
    assert!(
        matches.is_empty(),
        "entangled compounds must not satisfy weak precedence: {matches:?}"
    );
}

#[test]
fn fig3_representative_subset_covers_both_sender_traces() {
    // The Fig 3 scenario: several a's on T0 (one per causal block via
    // messages), one a on T1, then b arrives on T2 after messages from
    // both. The representative subset must include an A on T0 *and* an A
    // on T1 — the sliding window baseline famously misses the T1 one.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let mut poet = PoetServer::new(3);
    let mut monitor = Monitor::new(p, 3);
    // Many a's on T0 separated by communication (distinct blocks).
    let mut last_send = None;
    for _ in 0..4 {
        poet.record(t(0), EventKind::Unary, "a", "");
        last_send = Some(poet.record(t(0), EventKind::Send, "sync", ""));
    }
    poet.record_receive(t(2), last_send.unwrap().id(), "sync", "");
    // One a on T1, linked to T2.
    poet.record(t(1), EventKind::Unary, "a", "");
    let s1 = poet.record(t(1), EventKind::Send, "sync", "");
    poet.record_receive(t(2), s1.id(), "sync", "");
    // The terminating b.
    poet.record(t(2), EventKind::Unary, "b", "");
    let _ = drain(&mut poet, &mut monitor);
    assert!(monitor.covers("A", t(0)), "subset must represent A on T0");
    assert!(monitor.covers("A", t(1)), "subset must represent A on T1");
    assert!(monitor.covers("B", t(2)));
    // Bounded: at most k·n entries.
    assert!(monitor.subset().len() <= 2 * 3);
}

#[test]
fn dedup_does_not_change_detection() {
    // Long runs of identical events: with and without §VI dedup the same
    // violations are detected, but storage differs hugely.
    let src = "A := [*, a, *]; B := [*, b, *]; pattern := A -> B;";
    let build = |dedup: bool| {
        let p = Pattern::parse(src).unwrap();
        let mut poet = PoetServer::new(2);
        let mut monitor = Monitor::with_config(
            p,
            2,
            MonitorConfig {
                dedup,
                ..MonitorConfig::default()
            },
        );
        let mut last = None;
        for _ in 0..100 {
            last = Some(poet.record(t(0), EventKind::Unary, "a", ""));
        }
        let s = poet.record(t(0), EventKind::Send, "go", "");
        poet.record_receive(t(1), s.id(), "go", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        let matches = drain(&mut poet, &mut monitor);
        let _ = last;
        (matches.len(), monitor.history_size())
    };
    let (with_dedup_matches, with_dedup_size) = build(true);
    let (without_matches, without_size) = build(false);
    assert_eq!(with_dedup_matches, without_matches);
    assert!(with_dedup_size < without_size / 10);
}

#[test]
fn monitor_subset_is_bounded_by_kn() {
    // Hammer the monitor with many matches; the representative subset and
    // the number of reported matches stay within k·n.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let n = 4;
    let mut poet = PoetServer::new(n);
    let mut monitor = Monitor::new(p, n);
    let mut total_reported = 0;
    for round in 0..50 {
        let src = t((round % (n as u32 - 1)) + 1);
        poet.record(src, EventKind::Unary, "a", "");
        let s = poet.record(src, EventKind::Send, "m", "");
        poet.record_receive(t(0), s.id(), "m", "");
        poet.record(t(0), EventKind::Unary, "b", "");
        total_reported += drain(&mut poet, &mut monitor).len();
    }
    let k = 2;
    assert!(monitor.subset().len() <= k * n);
    assert!(
        total_reported <= k * n,
        "representative policy reported {total_reported} > k*n"
    );
    // But matches keep being *found* (freshness maintenance).
    assert!(monitor.stats().matches_found > total_reported as u64);
}

#[test]
fn stats_count_searches_and_matches() {
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let mut poet = PoetServer::new(1);
    let mut monitor = Monitor::new(p, 1);
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(0), EventKind::Unary, "b", "");
    poet.record(t(0), EventKind::Unary, "zzz", "");
    let _ = drain(&mut poet, &mut monitor);
    let s = monitor.stats();
    assert_eq!(s.events, 3);
    assert_eq!(s.stored, 2);
    assert_eq!(s.searches, 1, "only b is terminating");
    assert_eq!(s.matches_found, 1);
    assert_eq!(s.matches_reported, 1);
}

#[test]
fn suppressed_terminating_events_skip_the_search() {
    // Identical b's in one causal block: only the first triggers a search.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let mut poet = PoetServer::new(1);
    let mut monitor = Monitor::new(p, 1);
    poet.record(t(0), EventKind::Unary, "a", "");
    for _ in 0..10 {
        poet.record(t(0), EventKind::Unary, "b", "");
    }
    let _ = drain(&mut poet, &mut monitor);
    assert_eq!(monitor.stats().searches, 1);
    assert_eq!(monitor.suppressed(), 9);
}

#[test]
fn results_are_linearization_independent() {
    // Replay the same computation in 8 different valid linearizations:
    // the set of covered subset cells must be identical.
    use ocep_poet::Linearizer;
    let src = "A := [*, a, *]; B := [*, b, *]; pattern := A -> B;";
    let mut poet = PoetServer::new(3);
    let a0 = poet.record(t(0), EventKind::Send, "a", "");
    poet.record(t(1), EventKind::Unary, "a", "");
    let r = poet.record_receive(t(2), a0.id(), "x", "");
    let _ = r;
    poet.record(t(2), EventKind::Unary, "b", "");
    let s1 = poet.record(t(1), EventKind::Send, "a", "");
    poet.record_receive(t(2), s1.id(), "x", "");
    poet.record(t(2), EventKind::Unary, "b", "");

    let mut cell_sets = Vec::new();
    for seed in 0..8 {
        let lin = Linearizer::new(poet.store()).with_seed(seed).linearize();
        let p = Pattern::parse(src).unwrap();
        let mut monitor = Monitor::new(p, 3);
        for e in &lin {
            let _ = monitor.observe(e);
        }
        let mut cells = Vec::new();
        for name in ["A", "B"] {
            for tr in 0..3 {
                if monitor.covers(name, t(tr)) {
                    cells.push((name, tr));
                }
            }
        }
        cell_sets.push(cells);
    }
    for w in cell_sets.windows(2) {
        assert_eq!(w[0], w[1], "coverage differs across linearizations");
    }
}

#[test]
fn event_routed_to_multiple_leaves() {
    // One event can be a candidate for several leaves of different classes.
    let p = Pattern::parse("X := [*, ping, *]; Y := [T1, ping, *]; pattern := X || Y;").unwrap();
    let mut poet = PoetServer::new(2);
    let mut monitor = Monitor::new(p, 2);
    poet.record(t(0), EventKind::Unary, "ping", "");
    poet.record(t(1), EventKind::Unary, "ping", "");
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1);
    let m = &matches[0];
    assert_eq!(m.binding_for("Y").unwrap().trace(), t(1));
    assert_eq!(m.binding_for("X").unwrap().trace(), t(0));
}

#[test]
fn display_of_match_names_leaves() {
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let mut poet = PoetServer::new(1);
    let mut monitor = Monitor::new(p, 1);
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(0), EventKind::Unary, "b", "");
    let matches = drain(&mut poet, &mut monitor);
    let shown = matches[0].to_string();
    assert!(shown.contains("A=T0:1"), "{shown}");
    assert!(shown.contains("B=T0:2"), "{shown}");
}

#[test]
fn fig5_jump_bound_fast_forwards_candidates() {
    // Level layout (eval order seeded at Z): [Z, $x, Y] with
    // $x -> Y and $x -> Z. T0 holds many 'a' sends; only the earliest
    // two causally precede the single 'y' on T1. When the search tries
    // the latest 'a' first, Y's domain on T1 empties with $x as the sole
    // culprit — the Fig 5 After-bound must jump the $x cursor straight
    // back to a2 instead of stepping through a8..a3.
    let src = "X := [T0, a, *]; Y := [T1, y, *]; Z := [T0, z, *]; X $x; \
               pattern := $x -> Y && $x -> Z;";
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(2);
    let a1 = poet.record(t(0), EventKind::Send, "a", "1");
    let a2 = poet.record(t(0), EventKind::Send, "a", "2");
    poet.record_receive(t(1), a2.id(), "link", "");
    poet.record(t(1), EventKind::Unary, "y", "");
    for i in 3..=9 {
        poet.record(t(0), EventKind::Send, "a", i.to_string());
    }
    poet.record(t(0), EventKind::Unary, "z", "");
    let mut monitor = Monitor::new(p, 2);
    let matches = drain(&mut poet, &mut monitor);
    let _ = a1;
    assert!(!matches.is_empty(), "a2 -> y and a2 -> z is a match");
    assert_eq!(
        matches.last().unwrap().binding_for("$x").unwrap().text(),
        "2",
        "the latest feasible candidate is a2"
    );
    assert!(
        monitor.stats().jump_bounds > 0,
        "the Fig 5 bound should have fast-forwarded the cursor: {}",
        monitor.stats()
    );
    // And it must have saved work: fewer candidates examined than the
    // chronological worst case (9 a's x retries).
    assert!(monitor.stats().candidates < 20, "{}", monitor.stats());
}

#[test]
fn strong_precedence_requires_every_pair_ordered() {
    // (A && B) ->> C: both a and b must precede c. With a || c the weak
    // arrow would match; the strong one must not.
    let src = "A := [*,a,*]; B := [*,b,*]; C := [*,c,*]; \
               pattern := (A && B) ->> C;";
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(3);
    let b = poet.record(t(1), EventKind::Send, "b", "");
    poet.record_receive(t(2), b.id(), "link", "");
    poet.record(t(0), EventKind::Unary, "a", ""); // concurrent with c
    poet.record(t(2), EventKind::Unary, "c", "");
    let mut monitor = Monitor::new(p, 3);
    assert!(drain(&mut poet, &mut monitor).is_empty());

    // Ordering both a and b before c satisfies it.
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(3);
    let a = poet.record(t(0), EventKind::Send, "a", "");
    poet.record_receive(t(2), a.id(), "link", "");
    let b = poet.record(t(1), EventKind::Send, "b", "");
    poet.record_receive(t(2), b.id(), "link", "");
    poet.record(t(2), EventKind::Unary, "c", "");
    let mut monitor = Monitor::new(p, 3);
    assert_eq!(drain(&mut poet, &mut monitor).len(), 1);
}

#[test]
fn entanglement_operator_matches_crossing_compounds() {
    // (A && B) <-> (C && D): satisfied by crossing messages
    // (a -> c and d -> b), rejected when one group fully precedes.
    let src = "A := [*,a,*]; B := [*,b,*]; C := [*,c,*]; D := [*,d,*]; \
               pattern := (A && B) <-> (C && D);";
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(2);
    let a = poet.record(t(0), EventKind::Send, "a", "");
    let d = poet.record(t(1), EventKind::Send, "d", "");
    poet.record_receive(t(1), a.id(), "c", "");
    poet.record_receive(t(0), d.id(), "b", "");
    let mut monitor = Monitor::with_config(
        p,
        2,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    let matches = drain(&mut poet, &mut monitor);
    assert!(!matches.is_empty(), "crossing groups are entangled");

    // Fully ordered groups are NOT entangled.
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(2);
    let a = poet.record(t(0), EventKind::Send, "a", "");
    poet.record(t(0), EventKind::Unary, "b", "");
    let link = poet.record(t(0), EventKind::Send, "link", "");
    poet.record_receive(t(1), link.id(), "link", "");
    poet.record(t(1), EventKind::Unary, "c", "");
    poet.record(t(1), EventKind::Unary, "d", "");
    let _ = a;
    let mut monitor = Monitor::new(p, 2);
    assert!(drain(&mut poet, &mut monitor).is_empty());
}

#[test]
fn entanglement_between_distinct_primitives_is_rejected() {
    let err = Pattern::parse("A := [*,a,*]; B := [*,b,*]; pattern := A <-> B;").unwrap_err();
    assert!(err.to_string().contains("entanglement"), "{err}");
}

#[test]
fn parallel_search_detects_the_same_violations() {
    // §VI: "Each of these traces represents a subtree in the total search
    // space. This parallelism can be exploited." Partitioning the level-1
    // subtrees across threads must preserve detection and cell coverage.
    let src = r#"
        S1 := [$a, mpi_block_send, $b];
        S2 := [$b, mpi_block_send, $c];
        S3 := [$c, mpi_block_send, $a];
        S1 $x; S2 $y; S3 $z;
        pattern := $x || $y && $y || $z && $x || $z;
    "#;
    let n = 6;
    let build = |parallelism: usize| {
        let mut poet = PoetServer::new(n);
        let mut monitor = Monitor::with_config(
            Pattern::parse(src).unwrap(),
            n,
            MonitorConfig {
                parallelism,
                ..MonitorConfig::default()
            },
        );
        // Two separate deadlock cycles: (0,1,2) and (3,4,5).
        {
            let mut mpi = MpiPlugin::new(&mut poet);
            for round in 0..2u32 {
                let base = round * 3;
                for i in 0..3 {
                    mpi.block_send(t(base + i), t(base + (i + 1) % 3));
                }
            }
        }
        for e in poet.linearization() {
            let _ = monitor.observe(&e);
        }
        let cells: Vec<(String, u32)> = (0..3)
            .flat_map(|leaf| (0..n as u32).map(move |tr| (format!("S{leaf}"), tr)))
            .collect();
        let covered: Vec<bool> = cells
            .iter()
            .map(|(name, tr)| monitor.covers(name, t(*tr)))
            .collect();
        (monitor.stats().matches_found > 0, covered)
    };
    let (seq_found, seq_cells) = build(1);
    let (par_found, par_cells) = build(4);
    assert!(seq_found && par_found);
    assert_eq!(
        seq_cells, par_cells,
        "coverage must be thread-count independent"
    );
}

#[test]
fn regression_cbj_blames_domain_contributors() {
    // Minimal input shrunk by proptest for a former bug: when all
    // candidates in a non-empty domain fail, levels that *narrowed* the
    // domain must share the blame, or the backjump skips the candidate
    // that would have widened it. Pattern: A -> B && C -> B#2 with two
    // independent B leaves.
    let p = Pattern::parse(
        "A := [*, a, *]; B := [*, b, *]; C := [*, c, *]; \
         pattern := A -> B && C -> B;",
    )
    .unwrap();
    let mut poet = PoetServer::new(2);
    poet.record(t(0), EventKind::Send, "a", "");
    let s = poet.record(t(1), EventKind::Send, "b", "");
    poet.record_receive(t(0), s.id(), "b", "");
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(0), EventKind::Unary, "c", "");
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(0), EventKind::Unary, "b", "");
    let mut monitor = Monitor::with_config(
        p,
        2,
        MonitorConfig {
            dedup: false,
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    let matches = drain(&mut poet, &mut monitor);
    assert!(
        !matches.is_empty(),
        "A=a@1 -> B=recv-b, C=c -> B#2=b@6 must be found"
    );
}

#[test]
fn chain_pattern_across_five_traces() {
    // A1 -> A2 -> A3 -> A4 -> A5, one hop per trace via messages.
    let src = "E := [*, hop, *]; E $e1; \
               F := [*, hop, *]; F $e2; \
               G := [*, hop, *]; G $e3; \
               H := [*, hop, *]; H $e4; \
               I := [*, hop, *]; I $e5; \
               pattern := $e1 -> $e2 && $e2 -> $e3 && $e3 -> $e4 && $e4 -> $e5;";
    let p = Pattern::parse(src).unwrap();
    let n = 5;
    let mut poet = PoetServer::new(n);
    let mut prev = poet.record(t(0), EventKind::Send, "hop", "0");
    for i in 1..n as u32 {
        poet.record_receive(t(i), prev.id(), "link", "");
        prev = poet.record(t(i), EventKind::Send, "hop", i.to_string());
    }
    let mut monitor = Monitor::new(p, n);
    let matches = drain(&mut poet, &mut monitor);
    assert!(!matches.is_empty(), "the 5-hop chain must match");
    let m = &matches[0];
    for (i, var) in ["$e1", "$e2", "$e3", "$e4", "$e5"].iter().enumerate() {
        assert_eq!(
            m.binding_for(var).unwrap().trace(),
            t(i as u32),
            "hop {i} must land on trace {i}"
        );
    }
}

#[test]
fn seed_bindings_constrain_earlier_levels() {
    // The terminating event binds $p; candidates for the other leaf on
    // non-matching traces must be rejected by the binding even though
    // their causality fits.
    let p = Pattern::parse("W := [$p, work, *]; D := [*, done, $p]; pattern := W -> D;").unwrap();
    let mut poet = PoetServer::new(3);
    let w0 = poet.record(t(0), EventKind::Send, "work", "");
    let w1 = poet.record(t(1), EventKind::Send, "work", "");
    poet.record_receive(t(2), w0.id(), "link", "");
    poet.record_receive(t(2), w1.id(), "link", "");
    // done names T1, so only w1 qualifies despite w0 also preceding it.
    poet.record(t(2), EventKind::Unary, "done", "T1");
    let mut monitor = Monitor::with_config(
        p,
        3,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].binding_for("W").unwrap().id(), w1.id());
}

#[test]
fn same_trace_candidates_never_satisfy_concurrency() {
    let p = Pattern::parse("A := [*, x, *]; B := [*, x, *]; pattern := A || B;").unwrap();
    let mut poet = PoetServer::new(1);
    for i in 0..5 {
        poet.record(t(0), EventKind::Send, "x", i.to_string());
    }
    let mut monitor = Monitor::new(p, 1);
    assert!(drain(&mut poet, &mut monitor).is_empty());
}

#[test]
fn text_index_resolves_bound_variables_without_scanning() {
    // Many rounds with unique tokens: the Synch-style level must resolve
    // through the text index, keeping candidates examined per search
    // bounded instead of scanning all prior rounds.
    let src = "Q := [T0, q, $tok]; R := [T1, r, $tok]; pattern := Q -> R;";
    let p = Pattern::parse(src).unwrap();
    let mut poet = PoetServer::new(2);
    let rounds = 300u32;
    for i in 0..rounds {
        let q = poet.record(t(0), EventKind::Send, "q", format!("tok{i}"));
        poet.record_receive(t(1), q.id(), "link", "");
        poet.record(t(1), EventKind::Unary, "r", format!("tok{i}"));
    }
    let mut monitor = Monitor::with_config(
        p,
        2,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len() as u32, rounds, "one match per token round");
    for m in &matches {
        assert_eq!(
            m.binding_for("Q").unwrap().text(),
            m.binding_for("R").unwrap().text()
        );
    }
    // Without the index each of the 300 searches would scan up to 300
    // q-candidates (~45k); with it, one lookup each.
    let per_search = monitor.stats().candidates as f64 / monitor.stats().searches as f64;
    assert!(
        per_search < 4.0,
        "text-indexed lookup degraded to scanning: {per_search:.1} candidates/search"
    );
}

#[test]
fn regression_partner_pinned_first_level_is_worker_count_independent() {
    // When the first two backtracking levels are a `<>` pair, the second
    // level has a *unique* candidate (the partner index resolves it), so
    // partitioning level-1 traces across workers must not lose or
    // duplicate matches — the monitor falls back to one inline search.
    let src = "S := [*, mpi_send, *]; R := [*, mpi_recv, *]; pattern := S <> R;";
    let n = 4;
    let run = |parallelism: usize| {
        let mut poet = PoetServer::new(n);
        // Four send/recv pairs, each crossing to a different trace.
        for i in 0..n as u32 {
            let s = poet.record(t(i), EventKind::Send, "mpi_send", "");
            poet.record_receive(t((i + 1) % n as u32), s.id(), "mpi_recv", "");
        }
        let mut monitor = Monitor::with_config(
            Pattern::parse(src).unwrap(),
            n,
            MonitorConfig {
                policy: SubsetPolicy::PerArrival,
                parallelism,
                ..MonitorConfig::default()
            },
        );
        let mut ids: Vec<Vec<ocep_vclock::EventId>> = drain(&mut poet, &mut monitor)
            .iter()
            .map(|m| m.events().iter().map(ocep_poet::Event::id).collect())
            .collect();
        ids.sort();
        ids
    };
    let sequential = run(1);
    let pooled = run(4);
    assert_eq!(sequential.len(), n, "one match per send/recv pair");
    assert_eq!(
        sequential, pooled,
        "partner-pinned searches must return identical matches at any worker count"
    );
}

#[test]
fn hot_path_counts_avoided_event_clones() {
    // The Fig 4 restriction loop borrows assigned events instead of
    // cloning them; every evaluated restriction bumps the ablation
    // counter so `ocep-bench` can report the avoided allocation volume.
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
    let n = 3;
    let mut poet = PoetServer::new(n);
    let s = poet.record(t(0), EventKind::Send, "a", "");
    poet.record_receive(t(1), s.id(), "b", "");
    let mut monitor = Monitor::new(p, n);
    let matches = drain(&mut poet, &mut monitor);
    assert_eq!(matches.len(), 1);
    let stats = monitor.stats();
    assert!(
        stats.clones_avoided > 0,
        "the A->B restriction must have borrowed the assigned event: {stats}"
    );
    assert_eq!(
        stats.clone_bytes_avoided,
        stats.clones_avoided * (n as u64) * 4,
        "each avoided clone saves one n_traces-wide u32 timestamp buffer"
    );
}
