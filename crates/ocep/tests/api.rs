//! API-surface tests for the monitor: configuration accessors, stats
//! display, and subset accessors.

use ocep_core::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_pattern::Pattern;
use ocep_poet::{EventKind, PoetServer};
use ocep_vclock::TraceId;

fn t(i: u32) -> TraceId {
    TraceId::new(i)
}

fn ab() -> Pattern {
    Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap()
}

#[test]
fn config_is_exposed() {
    let m = Monitor::with_config(
        ab(),
        2,
        MonitorConfig {
            dedup: false,
            policy: SubsetPolicy::PerArrival,
            node_limit: 7,
            parallelism: 2,
            ..MonitorConfig::default()
        },
    );
    assert!(!m.config().dedup);
    assert_eq!(m.config().policy, SubsetPolicy::PerArrival);
    assert_eq!(m.config().node_limit, 7);
    assert_eq!(m.config().parallelism, 2);
    // Defaults.
    let d = Monitor::new(ab(), 2);
    assert!(d.config().dedup);
    assert_eq!(d.config().policy, SubsetPolicy::Representative);
    assert_eq!(d.config().node_limit, 0);
    assert_eq!(d.config().parallelism, 1);
}

#[test]
fn stats_display_lists_every_counter() {
    let mut poet = PoetServer::new(1);
    let mut m = Monitor::new(ab(), 1);
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(0), EventKind::Unary, "b", "");
    for e in poet.linearization() {
        let _ = m.observe(&e);
    }
    let shown = m.stats().to_string();
    for field in [
        "events=2",
        "stored=2",
        "searches=1",
        "found=1",
        "reported=1",
        "nodes=",
        "candidates=",
        "domains=",
        "backjumps=",
        "jump_bounds=",
        "deferred_rejections=",
        "clones_avoided=",
        "clone_bytes_avoided=",
    ] {
        assert!(shown.contains(field), "missing {field} in: {shown}");
    }
}

#[test]
fn pattern_accessor_and_history_metrics() {
    let mut poet = PoetServer::new(2);
    let mut m = Monitor::new(ab(), 2);
    assert_eq!(m.pattern().n_leaves(), 2);
    assert_eq!(m.history_size(), 0);
    assert_eq!(m.history_bytes(), 0);
    poet.record(t(0), EventKind::Unary, "a", "");
    for e in poet.linearization() {
        let _ = m.observe(&e);
    }
    assert_eq!(m.history_size(), 1);
    assert!(m.history_bytes() > 0);
}

#[test]
fn subset_lists_each_distinct_match_once() {
    // One match covers cells for both leaves; subset() must not repeat it.
    let mut poet = PoetServer::new(1);
    let mut m = Monitor::new(ab(), 1);
    poet.record(t(0), EventKind::Unary, "a", "");
    poet.record(t(0), EventKind::Unary, "b", "");
    for e in poet.linearization() {
        let _ = m.observe(&e);
    }
    assert_eq!(m.subset().len(), 1);
    assert!(m.covers("A", t(0)));
    assert!(m.covers("B", t(0)));
    assert!(!m.covers("A", t(0)) || !m.covers("Nope", t(0)));
}

#[test]
fn covers_resolves_occurrence_and_class_names() {
    let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B && A -> B;").unwrap();
    let mut poet = PoetServer::new(1);
    let mut m = Monitor::with_config(
        p,
        1,
        MonitorConfig {
            dedup: false,
            ..MonitorConfig::default()
        },
    );
    poet.record(t(0), EventKind::Unary, "a", "x");
    poet.record(t(0), EventKind::Unary, "a", "y");
    poet.record(t(0), EventKind::Unary, "b", "x");
    poet.record(t(0), EventKind::Unary, "b", "y");
    for e in poet.linearization() {
        let _ = m.observe(&e);
    }
    // Class name covers both occurrences; exact names work too.
    assert!(m.covers("A", t(0)));
    assert!(m.covers("A#2", t(0)));
    assert!(m.covers("B#2", t(0)));
    assert!(!m.covers("C", t(0)));
}

#[test]
fn monitor_set_shares_one_worker_pool() {
    use ocep_core::MonitorSet;
    let parallel = MonitorConfig {
        parallelism: 3,
        ..MonitorConfig::default()
    };
    let mut set = MonitorSet::new(4);
    set.add_with_config("ab", ab(), parallel);
    set.ensure_pool(2);
    // Monitors registered after the pool exists pick it up too.
    set.add_with_config(
        "conc",
        Pattern::parse("X := [*, a, *]; Y := [*, a, *]; pattern := X || Y;").unwrap(),
        parallel,
    );
    let mut poet = PoetServer::new(4);
    // a -> b across a message (fires "ab"), plus a concurrent second
    // "a" on another trace (fires "conc").
    let s = poet.record(t(0), EventKind::Send, "a", "");
    poet.record_receive(t(1), s.id(), "b", "");
    poet.record(t(2), EventKind::Unary, "a", "");
    let names: Vec<String> = poet
        .linearization()
        .flat_map(|e| set.observe(&e))
        .map(|(name, _)| name)
        .collect();
    assert!(names.iter().any(|n| n == "ab"));
    assert!(names.iter().any(|n| n == "conc"));
    assert!(set.total_stats().searches > 0);
}
