//! Monitor checkpoint/restore: crash recovery for a long-running monitor.
//!
//! A checkpoint captures everything the matcher's *future* behavior
//! depends on — the leaf histories (with their dedup bookkeeping), the
//! §IV-B representative subset, the cumulative [`MonitorStats`], the
//! configuration, and the admission guard's reorder state — so a monitor
//! restored from a checkpoint and fed the remainder of the stream
//! produces bit-identical verdicts to one that never stopped. The stream
//! position is implied by `stats.events` (raw arrivals consumed): a
//! resuming driver replays the recorded stream and skips that many
//! arrivals.
//!
//! The byte format follows the conventions of the POET dump
//! (`ocep_poet::dump`): little-endian, magic-and-version header, an
//! interned string table, and decoding through the offset-tracking
//! [`Reader`] so a truncated or corrupt checkpoint yields a diagnostic
//! with a byte offset, never a panic.
//!
//! ```text
//! magic        [u8;4] = b"OCKP", version u16 = 2
//! pattern_src  str (u32 len + utf-8) — the monitored pattern's source
//! n_traces     u32
//! config       dedup u8, policy u8, node_limit u64, parallelism u64,
//!              guard u8 [, capacity u64, overflow u8]
//! stats        26 × u64 (MonitorStats incl. IngestStats, fixed order)
//! strings      u32 count, then u32-len-prefixed utf-8 entries
//! events       u32 count; per event: trace u32, index u32, kind u8,
//!              ty u32, text u32, partner u8 [trace u32, index u32],
//!              clock_len u32, entries u32×len
//! history      relevant u64×n; per leaf: last_relevant u64×n;
//!              per leaf×trace: u32 count + event refs; stored u64,
//!              suppressed u64
//! subset       per leaf×trace: u8 flag [, n_leaves event refs]
//! guard        (iff config.guard) admitted u32×n;
//!              u32 buffered + event refs; 12 × u64 guard stats
//! obs          marker u8; iff 1: level u8, 5 stage histograms,
//!              arrival histogram, search obs (u32 level count +
//!              histograms, 2 histograms, 3 × u64), recent ring
//!              (u32 count; per record: seq u64, event str, stored u8,
//!              5 × u64); histogram := u32 n (0 or 40) + n × u64 counts,
//!              sum u64, max u64
//! ```
//!
//! Version 2 appends the trailing `obs` section; version-1 checkpoints
//! (which end after `guard`) still load, restoring with metrics off. The
//! `obs` level lives *inside* the optional section — not in the config
//! block — so an `Off` checkpoint and a metrics-stripped one (see
//! [`strip_metrics`]) are byte-identical.
//!
//! Version 3 appends a trailing `wal_lsn u64`: the durable-log position
//! this checkpoint is anchored at (see `docs/DURABILITY.md`). A recovery
//! replays the log strictly after that LSN. Version 1/2 checkpoints load
//! with `wal_lsn = 0`, and [`save`] (which has no log) writes 0.
//!
//! The guard's capped fault *log* is deliberately not checkpointed (the
//! counters are); a restored monitor starts with an empty log.

use crate::history::LeafHistory;
use crate::ingest::{GuardConfig, IngestStats, OverflowPolicy};
use crate::matching::Match;
use crate::monitor::{Monitor, MonitorConfig, SubsetPolicy};
use crate::multi::MonitorSet;
use crate::obs::{ArrivalRecord, Histogram, Metrics, ObsLevel, HIST_BUCKETS, RECENT_CAP};
use crate::stats::MonitorStats;
use ocep_pattern::Pattern;
use ocep_poet::dump::Reader;
use ocep_poet::{Event, EventKind, PoetError};
use ocep_vclock::{EventId, EventIndex, StampedEvent, TraceId, VectorClock};
use std::collections::HashMap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"OCKP";
const VERSION: u16 = 3;

/// Why a checkpoint failed to decode.
#[derive(Debug)]
pub enum CheckpointError {
    /// The byte stream itself was malformed (truncated, bad magic,
    /// version mismatch, trailing garbage); carries the offset.
    Format(PoetError),
    /// The bytes decoded but describe an inconsistent monitor (out of
    /// range references, shape mismatches, a pattern that fails to
    /// parse).
    Invalid(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Format(e) => write!(f, "checkpoint format error: {e}"),
            CheckpointError::Invalid(s) => write!(f, "invalid checkpoint: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<PoetError> for CheckpointError {
    fn from(e: PoetError) -> Self {
        CheckpointError::Format(e)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Interns every distinct event (by id) and string reachable from the
/// monitor, so shared events serialize once.
struct EventTable<'m> {
    events: Vec<&'m Event>,
    ids: HashMap<EventId, u32>,
    strings: Vec<&'m str>,
    string_ids: HashMap<&'m str, u32>,
}

impl<'m> EventTable<'m> {
    fn new() -> Self {
        EventTable {
            events: Vec::new(),
            ids: HashMap::new(),
            strings: Vec::new(),
            string_ids: HashMap::new(),
        }
    }

    fn intern_str(&mut self, s: &'m str) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.string_ids.insert(s, id);
        self.strings.push(s);
        id
    }

    fn intern(&mut self, e: &'m Event) -> u32 {
        if let Some(&id) = self.ids.get(&e.id()) {
            return id;
        }
        let id = self.events.len() as u32;
        self.ids.insert(e.id(), id);
        self.events.push(e);
        self.intern_str(e.ty());
        self.intern_str(e.text());
        id
    }
}

fn put_stats(buf: &mut Vec<u8>, s: &MonitorStats) {
    for v in [
        s.events,
        s.stored,
        s.searches,
        s.matches_found,
        s.matches_reported,
        s.nodes,
        s.candidates,
        s.domains,
        s.backjumps,
        s.jump_bounds,
        s.deferred_rejections,
        s.clones_avoided,
        s.clone_bytes_avoided,
        s.degraded_arrivals,
    ] {
        put_u64(buf, v);
    }
    put_ingest_stats(buf, &s.ingest);
}

fn put_ingest_stats(buf: &mut Vec<u8>, g: &IngestStats) {
    for v in [
        g.admitted,
        g.duplicates_dropped,
        g.buffered,
        g.reordered_delivered,
        g.quarantined_trace_range,
        g.quarantined_clock_width,
        g.quarantined_non_monotone,
        g.overflow_rejected,
        g.overflow_dropped,
        g.degraded_flushes,
        g.degraded_delivered,
        g.buffered_peak,
    ] {
        put_u64(buf, v);
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<MonitorStats, PoetError> {
    let mut s = MonitorStats::default();
    for field in [
        &mut s.events,
        &mut s.stored,
        &mut s.searches,
        &mut s.matches_found,
        &mut s.matches_reported,
        &mut s.nodes,
        &mut s.candidates,
        &mut s.domains,
        &mut s.backjumps,
        &mut s.jump_bounds,
        &mut s.deferred_rejections,
        &mut s.clones_avoided,
        &mut s.clone_bytes_avoided,
        &mut s.degraded_arrivals,
    ] {
        *field = r.u64("monitor stat")?;
    }
    s.ingest = read_ingest_stats(r)?;
    Ok(s)
}

fn put_hist(buf: &mut Vec<u8>, h: &Histogram) {
    let counts = h.bucket_counts();
    put_u32(buf, counts.len() as u32);
    for &c in counts {
        put_u64(buf, c);
    }
    put_u64(buf, h.sum());
    put_u64(buf, h.max());
}

fn read_hist(r: &mut Reader<'_>) -> Result<Histogram, CheckpointError> {
    let n = r.u32("histogram bucket count")? as usize;
    if n != 0 && n != HIST_BUCKETS {
        return Err(CheckpointError::Invalid(format!(
            "histogram with {n} buckets (expected 0 or {HIST_BUCKETS})"
        )));
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.u64("histogram bucket")?);
    }
    let sum = r.u64("histogram sum")?;
    let max = r.u64("histogram max")?;
    Ok(Histogram::from_raw(counts, sum, max))
}

fn put_metrics(buf: &mut Vec<u8>, m: &Metrics) {
    buf.push(m.level().code());
    for h in &m.stage_ns {
        put_hist(buf, h);
    }
    put_hist(buf, &m.arrival_ns);
    put_u32(buf, m.search.domain_width.len() as u32);
    for h in &m.search.domain_width {
        put_hist(buf, h);
    }
    put_hist(buf, &m.search.backjump_depth);
    put_hist(buf, &m.search.conflict_size);
    put_u64(buf, m.search.prune_gp_ls);
    put_u64(buf, m.search.prune_intersect);
    put_u64(buf, m.search.domain_ns);
    // Rotation is an in-memory detail: records go out oldest-first and
    // come back unrotated (RecentRing compares by content).
    let recent = m.recent.records();
    put_u32(buf, recent.len() as u32);
    for rec in &recent {
        put_u64(buf, rec.seq);
        put_str(buf, &rec.event);
        buf.push(u8::from(rec.stored));
        for v in [
            rec.searches,
            rec.matches_found,
            rec.matches_reported,
            rec.nodes,
            rec.total_ns,
        ] {
            put_u64(buf, v);
        }
    }
}

fn read_metrics(r: &mut Reader<'_>) -> Result<Metrics, CheckpointError> {
    let code = r.u8("obs level")?;
    let level = ObsLevel::from_code(code)
        .ok_or_else(|| CheckpointError::Invalid(format!("unknown obs level {code}")))?;
    let mut m = Metrics::new(level);
    for h in &mut m.stage_ns {
        *h = read_hist(r)?;
    }
    m.arrival_ns = read_hist(r)?;
    let n_levels = r.u32("domain width level count")? as usize;
    if n_levels > crate::obs::MAX_TRACKED_LEVELS {
        return Err(CheckpointError::Invalid(format!(
            "domain width tracked for {n_levels} levels (max {})",
            crate::obs::MAX_TRACKED_LEVELS
        )));
    }
    for _ in 0..n_levels {
        m.search.domain_width.push(read_hist(r)?);
    }
    m.search.backjump_depth = read_hist(r)?;
    m.search.conflict_size = read_hist(r)?;
    m.search.prune_gp_ls = r.u64("prune_gp_ls")?;
    m.search.prune_intersect = r.u64("prune_intersect")?;
    m.search.domain_ns = r.u64("domain_ns")?;
    let n_recent = r.u32("recent record count")? as usize;
    if n_recent > RECENT_CAP {
        return Err(CheckpointError::Invalid(format!(
            "{n_recent} recent records (ring capacity {RECENT_CAP})"
        )));
    }
    for _ in 0..n_recent {
        let seq = r.u64("record seq")?;
        let event = r.str("record event")?.to_string();
        let stored = r.u8("record stored flag")? != 0;
        let searches = r.u64("record searches")?;
        let matches_found = r.u64("record matches_found")?;
        let matches_reported = r.u64("record matches_reported")?;
        let nodes = r.u64("record nodes")?;
        let total_ns = r.u64("record total_ns")?;
        m.recent.push(ArrivalRecord {
            seq,
            event,
            stored,
            searches,
            matches_found,
            matches_reported,
            nodes,
            total_ns,
        });
    }
    Ok(m)
}

fn read_ingest_stats(r: &mut Reader<'_>) -> Result<IngestStats, PoetError> {
    let mut g = IngestStats::default();
    for field in [
        &mut g.admitted,
        &mut g.duplicates_dropped,
        &mut g.buffered,
        &mut g.reordered_delivered,
        &mut g.quarantined_trace_range,
        &mut g.quarantined_clock_width,
        &mut g.quarantined_non_monotone,
        &mut g.overflow_rejected,
        &mut g.overflow_dropped,
        &mut g.degraded_flushes,
        &mut g.degraded_delivered,
        &mut g.buffered_peak,
    ] {
        *field = r.u64("ingest stat")?;
    }
    Ok(g)
}

/// Serializes `monitor` (monitoring the pattern whose source text is
/// `pattern_src`) to the checkpoint format, anchored at `wal_lsn = 0`
/// (for checkpoints taken outside a durable log).
#[must_use]
pub fn save(monitor: &Monitor, pattern_src: &str) -> Vec<u8> {
    save_at(monitor, pattern_src, 0)
}

/// Serializes `monitor` anchored at log position `wal_lsn`: a recovery
/// restores the checkpoint and replays the durable log strictly after
/// that LSN.
#[must_use]
pub fn save_at(monitor: &Monitor, pattern_src: &str, wal_lsn: u64) -> Vec<u8> {
    let n_traces = monitor.history.n_traces();
    let n_leaves = monitor.pattern().n_leaves();

    // Intern everything reachable, deterministic order: histories first
    // (leaf-major, trace-major, index order), then subset, then guard.
    let mut table = EventTable::new();
    for leaf in &monitor.history.per_leaf {
        for trace in leaf {
            for e in trace {
                table.intern(e);
            }
        }
    }
    for per_trace in &monitor.subset {
        for m in per_trace.iter().flatten() {
            for e in m.events() {
                table.intern(e);
            }
        }
    }
    if let Some(g) = &monitor.guard {
        for e in &g.buffer {
            table.intern(e);
        }
    }

    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    put_str(&mut buf, pattern_src);
    put_u32(&mut buf, n_traces as u32);

    let config = monitor.config();
    buf.push(u8::from(config.dedup));
    buf.push(match config.policy {
        SubsetPolicy::Representative => 0,
        SubsetPolicy::PerArrival => 1,
    });
    put_u64(&mut buf, config.node_limit);
    put_u64(&mut buf, config.parallelism as u64);
    match config.guard {
        Some(g) => {
            buf.push(1);
            put_u64(&mut buf, g.capacity as u64);
            buf.push(match g.overflow {
                OverflowPolicy::Reject => 0,
                OverflowPolicy::DropOldest => 1,
                OverflowPolicy::FlushDegraded => 2,
            });
        }
        None => buf.push(0),
    }

    put_stats(&mut buf, monitor.stats());

    put_u32(&mut buf, table.strings.len() as u32);
    for s in &table.strings {
        put_str(&mut buf, s);
    }

    put_u32(&mut buf, table.events.len() as u32);
    for e in &table.events {
        put_u32(&mut buf, e.trace().as_u32());
        put_u32(&mut buf, e.index().get());
        buf.push(match e.kind() {
            EventKind::Send => 0,
            EventKind::Receive => 1,
            EventKind::Unary => 2,
        });
        put_u32(&mut buf, table.string_ids[e.ty()]);
        put_u32(&mut buf, table.string_ids[e.text()]);
        match e.partner() {
            Some(p) => {
                buf.push(1);
                put_u32(&mut buf, p.trace().as_u32());
                put_u32(&mut buf, p.index().get());
            }
            None => buf.push(0),
        }
        let entries = e.clock().entries();
        put_u32(&mut buf, entries.len() as u32);
        for &v in entries {
            put_u32(&mut buf, v);
        }
    }

    for &v in &monitor.history.relevant {
        put_u64(&mut buf, v);
    }
    for l in 0..n_leaves {
        for &v in &monitor.history.last_relevant[l] {
            put_u64(&mut buf, v);
        }
    }
    for leaf in &monitor.history.per_leaf {
        for trace in leaf {
            put_u32(&mut buf, trace.len() as u32);
            for e in trace {
                put_u32(&mut buf, table.ids[&e.id()]);
            }
        }
    }
    put_u64(&mut buf, monitor.history.stored as u64);
    put_u64(&mut buf, monitor.history.suppressed as u64);

    for per_trace in &monitor.subset {
        for cell in per_trace {
            match cell {
                Some(m) => {
                    buf.push(1);
                    for e in m.events() {
                        put_u32(&mut buf, table.ids[&e.id()]);
                    }
                }
                None => buf.push(0),
            }
        }
    }

    if let Some(g) = &monitor.guard {
        for &v in &g.admitted {
            put_u32(&mut buf, v);
        }
        put_u32(&mut buf, g.buffer.len() as u32);
        for e in &g.buffer {
            put_u32(&mut buf, table.ids[&e.id()]);
        }
        put_ingest_stats(&mut buf, g.stats());
    }

    match &monitor.obs {
        Some(m) => {
            buf.push(1);
            put_metrics(&mut buf, m);
        }
        None => buf.push(0),
    }

    put_u64(&mut buf, wal_lsn);

    buf
}

/// Decodes a checkpoint back into a live [`Monitor`], returning it with
/// the pattern source it was monitoring (so a resuming driver can verify
/// it matches the pattern file it was invoked with).
///
/// # Errors
///
/// [`CheckpointError::Format`] on malformed bytes (with a byte offset),
/// [`CheckpointError::Invalid`] on well-formed bytes that describe an
/// inconsistent monitor. Never panics.
pub fn load(data: &[u8]) -> Result<(Monitor, String), CheckpointError> {
    load_at(data).map(|(m, src, _)| (m, src))
}

/// Like [`load`], but also returns the `wal_lsn` the checkpoint is
/// anchored at (0 for pre-v3 checkpoints and log-less saves).
///
/// # Errors
///
/// See [`load`].
pub fn load_at(data: &[u8]) -> Result<(Monitor, String, u64), CheckpointError> {
    let mut r = Reader::new(data);
    r.magic(MAGIC)?;
    let version = r.u16("version")?;
    if version == 0 || version > VERSION {
        return Err(CheckpointError::Format(PoetError::BadHeader(format!(
            "checkpoint version {version} is not supported (expected 1..={VERSION})"
        ))));
    }
    let pattern_src = r.str("pattern source")?.to_string();
    let n_traces = r.u32("n_traces")? as usize;

    let dedup = r.u8("config.dedup")? != 0;
    let policy = match r.u8("config.policy")? {
        0 => SubsetPolicy::Representative,
        1 => SubsetPolicy::PerArrival,
        k => {
            return Err(CheckpointError::Invalid(format!(
                "unknown subset policy {k}"
            )))
        }
    };
    let node_limit = r.u64("config.node_limit")?;
    let parallelism = r.u64("config.parallelism")? as usize;
    let guard_cfg = if r.u8("config.guard flag")? != 0 {
        let capacity = r.u64("guard capacity")? as usize;
        let overflow = match r.u8("guard overflow policy")? {
            0 => OverflowPolicy::Reject,
            1 => OverflowPolicy::DropOldest,
            2 => OverflowPolicy::FlushDegraded,
            k => {
                return Err(CheckpointError::Invalid(format!(
                    "unknown overflow policy {k}"
                )))
            }
        };
        Some(GuardConfig { capacity, overflow })
    } else {
        None
    };
    let config = MonitorConfig {
        dedup,
        policy,
        node_limit,
        parallelism,
        guard: guard_cfg,
        // The obs level is stored inside the trailing obs section (when
        // present), not in the config block; restored below.
        obs: ObsLevel::Off,
        inject_partition_panic: None,
    };

    let stats = read_stats(&mut r)?;

    let n_strings = r.u32("string count")? as usize;
    let mut strings: Vec<Arc<str>> = Vec::with_capacity(n_strings.min(4096));
    for _ in 0..n_strings {
        strings.push(Arc::from(r.str("string table entry")?));
    }

    let n_events = r.u32("event count")? as usize;
    let mut events: Vec<Event> = Vec::with_capacity(n_events.min(65536));
    for i in 0..n_events {
        let at = r.offset();
        let trace = r.u32("event trace")?;
        let index = r.u32("event index")?;
        let kind = match r.u8("event kind")? {
            0 => EventKind::Send,
            1 => EventKind::Receive,
            2 => EventKind::Unary,
            k => {
                return Err(CheckpointError::Format(PoetError::Corrupt(format!(
                    "bad kind {k} for event {i} at byte {at}"
                ))))
            }
        };
        let lookup = |id: u32, what: &str| -> Result<Arc<str>, CheckpointError> {
            strings.get(id as usize).cloned().ok_or_else(|| {
                CheckpointError::Format(PoetError::Corrupt(format!(
                    "unknown string {id} for event {what} at byte {at}"
                )))
            })
        };
        let ty = lookup(r.u32("event ty")?, "ty")?;
        let text = lookup(r.u32("event text")?, "text")?;
        let partner = if r.u8("partner flag")? != 0 {
            let pt = r.u32("partner trace")?;
            let pi = r.u32("partner index")?;
            if pt as usize >= n_traces || pi == 0 {
                return Err(CheckpointError::Invalid(format!(
                    "event {i} partner T{pt}:{pi} out of range"
                )));
            }
            Some(EventId::new(TraceId::new(pt), EventIndex::new(pi)))
        } else {
            None
        };
        let clock_len = r.u32("clock length")? as usize;
        if clock_len != n_traces {
            return Err(CheckpointError::Invalid(format!(
                "event {i} clock has {clock_len} entries over {n_traces} traces"
            )));
        }
        let mut entries = Vec::with_capacity(clock_len);
        for _ in 0..clock_len {
            entries.push(r.u32("clock entry")?);
        }
        if (trace as usize) >= n_traces || index == 0 || entries[trace as usize] != index {
            return Err(CheckpointError::Invalid(format!(
                "event {i} (T{trace}:{index}) violates the Fidge convention"
            )));
        }
        let id = EventId::new(TraceId::new(trace), EventIndex::new(index));
        let stamp = StampedEvent::new(id, VectorClock::from_entries(entries));
        events.push(Event::new(stamp, kind, ty, text, partner));
    }

    let pattern = Pattern::parse(&pattern_src)
        .map_err(|e| CheckpointError::Invalid(format!("pattern failed to parse: {e}")))?;
    let mut monitor = Monitor::with_config(pattern, n_traces, config);
    let n_leaves = monitor.pattern().n_leaves();

    let lookup_event = |idx: u32| -> Result<Event, CheckpointError> {
        events.get(idx as usize).cloned().ok_or_else(|| {
            CheckpointError::Invalid(format!(
                "event reference {idx} beyond table of {}",
                events.len()
            ))
        })
    };

    let mut history = LeafHistory::new_for(monitor.pattern(), n_traces, dedup);
    for t in 0..n_traces {
        history.relevant[t] = r.u64("relevant counter")?;
    }
    for l in 0..n_leaves {
        for t in 0..n_traces {
            history.last_relevant[l][t] = r.u64("last_relevant counter")?;
        }
    }
    for l in 0..n_leaves {
        for t in 0..n_traces {
            let count = r.u32("history length")? as usize;
            for _ in 0..count {
                let e = lookup_event(r.u32("history event ref")?)?;
                if e.trace().as_usize() != t {
                    return Err(CheckpointError::Invalid(format!(
                        "event {} filed under trace {t}",
                        e.id()
                    )));
                }
                let slot = &mut history.per_leaf[l][t];
                if let Some(prev) = slot.last() {
                    if prev.index() >= e.index() {
                        return Err(CheckpointError::Invalid(format!(
                            "history for leaf {l} trace {t} is not ascending at {}",
                            e.id()
                        )));
                    }
                }
                // Rebuild the derived indexes exactly as observe() does.
                let pos = slot.len() as u32;
                if let Some(p) = e.partner() {
                    history.by_partner[l].insert(p, e.id());
                }
                if history.text_indexed[l] {
                    history.by_text[l][t]
                        .entry(e.text_arc())
                        .or_default()
                        .push(pos);
                }
                slot.push(e);
            }
        }
    }
    history.stored = r.u64("stored counter")? as usize;
    history.suppressed = r.u64("suppressed counter")? as usize;
    monitor.history = Arc::new(history);

    let pattern_arc = Arc::clone(&monitor.pattern);
    for l in 0..n_leaves {
        for t in 0..n_traces {
            if r.u8("subset cell flag")? == 0 {
                continue;
            }
            let mut bound = Vec::with_capacity(n_leaves);
            for _ in 0..n_leaves {
                bound.push(lookup_event(r.u32("subset event ref")?)?);
            }
            monitor.subset[l][t] = Some(Match::new(Arc::clone(&pattern_arc), bound));
        }
    }

    if guard_cfg.is_some() {
        let guard = monitor
            .guard
            .as_mut()
            .expect("with_config built a guard for a guarded config");
        for t in 0..n_traces {
            guard.admitted[t] = r.u32("guard admitted counter")?;
        }
        let buffered = r.u32("guard buffer length")? as usize;
        for _ in 0..buffered {
            let e = lookup_event(r.u32("guard buffer event ref")?)?;
            guard.buffered_ids.insert(e.id());
            guard.buffer.push(e);
        }
        guard.stats = read_ingest_stats(&mut r)?;
    }

    if version >= 2 && r.u8("obs section marker")? != 0 {
        let metrics = read_metrics(&mut r)?;
        monitor.set_obs_metrics(Some(Box::new(metrics)));
    }

    let wal_lsn = if version >= 3 { r.u64("wal lsn")? } else { 0 };

    monitor.stats = stats;
    r.finish()?;
    Ok((monitor, pattern_src, wal_lsn))
}

/// Rewrites a checkpoint with its metrics section cleared (marker 0),
/// leaving all matching state intact. An `Off`-collected checkpoint and a
/// `Full`-collected one stripped through this function are byte-identical
/// — the property the metrics-transparency suite pins.
///
/// # Errors
///
/// See [`load`]; stripping decodes the checkpoint first.
pub fn strip_metrics(data: &[u8]) -> Result<Vec<u8>, CheckpointError> {
    let (mut monitor, pattern_src, wal_lsn) = load_at(data)?;
    monitor.set_obs_metrics(None);
    Ok(save_at(&monitor, &pattern_src, wal_lsn))
}

impl Monitor {
    /// Serializes this monitor's full matching state (see the
    /// [module docs](crate::checkpoint)). `pattern_src` is the source
    /// text of the pattern being monitored, embedded so restore can
    /// rebuild and cross-check it.
    #[must_use]
    pub fn checkpoint(&self, pattern_src: &str) -> Vec<u8> {
        save(self, pattern_src)
    }

    /// Restores a monitor from [`Monitor::checkpoint`] bytes; returns it
    /// with the embedded pattern source.
    ///
    /// # Errors
    ///
    /// See [`load`].
    pub fn restore(data: &[u8]) -> Result<(Monitor, String), CheckpointError> {
        load(data)
    }
}

// ---------------------------------------------------------------------
// Set-level checkpoints (the serve daemon's unit of crash recovery).
// ---------------------------------------------------------------------

const SET_MAGIC: &[u8; 4] = b"OCKS";
const SET_VERSION: u16 = 2;

fn put_event(buf: &mut Vec<u8>, e: &Event) {
    put_u32(buf, e.trace().as_u32());
    put_u32(buf, e.index().get());
    buf.push(match e.kind() {
        EventKind::Send => 0,
        EventKind::Receive => 1,
        EventKind::Unary => 2,
    });
    put_str(buf, e.ty());
    put_str(buf, e.text());
    match e.partner() {
        Some(p) => {
            buf.push(1);
            put_u32(buf, p.trace().as_u32());
            put_u32(buf, p.index().get());
        }
        None => buf.push(0),
    }
    let entries = e.clock().entries();
    put_u32(buf, entries.len() as u32);
    for &v in entries {
        put_u32(buf, v);
    }
}

fn read_event(r: &mut Reader<'_>, n_traces: usize) -> Result<Event, CheckpointError> {
    let at = r.offset();
    let trace = r.u32("event trace")?;
    let index = r.u32("event index")?;
    let kind = match r.u8("event kind")? {
        0 => EventKind::Send,
        1 => EventKind::Receive,
        2 => EventKind::Unary,
        k => {
            return Err(CheckpointError::Format(PoetError::Corrupt(format!(
                "bad kind {k} for buffered event at byte {at}"
            ))))
        }
    };
    let ty: Arc<str> = Arc::from(r.str("event ty")?);
    let text: Arc<str> = Arc::from(r.str("event text")?);
    let partner = if r.u8("partner flag")? != 0 {
        let pt = r.u32("partner trace")?;
        let pi = r.u32("partner index")?;
        if pt as usize >= n_traces || pi == 0 {
            return Err(CheckpointError::Invalid(format!(
                "buffered event partner T{pt}:{pi} out of range"
            )));
        }
        Some(EventId::new(TraceId::new(pt), EventIndex::new(pi)))
    } else {
        None
    };
    let clock_len = r.u32("clock length")? as usize;
    if clock_len != n_traces {
        return Err(CheckpointError::Invalid(format!(
            "buffered event clock has {clock_len} entries over {n_traces} traces"
        )));
    }
    let mut entries = Vec::with_capacity(clock_len);
    for _ in 0..clock_len {
        entries.push(r.u32("clock entry")?);
    }
    if (trace as usize) >= n_traces || index == 0 || entries[trace as usize] != index {
        return Err(CheckpointError::Invalid(format!(
            "buffered event (T{trace}:{index}) violates the Fidge convention"
        )));
    }
    let id = EventId::new(TraceId::new(trace), EventIndex::new(index));
    let stamp = StampedEvent::new(id, VectorClock::from_entries(entries));
    Ok(Event::new(stamp, kind, ty, text, partner))
}

/// Serializes a whole [`MonitorSet`] — every registered monitor plus the
/// set-level admission guard's reorder state and counters — to one
/// `OCKS` blob. This is the serve daemon's unit of crash recovery: a set
/// restored from it and fed the remainder of the stream produces
/// bit-identical verdicts, subsets, and `IngestStats` to one that never
/// stopped.
///
/// `sources` maps monitor names to the pattern source each is
/// monitoring (the per-monitor [`save`] format embeds the source so
/// restore can rebuild the pattern). Monitors without an entry are
/// skipped, mirroring the serve daemon's per-file checkpoint policy.
///
/// ```text
/// magic     [u8;4] = b"OCKS", version u16 = 2
/// n_traces  u32
/// monitors  u32 count; per monitor: name str, u32-len-prefixed
///           OCKP blob (see [`save`])
/// guard     u8 flag; iff 1: capacity u64, overflow u8,
///           admitted u32×n_traces, u32 buffered + inline events
///           (trace u32, index u32, kind u8, ty str, text str,
///           partner u8 [trace u32, index u32], clock u32 len +
///           u32×len), 12 × u64 ingest stats
/// wal_lsn   u64 (version ≥ 2) — durable-log anchor; 0 when log-less
/// ```
#[must_use]
pub fn save_set(set: &MonitorSet, sources: &HashMap<String, String>) -> Vec<u8> {
    save_set_at(set, sources, 0)
}

/// Like [`save_set`], anchored at durable-log position `wal_lsn`: a
/// recovery restores the set and replays the log strictly after that
/// LSN.
#[must_use]
pub fn save_set_at(set: &MonitorSet, sources: &HashMap<String, String>, wal_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SET_MAGIC);
    buf.extend_from_slice(&SET_VERSION.to_le_bytes());
    put_u32(&mut buf, set.n_traces() as u32);

    let saved: Vec<(&str, Vec<u8>)> = set
        .iter()
        .filter_map(|(name, m)| sources.get(name).map(|src| (name, save(m, src))))
        .collect();
    put_u32(&mut buf, saved.len() as u32);
    for (name, blob) in &saved {
        put_str(&mut buf, name);
        put_u32(&mut buf, blob.len() as u32);
        buf.extend_from_slice(blob);
    }

    match set.guard() {
        Some(g) => {
            buf.push(1);
            put_u64(&mut buf, g.config.capacity as u64);
            buf.push(match g.config.overflow {
                OverflowPolicy::Reject => 0,
                OverflowPolicy::DropOldest => 1,
                OverflowPolicy::FlushDegraded => 2,
            });
            for &v in &g.admitted {
                put_u32(&mut buf, v);
            }
            put_u32(&mut buf, g.buffer.len() as u32);
            for e in &g.buffer {
                put_event(&mut buf, e);
            }
            put_ingest_stats(&mut buf, g.stats());
        }
        None => buf.push(0),
    }

    put_u64(&mut buf, wal_lsn);

    buf
}

/// Decodes [`save_set`] bytes back into a live [`MonitorSet`], returning
/// it with the `(name, pattern_src)` pairs that were embedded (so a
/// resuming daemon can cross-check them against its configuration).
///
/// # Errors
///
/// [`CheckpointError::Format`] on malformed bytes (with a byte offset),
/// [`CheckpointError::Invalid`] on well-formed bytes describing an
/// inconsistent set. Never panics.
pub fn load_set(data: &[u8]) -> Result<(MonitorSet, Vec<(String, String)>), CheckpointError> {
    load_set_at(data).map(|(set, sources, _)| (set, sources))
}

/// A restored set, its embedded `(name, pattern_src)` pairs, and the
/// checkpoint's `wal_lsn` log anchor.
pub type LoadedSet = (MonitorSet, Vec<(String, String)>, u64);

/// Like [`load_set`], but also returns the `wal_lsn` anchor (0 for
/// version-1 checkpoints and log-less saves).
///
/// # Errors
///
/// See [`load_set`].
pub fn load_set_at(data: &[u8]) -> Result<LoadedSet, CheckpointError> {
    let mut r = Reader::new(data);
    r.magic(SET_MAGIC)?;
    let version = r.u16("set version")?;
    if version == 0 || version > SET_VERSION {
        return Err(CheckpointError::Format(PoetError::BadHeader(format!(
            "set checkpoint version {version} is not supported (expected 1..={SET_VERSION})"
        ))));
    }
    let n_traces = r.u32("set n_traces")? as usize;
    let n_monitors = r.u32("monitor count")? as usize;

    let mut set = MonitorSet::new(n_traces);
    let mut sources = Vec::with_capacity(n_monitors.min(256));
    for i in 0..n_monitors {
        let name = r.str("monitor name")?.to_string();
        let blob_len = r.u32("monitor blob length")? as usize;
        let blob = r.bytes(blob_len, "monitor blob")?;
        let (monitor, src) = load(blob).map_err(|e| match e {
            CheckpointError::Format(f) => {
                CheckpointError::Invalid(format!("monitor {i} ({name}) blob is malformed: {f}"))
            }
            other => other,
        })?;
        if monitor.history.n_traces() != n_traces {
            return Err(CheckpointError::Invalid(format!(
                "monitor {i} ({name}) spans {} traces in a {n_traces}-trace set",
                monitor.history.n_traces()
            )));
        }
        set.insert_restored(name.clone(), monitor);
        sources.push((name, src));
    }

    if r.u8("set guard flag")? != 0 {
        let capacity = r.u64("set guard capacity")? as usize;
        let overflow = match r.u8("set guard overflow policy")? {
            0 => OverflowPolicy::Reject,
            1 => OverflowPolicy::DropOldest,
            2 => OverflowPolicy::FlushDegraded,
            k => {
                return Err(CheckpointError::Invalid(format!(
                    "unknown overflow policy {k}"
                )))
            }
        };
        let mut guard =
            crate::ingest::AdmissionGuard::new(n_traces, GuardConfig { capacity, overflow });
        for t in 0..n_traces {
            guard.admitted[t] = r.u32("set guard admitted counter")?;
        }
        let buffered = r.u32("set guard buffer length")? as usize;
        for _ in 0..buffered {
            let e = read_event(&mut r, n_traces)?;
            guard.buffered_ids.insert(e.id());
            guard.buffer.push(e);
        }
        guard.stats = read_ingest_stats(&mut r)?;
        set.install_guard(guard);
    }

    let wal_lsn = if version >= 2 {
        r.u64("set wal lsn")?
    } else {
        0
    };

    r.finish()?;
    Ok((set, sources, wal_lsn))
}

impl MonitorSet {
    /// Serializes this whole set (see [`save_set`]). `sources` maps
    /// monitor names to the pattern source each is monitoring; monitors
    /// without an entry are skipped.
    #[must_use]
    pub fn checkpoint_set(&self, sources: &HashMap<String, String>) -> Vec<u8> {
        save_set(self, sources)
    }

    /// Restores a set from [`MonitorSet::checkpoint_set`] bytes; returns
    /// it with the embedded `(name, pattern_src)` pairs.
    ///
    /// # Errors
    ///
    /// See [`load_set`].
    pub fn restore_set(
        data: &[u8],
    ) -> Result<(MonitorSet, Vec<(String, String)>), CheckpointError> {
        load_set(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocep_poet::PoetServer;

    const PATTERN: &str = "A := [*, a, *]; B := [s, b, *]; C := [r, b, *]; \
                           pattern := (A -> B) && (B <> C);";

    fn workload(n_events: usize) -> (PoetServer, Vec<Event>) {
        let mut poet = PoetServer::new(3);
        let mut rng = ocep_rng::Rng::seed_from_u64(7);
        for _ in 0..n_events {
            let t = TraceId::new(rng.gen_range(0u32..3));
            match rng.gen_range(0u32..4) {
                0 => {
                    let s = poet.record(t, EventKind::Send, "b", "m");
                    let dst = TraceId::new((t.as_u32() + 1) % 3);
                    poet.record_receive(dst, s.id(), "b", "m");
                }
                1 => {
                    poet.record(t, EventKind::Unary, "a", "x");
                }
                _ => {
                    poet.record(t, EventKind::Unary, "c", "");
                }
            }
        }
        let events: Vec<Event> = poet.linearization().collect();
        (poet, events)
    }

    fn subset_ids(m: &Monitor) -> Vec<Vec<EventId>> {
        m.subset()
            .iter()
            .map(|mm| mm.events().iter().map(Event::id).collect())
            .collect()
    }

    #[test]
    fn round_trip_preserves_state_and_future_verdicts() {
        let (_poet, events) = workload(40);
        let mut straight = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        let mut first_half = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);

        let cut = events.len() / 2;
        for e in &events[..cut] {
            straight.observe(e);
            first_half.observe(e);
        }
        let bytes = first_half.checkpoint(PATTERN);
        let (mut resumed, src) = Monitor::restore(&bytes).unwrap();
        assert_eq!(src, PATTERN);
        assert_eq!(resumed.stats(), first_half.stats());
        assert_eq!(resumed.history_size(), first_half.history_size());
        assert_eq!(subset_ids(&resumed), subset_ids(&first_half));

        for e in &events[cut..] {
            let a = straight.observe(e);
            let b = resumed.observe(e);
            assert_eq!(
                a.iter().map(|m| m.to_string()).collect::<Vec<_>>(),
                b.iter().map(|m| m.to_string()).collect::<Vec<_>>()
            );
        }
        assert_eq!(straight.stats(), resumed.stats());
        assert_eq!(subset_ids(&straight), subset_ids(&resumed));
    }

    #[test]
    fn round_trip_preserves_guard_buffer() {
        let (_poet, events) = workload(20);
        let pattern = Pattern::parse(PATTERN).unwrap();
        let config = MonitorConfig {
            guard: Some(GuardConfig::default()),
            ..MonitorConfig::default()
        };
        let mut m = Monitor::with_config(pattern, 3, config);
        // Deliver out of order so something stays buffered: skip the
        // first event entirely.
        for e in &events[1..] {
            m.observe(e);
        }
        let buffered_before = m.guard().unwrap().buffered();
        assert!(buffered_before > 0, "workload should leave a gap");
        let bytes = m.checkpoint(PATTERN);
        let (mut resumed, _) = Monitor::restore(&bytes).unwrap();
        assert_eq!(resumed.guard().unwrap().buffered(), buffered_before);
        assert_eq!(resumed.guard().unwrap().stats(), m.guard().unwrap().stats());
        // The straggler gap-filler unblocks the buffer in both.
        let a = m.observe(&events[0]).len();
        let b = resumed.observe(&events[0]).len();
        assert_eq!(a, b);
        assert_eq!(m.guard().unwrap().buffered(), 0);
        assert_eq!(resumed.guard().unwrap().buffered(), 0);
        assert_eq!(m.stats(), resumed.stats());
    }

    #[test]
    fn round_trip_preserves_metrics_registry() {
        let (_poet, events) = workload(40);
        let config = MonitorConfig {
            obs: ObsLevel::Full,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::with_config(Pattern::parse(PATTERN).unwrap(), 3, config);
        for e in &events {
            m.observe(e);
        }
        let before = m.obs_metrics().expect("Full keeps a registry").clone();
        assert!(before.arrival_hist().count() > 0, "timers should have run");
        assert!(!before.recent().is_empty(), "ring should have records");
        let bytes = m.checkpoint(PATTERN);
        let (resumed, _) = Monitor::restore(&bytes).unwrap();
        assert_eq!(resumed.config().obs, ObsLevel::Full);
        assert_eq!(resumed.obs_metrics(), Some(&before));
        assert_eq!(resumed.stats(), m.stats());
    }

    #[test]
    fn version_1_and_2_checkpoints_still_load() {
        let (_poet, events) = workload(30);
        let mut m = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        for e in &events {
            m.observe(e);
        }
        let v3 = m.checkpoint(PATTERN);
        assert_eq!(
            v3[v3.len() - 9..],
            [0u8; 9],
            "obs-off log-less checkpoint ends in marker 0 + wal_lsn 0"
        );
        // A v2 file is exactly a v3 obs-off file without the trailing
        // wal_lsn; a v1 file additionally drops the obs marker byte.
        let mut v2 = v3[..v3.len() - 8].to_vec();
        v2[4..6].copy_from_slice(&2u16.to_le_bytes());
        let (resumed, src) = Monitor::restore(&v2).unwrap();
        assert_eq!(src, PATTERN);
        assert_eq!(resumed.stats(), m.stats());
        assert!(resumed.obs_metrics().is_none());
        let mut v1 = v3[..v3.len() - 9].to_vec();
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        let (resumed, src) = Monitor::restore(&v1).unwrap();
        assert_eq!(src, PATTERN);
        assert_eq!(resumed.stats(), m.stats());
        assert!(resumed.obs_metrics().is_none());
    }

    #[test]
    fn wal_lsn_anchor_round_trips() {
        let (_poet, events) = workload(20);
        let mut m = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        for e in &events {
            m.observe(e);
        }
        let bytes = save_at(&m, PATTERN, 0xdead_beef);
        let (_, _, lsn) = load_at(&bytes).unwrap();
        assert_eq!(lsn, 0xdead_beef);
        // Stripping metrics preserves the anchor.
        let (_, _, lsn) = load_at(&strip_metrics(&bytes).unwrap()).unwrap();
        assert_eq!(lsn, 0xdead_beef);

        let mut set = guarded_set();
        for e in &events[1..] {
            set.observe_raw(e);
        }
        let set_bytes = save_set_at(&set, &set_sources(), 42);
        let (restored, _, lsn) = load_set_at(&set_bytes).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(restored.ingest_stats(), set.ingest_stats());
    }

    #[test]
    fn strip_metrics_matches_off_checkpoint_bytes() {
        let (_poet, events) = workload(40);
        let mut off = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        let config = MonitorConfig {
            obs: ObsLevel::Full,
            ..MonitorConfig::default()
        };
        let mut full = Monitor::with_config(Pattern::parse(PATTERN).unwrap(), 3, config);
        for e in &events {
            off.observe(e);
            full.observe(e);
        }
        let off_bytes = off.checkpoint(PATTERN);
        let full_bytes = full.checkpoint(PATTERN);
        assert_ne!(off_bytes, full_bytes, "Full embeds a metrics section");
        assert_eq!(strip_metrics(&full_bytes).unwrap(), off_bytes);
        // Stripping an already-off checkpoint is the identity.
        assert_eq!(strip_metrics(&off_bytes).unwrap(), off_bytes);
    }

    #[test]
    fn truncated_checkpoint_errors_with_offset() {
        let (_poet, events) = workload(12);
        let mut m = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        for e in &events {
            m.observe(e);
        }
        let bytes = m.checkpoint(PATTERN);
        for cut in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            let err = Monitor::restore(&bytes[..cut]).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("byte") || msg.contains("header"),
                "diagnostic should locate the failure: {msg}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let m = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        let mut bytes = m.checkpoint(PATTERN);
        bytes.extend_from_slice(b"junk");
        let err = Monitor::restore(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn corrupt_event_reference_is_invalid_not_panic() {
        let (_poet, events) = workload(16);
        let mut m = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        for e in &events {
            m.observe(e);
        }
        let bytes = m.checkpoint(PATTERN);
        // Flip bytes across the body; every outcome must be Ok or Err,
        // never a panic, and a changed byte in a structural field must
        // not be silently accepted as the original state.
        for pos in (8..bytes.len()).step_by(11) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            let _ = Monitor::restore(&bad);
        }
    }

    #[test]
    fn wrong_magic_and_version_are_bad_header() {
        let m = Monitor::new(Pattern::parse(PATTERN).unwrap(), 3);
        let mut bytes = m.checkpoint(PATTERN);
        bytes[0] = b'X';
        assert!(matches!(
            Monitor::restore(&bytes),
            Err(CheckpointError::Format(PoetError::BadHeader(_)))
        ));
        let mut bytes2 = m.checkpoint(PATTERN);
        bytes2[4] = 99; // version
        assert!(matches!(
            Monitor::restore(&bytes2),
            Err(CheckpointError::Format(PoetError::BadHeader(_)))
        ));
    }

    const PATTERN2: &str = "X := [*, c, *]; Y := [*, a, *]; pattern := X -> Y;";

    fn set_sources() -> HashMap<String, String> {
        let mut sources = HashMap::new();
        sources.insert("first".to_string(), PATTERN.to_string());
        sources.insert("second".to_string(), PATTERN2.to_string());
        sources
    }

    fn guarded_set() -> MonitorSet {
        let mut set = MonitorSet::new(3);
        set.add("first", Pattern::parse(PATTERN).unwrap());
        set.add("second", Pattern::parse(PATTERN2).unwrap());
        set.enable_guard(GuardConfig::default());
        set
    }

    fn set_verdict_names(out: &[(String, Match)]) -> Vec<String> {
        out.iter().map(|(n, m)| format!("{n}:{m}")).collect()
    }

    fn set_subsets(set: &MonitorSet) -> Vec<Vec<Vec<EventId>>> {
        set.iter().map(|(_, m)| subset_ids(m)).collect()
    }

    #[test]
    fn set_round_trip_preserves_state_and_future_verdicts() {
        let (_poet, events) = workload(40);
        let mut straight = guarded_set();
        let mut first_half = guarded_set();
        // Hold back events[0] so the guard buffer is non-empty at the
        // checkpoint: the set-level reorder state must survive too.
        let cut = events.len() / 2;
        for e in &events[1..cut] {
            straight.observe_raw(e);
            first_half.observe_raw(e);
        }
        assert!(
            first_half.guard().unwrap().buffered() > 0,
            "workload should leave a gap"
        );

        let sources = set_sources();
        let bytes = first_half.checkpoint_set(&sources);
        let (mut resumed, embedded) = MonitorSet::restore_set(&bytes).unwrap();
        assert_eq!(
            embedded,
            vec![
                ("first".to_string(), PATTERN.to_string()),
                ("second".to_string(), PATTERN2.to_string()),
            ]
        );
        assert_eq!(resumed.n_traces(), 3);
        assert_eq!(resumed.ingest_stats(), first_half.ingest_stats());
        assert_eq!(set_subsets(&resumed), set_subsets(&first_half));

        // Deliver the straggler plus the rest; both paths must agree.
        let mut tail_events: Vec<&Event> = vec![&events[0]];
        tail_events.extend(&events[cut..]);
        for e in tail_events {
            let a = set_verdict_names(&straight.observe_raw(e));
            let b = set_verdict_names(&resumed.observe_raw(e));
            assert_eq!(a, b);
        }
        assert_eq!(
            set_verdict_names(&straight.flush_guard()),
            set_verdict_names(&resumed.flush_guard())
        );
        assert_eq!(straight.ingest_stats(), resumed.ingest_stats());
        assert_eq!(set_subsets(&straight), set_subsets(&resumed));
        // Checkpointing both ends of the run must agree byte-for-byte.
        assert_eq!(
            straight.checkpoint_set(&sources),
            resumed.checkpoint_set(&sources)
        );
    }

    #[test]
    fn set_checkpoint_skips_unsourced_monitors() {
        let (_poet, events) = workload(10);
        let mut set = guarded_set();
        for e in &events {
            set.observe_raw(e);
        }
        let mut sources = set_sources();
        sources.remove("second");
        let bytes = set.checkpoint_set(&sources);
        let (resumed, embedded) = MonitorSet::restore_set(&bytes).unwrap();
        assert_eq!(resumed.len(), 1);
        assert_eq!(embedded, vec![("first".to_string(), PATTERN.to_string())]);
    }

    #[test]
    fn set_checkpoint_corruption_never_panics() {
        let (_poet, events) = workload(16);
        let mut set = guarded_set();
        for e in &events[1..] {
            set.observe_raw(e);
        }
        let bytes = set.checkpoint_set(&set_sources());
        for cut in [0, 3, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(MonitorSet::restore_set(&bytes[..cut]).is_err());
        }
        for pos in (6..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            let _ = MonitorSet::restore_set(&bad);
        }
        let mut junk = bytes.clone();
        junk.extend_from_slice(b"junk");
        assert!(MonitorSet::restore_set(&junk).is_err());
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert!(matches!(
            MonitorSet::restore_set(&wrong_magic),
            Err(CheckpointError::Format(PoetError::BadHeader(_)))
        ));
    }
}
