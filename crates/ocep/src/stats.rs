//! Monitor counters used by tests, benchmarks, and the ablation studies.

/// Cumulative counters of a [`crate::Monitor`]'s work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events observed (all categories of §V-B).
    pub events: u64,
    /// Events stored into at least one leaf history.
    pub stored: u64,
    /// Terminating-event searches started (category iii arrivals).
    pub searches: u64,
    /// Complete matches found (before subset filtering).
    pub matches_found: u64,
    /// Matches actually reported to the caller.
    pub matches_reported: u64,
    /// Backtracking nodes explored across all searches.
    pub nodes: u64,
    /// Candidate events examined across all searches.
    pub candidates: u64,
    /// Fig 4 domain computations performed.
    pub domains: u64,
    /// Conflict-directed backjumps taken.
    pub backjumps: u64,
    /// Fig 5 jump bounds applied to fast-forward a candidate cursor.
    pub jump_bounds: u64,
    /// Complete assignments rejected by deferred (`~>`/compound-`->`)
    /// checks.
    pub deferred_rejections: u64,
}

impl std::fmt::Display for MonitorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events={} stored={} searches={} found={} reported={} nodes={} \
             candidates={} domains={} backjumps={} jump_bounds={} \
             deferred_rejections={}",
            self.events,
            self.stored,
            self.searches,
            self.matches_found,
            self.matches_reported,
            self.nodes,
            self.candidates,
            self.domains,
            self.backjumps,
            self.jump_bounds,
            self.deferred_rejections
        )
    }
}
