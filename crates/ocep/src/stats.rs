//! Monitor counters used by tests, benchmarks, and the ablation studies.

use crate::ingest::IngestStats;
use crate::search::SearchStats;

/// Cumulative counters of a [`crate::Monitor`]'s work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events observed (all categories of §V-B).
    pub events: u64,
    /// Events stored into at least one leaf history.
    pub stored: u64,
    /// Terminating-event searches started (category iii arrivals).
    pub searches: u64,
    /// Complete matches found (before subset filtering).
    pub matches_found: u64,
    /// Matches actually reported to the caller.
    pub matches_reported: u64,
    /// Backtracking nodes explored across all searches.
    pub nodes: u64,
    /// Candidate events examined across all searches.
    pub candidates: u64,
    /// Fig 4 domain computations performed.
    pub domains: u64,
    /// Conflict-directed backjumps taken.
    pub backjumps: u64,
    /// Fig 5 jump bounds applied to fast-forward a candidate cursor.
    pub jump_bounds: u64,
    /// Complete assignments rejected by deferred (`~>`/compound-`->`)
    /// checks.
    pub deferred_rejections: u64,
    /// `Event` clones the zero-copy hot path skipped (assigned events are
    /// borrowed for the Fig 4 restriction rules instead of cloned).
    pub clones_avoided: u64,
    /// Timestamp-buffer bytes those skipped clones would have copied
    /// before clocks became `Arc`-shared.
    pub clone_bytes_avoided: u64,
    /// Arrivals whose parallel search lost a worker to a panic and fell
    /// back to inline sequential search for the missing partitions.
    pub degraded_arrivals: u64,
    /// Admission-guard counters (all zero when no guard is configured;
    /// see [`crate::ingest`]).
    pub ingest: IngestStats,
}

impl MonitorStats {
    /// Folds one search's counters into the monitor totals.
    pub(crate) fn absorb_search(&mut self, s: &SearchStats) {
        self.nodes += s.nodes;
        self.candidates += s.candidates;
        self.domains += s.domains;
        self.backjumps += s.backjumps;
        self.jump_bounds += s.jump_bounds_applied;
        self.deferred_rejections += s.deferred_rejections;
        self.clones_avoided += s.clones_avoided;
        self.clone_bytes_avoided += s.clone_bytes_avoided;
    }

    /// Adds every counter of `other` into `self` (used to total a
    /// [`crate::MonitorSet`]).
    pub fn absorb(&mut self, other: &MonitorStats) {
        self.events += other.events;
        self.stored += other.stored;
        self.searches += other.searches;
        self.matches_found += other.matches_found;
        self.matches_reported += other.matches_reported;
        self.nodes += other.nodes;
        self.candidates += other.candidates;
        self.domains += other.domains;
        self.backjumps += other.backjumps;
        self.jump_bounds += other.jump_bounds;
        self.deferred_rejections += other.deferred_rejections;
        self.clones_avoided += other.clones_avoided;
        self.clone_bytes_avoided += other.clone_bytes_avoided;
        self.degraded_arrivals += other.degraded_arrivals;
        self.ingest.absorb(&other.ingest);
    }
}

impl std::fmt::Display for MonitorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events={} stored={} searches={} found={} reported={} nodes={} \
             candidates={} domains={} backjumps={} jump_bounds={} \
             deferred_rejections={} clones_avoided={} clone_bytes_avoided={} \
             degraded_arrivals={}",
            self.events,
            self.stored,
            self.searches,
            self.matches_found,
            self.matches_reported,
            self.nodes,
            self.candidates,
            self.domains,
            self.backjumps,
            self.jump_bounds,
            self.deferred_rejections,
            self.clones_avoided,
            self.clone_bytes_avoided,
            self.degraded_arrivals
        )?;
        if self.ingest != IngestStats::default() {
            let g = &self.ingest;
            write!(
                f,
                " ingest_admitted={} ingest_duplicates={} ingest_buffered={} \
                 ingest_reordered={} ingest_quarantined={} ingest_overflow={} \
                 ingest_degraded_flushes={}",
                g.admitted,
                g.duplicates_dropped,
                g.buffered,
                g.reordered_delivered,
                g.quarantined(),
                g.overflow_rejected + g.overflow_dropped,
                g.degraded_flushes
            )?;
        }
        Ok(())
    }
}
