//! Fig 4 domain restriction: contiguous candidate ranges per trace.
//!
//! For a partial match, the domain of the event being instantiated on a
//! trace `l` is restricted by each already-instantiated event `e`:
//!
//! ```text
//! e || ei   →  (GP(e,l), LS(e,l))        (open interval)
//! e -> ei   →  [LS(e,l), ∞)
//! ei -> e   →  (−∞, GP(e,l)]
//! ```
//!
//! Histories are stored ascending by event index, and along one trace the
//! vector-clock entry for any fixed column is non-decreasing, so each rule
//! maps to a prefix/suffix/window of the history slice found by binary
//! search — this is how the matcher gets its `GP`/`LS` lookups in O(log)
//! without consulting the tracer.

use ocep_pattern::PairRel;
use ocep_poet::Event;

/// A half-open range of positions `[lo, hi)` into one history slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Domain {
    pub lo: usize,
    pub hi: usize,
}

impl Domain {
    /// The unrestricted domain over a slice of `len` candidates.
    pub fn full(len: usize) -> Self {
        Domain { lo: 0, hi: len }
    }

    /// True if no candidates remain.
    pub fn is_empty(self) -> bool {
        self.lo >= self.hi
    }

    /// Intersection with another range.
    pub fn intersect(self, other: Domain) -> Domain {
        Domain {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Number of candidates in the range.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(self) -> usize {
        self.hi.saturating_sub(self.lo)
    }
}

/// Positions in `events` (one leaf's history on one trace, ascending by
/// index) whose event `x` satisfies `x <rel> e` — e.g. `rel = Before`
/// selects the `x` with `x -> e`.
pub(crate) fn restrict(events: &[Event], rel: PairRel, e: &Event) -> Domain {
    if events.is_empty() {
        return Domain { lo: 0, hi: 0 };
    }
    let l = events[0].trace();
    let same_trace = l == e.trace();
    match rel {
        PairRel::Before => {
            // x -> e  ⇔  x.index <= GP(e, l).
            let gp = e.stamp().greatest_predecessor(l).get();
            let hi = events.partition_point(|x| x.index().get() <= gp);
            Domain { lo: 0, hi }
        }
        PairRel::After => {
            // e -> x  ⇔  x's clock column for e's trace reaches e.index
            // (strictly beyond it on e's own trace, to exclude e itself).
            let needle = if same_trace {
                e.index().get() + 1
            } else {
                e.index().get()
            };
            let col = e.trace();
            let lo = events.partition_point(|x| x.clock().entry(col).get() < needle);
            Domain {
                lo,
                hi: events.len(),
            }
        }
        PairRel::Concurrent => {
            if same_trace {
                // Events on one trace are totally ordered: nothing here is
                // concurrent with e.
                return Domain { lo: 0, hi: 0 };
            }
            // (GP(e,l), LS(e,l)): after e's greatest predecessor on l and
            // before e's least successor on l.
            let gp = e.stamp().greatest_predecessor(l).get();
            let lo = events.partition_point(|x| x.index().get() <= gp);
            let col = e.trace();
            let needle = e.index().get();
            let hi = events.partition_point(|x| x.clock().entry(col).get() < needle);
            Domain { lo, hi }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocep_poet::{EventKind, PoetServer};
    use ocep_vclock::TraceId;

    fn t(i: u32) -> TraceId {
        TraceId::new(i)
    }

    /// trace 0: a1 a2 s(→r) a4 a5 ; trace 1: b1 r b3
    /// Relative to r: a1,a2,s happen before; a4,a5 concurrent.
    struct Fixture {
        trace0: Vec<Event>,
        r: Event,
        b3: Event,
    }

    fn fixture() -> Fixture {
        let mut poet = PoetServer::new(2);
        let a1 = poet.record(t(0), EventKind::Unary, "a", "");
        let a2 = poet.record(t(0), EventKind::Unary, "a", "");
        let s = poet.record(t(0), EventKind::Send, "a", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        let r = poet.record_receive(t(1), s.id(), "r", "");
        let a4 = poet.record(t(0), EventKind::Unary, "a", "");
        let a5 = poet.record(t(0), EventKind::Unary, "a", "");
        let b3 = poet.record(t(1), EventKind::Unary, "b", "");
        Fixture {
            trace0: vec![a1, a2, s, a4, a5],
            r,
            b3,
        }
    }

    #[test]
    fn before_selects_prefix_up_to_gp() {
        let f = fixture();
        // x -> r on trace 0: a1, a2, s (positions 0..3).
        let d = restrict(&f.trace0, PairRel::Before, &f.r);
        assert_eq!((d.lo, d.hi), (0, 3));
    }

    #[test]
    fn after_selects_suffix_from_ls() {
        let f = fixture();
        // r -> x on trace 0: none (no message back).
        let d = restrict(&f.trace0, PairRel::After, &f.r);
        assert!(d.is_empty());
        // s -> x on trace 1 candidates {r, b3}: both follow s? r yes
        // (partner), b3 yes (after r on same trace).
        let trace1 = vec![f.r.clone(), f.b3.clone()];
        let s = &f.trace0[2];
        let d = restrict(&trace1, PairRel::After, s);
        assert_eq!((d.lo, d.hi), (0, 2));
    }

    #[test]
    fn concurrent_selects_open_window() {
        let f = fixture();
        // x || r on trace 0: a4, a5 (positions 3..5).
        let d = restrict(&f.trace0, PairRel::Concurrent, &f.r);
        assert_eq!((d.lo, d.hi), (3, 5));
    }

    #[test]
    fn same_trace_rules() {
        let f = fixture();
        let a4 = &f.trace0[3];
        // x -> a4 on trace 0: a1, a2, s.
        let d = restrict(&f.trace0, PairRel::Before, a4);
        assert_eq!((d.lo, d.hi), (0, 3));
        // a4 -> x on trace 0: a5 only (a4 itself excluded).
        let d = restrict(&f.trace0, PairRel::After, a4);
        assert_eq!((d.lo, d.hi), (4, 5));
        // Nothing on the same trace is concurrent with a4.
        let d = restrict(&f.trace0, PairRel::Concurrent, a4);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_history_yields_empty_domain() {
        let f = fixture();
        let d = restrict(&[], PairRel::Before, &f.r);
        assert!(d.is_empty());
    }

    #[test]
    fn intersection_is_max_lo_min_hi() {
        let a = Domain { lo: 1, hi: 6 };
        let b = Domain { lo: 3, hi: 9 };
        assert_eq!(a.intersect(b), Domain { lo: 3, hi: 6 });
        assert_eq!(a.intersect(b).len(), 3);
        let c = Domain { lo: 7, hi: 9 };
        assert!(a.intersect(c).is_empty());
    }
}
