//! Monitoring several patterns over one event stream.

use crate::pool::WorkerPool;
use crate::{Match, Monitor, MonitorConfig, MonitorStats};
use ocep_pattern::Pattern;
use ocep_poet::Event;
use std::sync::Arc;

/// A set of independently configured monitors sharing one event stream —
/// how a deployment watches for deadlocks, races, and ordering bugs
/// simultaneously (each §V-C case study is one entry).
///
/// Each pattern keeps its own histories and representative subset;
/// `observe` fans the event out and returns the reports tagged with the
/// pattern's registered name.
///
/// # Example
///
/// ```
/// use ocep_core::MonitorSet;
/// use ocep_pattern::Pattern;
/// use ocep_poet::{EventKind, PoetServer};
/// use ocep_vclock::TraceId;
///
/// let mut set = MonitorSet::new(2);
/// set.add(
///     "greens",
///     Pattern::parse("G1 := [*, green, *]; G2 := [*, green, *]; pattern := G1 || G2;")
///         .unwrap(),
/// );
/// set.add(
///     "handoff",
///     Pattern::parse("R := [*, red, *]; G := [*, green, *]; pattern := R -> G;").unwrap(),
/// );
///
/// let mut poet = PoetServer::new(2);
/// poet.record(TraceId::new(0), EventKind::Unary, "green", "");
/// poet.record(TraceId::new(1), EventKind::Unary, "green", "");
/// let mut names = Vec::new();
/// for e in poet.linearization() {
///     for (name, _m) in set.observe(&e) {
///         names.push(name);
///     }
/// }
/// assert_eq!(names, vec!["greens"]);
/// ```
#[derive(Debug, Default)]
pub struct MonitorSet {
    n_traces: usize,
    entries: Vec<(String, Monitor)>,
    /// One worker pool backing every parallel monitor in the set (see
    /// [`MonitorSet::ensure_pool`]).
    pool: Option<Arc<WorkerPool>>,
}

impl MonitorSet {
    /// Creates an empty set for a computation with `n_traces` traces.
    #[must_use]
    pub fn new(n_traces: usize) -> Self {
        MonitorSet {
            n_traces,
            entries: Vec::new(),
            pool: None,
        }
    }

    /// Makes sure the set owns a shared [`WorkerPool`] of at least
    /// `threads` workers and injects it into every registered monitor
    /// (and every monitor registered later). Monitors observe in turn, so
    /// one pool safely serves them all; without this, each parallel
    /// monitor lazily spawns its own private pool.
    pub fn ensure_pool(&mut self, threads: usize) {
        let need = threads.max(1);
        let rebuild = match &self.pool {
            Some(p) => p.size() < need,
            None => true,
        };
        if rebuild {
            self.pool = Some(Arc::new(WorkerPool::new(need)));
        }
        let pool = self.pool.as_ref().expect("pool just ensured");
        for (_, m) in &mut self.entries {
            m.set_pool(Arc::clone(pool));
        }
    }

    /// Registers `pattern` under `name` with the default configuration.
    pub fn add(&mut self, name: impl Into<String>, pattern: Pattern) {
        self.add_with_config(name, pattern, MonitorConfig::default());
    }

    /// Registers `pattern` under `name` with an explicit configuration.
    pub fn add_with_config(
        &mut self,
        name: impl Into<String>,
        pattern: Pattern,
        config: MonitorConfig,
    ) {
        let mut monitor = Monitor::with_config(pattern, self.n_traces, config);
        if let Some(pool) = &self.pool {
            monitor.set_pool(Arc::clone(pool));
        }
        self.entries.push((name.into(), monitor));
    }

    /// Observes one event on every registered monitor; returns the newly
    /// reported matches tagged with their pattern's name.
    pub fn observe(&mut self, event: &Event) -> Vec<(String, Match)> {
        let mut out = Vec::new();
        for (name, monitor) in &mut self.entries {
            for m in monitor.observe(event) {
                out.push((name.clone(), m));
            }
        }
        out
    }

    /// The monitor registered under `name`.
    #[must_use]
    pub fn monitor(&self, name: &str) -> Option<&Monitor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Iterates over `(name, monitor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Monitor)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no patterns are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sums the work counters over all registered monitors.
    #[must_use]
    pub fn total_stats(&self) -> MonitorStats {
        let mut total = MonitorStats::default();
        for (_, m) in &self.entries {
            total.absorb(m.stats());
        }
        total
    }

    /// Aggregates every monitor's [`Monitor::metrics`] snapshot into one
    /// (counters sum, histograms merge; recent arrivals concatenate,
    /// bounded). Shared-pool gauges appear once per monitor and sum — an
    /// aggregate across monitors, not a per-pool reading.
    #[must_use]
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        let mut total = crate::MetricsSnapshot::default();
        for (_, m) in &self.entries {
            total.absorb(&m.metrics());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocep_poet::{EventKind, PoetServer};
    use ocep_vclock::TraceId;

    fn t(i: u32) -> TraceId {
        TraceId::new(i)
    }

    fn feed(set: &mut MonitorSet, poet: &mut PoetServer) -> Vec<(String, Match)> {
        poet.linearization().flat_map(|e| set.observe(&e)).collect()
    }

    #[test]
    fn patterns_fire_independently() {
        let mut set = MonitorSet::new(2);
        set.add(
            "hb",
            Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap(),
        );
        set.add(
            "conc",
            Pattern::parse("X := [*, a, *]; Y := [*, b, *]; pattern := X || Y;").unwrap(),
        );
        let mut poet = PoetServer::new(2);
        // a on T0 and b on T1, concurrent: only "conc" matches.
        poet.record(t(0), EventKind::Unary, "a", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        let reports = feed(&mut set, &mut poet);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, "conc");
        // Now an ordered pair: only "hb" (the conc cell is new per leaf
        // trace, so check names precisely).
        let s = poet.record(t(0), EventKind::Send, "a", "");
        poet.record_receive(t(1), s.id(), "link", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        let reports = feed(&mut set, &mut poet);
        assert!(reports.iter().any(|(n, _)| n == "hb"));
    }

    #[test]
    fn accessors_and_stats() {
        let mut set = MonitorSet::new(1);
        assert!(set.is_empty());
        set.add(
            "one",
            Pattern::parse("A := [*, a, *]; pattern := A;").unwrap(),
        );
        assert_eq!(set.len(), 1);
        assert!(set.monitor("one").is_some());
        assert!(set.monitor("two").is_none());
        let mut poet = PoetServer::new(1);
        poet.record(t(0), EventKind::Unary, "a", "");
        let _ = feed(&mut set, &mut poet);
        assert_eq!(set.total_stats().events, 1);
        assert_eq!(set.iter().count(), 1);
    }
}
