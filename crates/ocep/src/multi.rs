//! Monitoring several patterns over one event stream.

use crate::ingest::{AdmissionGuard, GuardConfig, IngestFault, IngestStats};
use crate::pool::WorkerPool;
use crate::{Match, Monitor, MonitorConfig, MonitorStats};
use ocep_pattern::Pattern;
use ocep_poet::Event;
use std::sync::Arc;

/// A set of independently configured monitors sharing one event stream —
/// how a deployment watches for deadlocks, races, and ordering bugs
/// simultaneously (each §V-C case study is one entry).
///
/// Each pattern keeps its own histories and representative subset;
/// `observe` fans the event out and returns the reports tagged with the
/// pattern's registered name.
///
/// # Example
///
/// ```
/// use ocep_core::MonitorSet;
/// use ocep_pattern::Pattern;
/// use ocep_poet::{EventKind, PoetServer};
/// use ocep_vclock::TraceId;
///
/// let mut set = MonitorSet::new(2);
/// set.add(
///     "greens",
///     Pattern::parse("G1 := [*, green, *]; G2 := [*, green, *]; pattern := G1 || G2;")
///         .unwrap(),
/// );
/// set.add(
///     "handoff",
///     Pattern::parse("R := [*, red, *]; G := [*, green, *]; pattern := R -> G;").unwrap(),
/// );
///
/// let mut poet = PoetServer::new(2);
/// poet.record(TraceId::new(0), EventKind::Unary, "green", "");
/// poet.record(TraceId::new(1), EventKind::Unary, "green", "");
/// let mut names = Vec::new();
/// for e in poet.linearization() {
///     for (name, _m) in set.observe(&e) {
///         names.push(name);
///     }
/// }
/// assert_eq!(names, vec!["greens"]);
/// ```
#[derive(Debug, Default)]
pub struct MonitorSet {
    n_traces: usize,
    entries: Vec<(String, Monitor)>,
    /// One worker pool backing every parallel monitor in the set (see
    /// [`MonitorSet::ensure_pool`]).
    pool: Option<Arc<WorkerPool>>,
    /// One causal [`AdmissionGuard`] in front of the whole set (see
    /// [`MonitorSet::observe_raw`]). Per-monitor guards via
    /// [`MonitorConfig::guard`] still work; a set-level guard validates
    /// and reorders each raw arrival once instead of once per pattern —
    /// the configuration a networked deployment uses.
    guard: Option<AdmissionGuard>,
    /// Reused output buffer for set-level guard deliveries.
    admit_buf: Vec<Event>,
    /// Monotone count of post-guard deliveries (each [`MonitorSet::observe`]
    /// pass over the entries is one delivery). Two sets with identical
    /// guards fed the same raw stream assign identical sequence numbers
    /// to each delivery regardless of which monitors they hold — the
    /// alignment a sharded engine merges verdicts on.
    delivery_seq: u64,
}

/// One verdict tagged with the delivery sequence number that produced
/// it: `(delivery_seq, monitor_name, match)`.
pub type TaggedVerdict = (u64, String, Match);

impl MonitorSet {
    /// Creates an empty set for a computation with `n_traces` traces.
    #[must_use]
    pub fn new(n_traces: usize) -> Self {
        MonitorSet {
            n_traces,
            entries: Vec::new(),
            pool: None,
            guard: None,
            admit_buf: Vec::new(),
            delivery_seq: 0,
        }
    }

    /// Puts a shared causal [`AdmissionGuard`] in front of the whole set.
    /// Raw arrivals fed to [`MonitorSet::observe_raw`] are validated,
    /// deduplicated, and causally reordered once, and every delivered
    /// event fans out to all registered monitors. Replaces any previous
    /// set-level guard (counters reset).
    pub fn enable_guard(&mut self, config: GuardConfig) {
        self.guard = Some(AdmissionGuard::new(self.n_traces, config));
    }

    /// Makes sure the set owns a shared [`WorkerPool`] of at least
    /// `threads` workers and injects it into every registered monitor
    /// (and every monitor registered later). Monitors observe in turn, so
    /// one pool safely serves them all; without this, each parallel
    /// monitor lazily spawns its own private pool.
    pub fn ensure_pool(&mut self, threads: usize) {
        let need = threads.max(1);
        let rebuild = match &self.pool {
            Some(p) => p.size() < need,
            None => true,
        };
        if rebuild {
            self.pool = Some(Arc::new(WorkerPool::new(need)));
        }
        let pool = self.pool.as_ref().expect("pool just ensured");
        for (_, m) in &mut self.entries {
            m.set_pool(Arc::clone(pool));
        }
    }

    /// Registers `pattern` under `name` with the default configuration.
    pub fn add(&mut self, name: impl Into<String>, pattern: Pattern) {
        self.add_with_config(name, pattern, MonitorConfig::default());
    }

    /// Registers `pattern` under `name` with an explicit configuration.
    pub fn add_with_config(
        &mut self,
        name: impl Into<String>,
        pattern: Pattern,
        config: MonitorConfig,
    ) {
        let mut monitor = Monitor::with_config(pattern, self.n_traces, config);
        if let Some(pool) = &self.pool {
            monitor.set_pool(Arc::clone(pool));
        }
        self.entries.push((name.into(), monitor));
    }

    /// Observes one event on every registered monitor; returns the newly
    /// reported matches tagged with their pattern's name.
    pub fn observe(&mut self, event: &Event) -> Vec<(String, Match)> {
        let mut out = Vec::new();
        self.observe_seq(event, &mut out);
        out.into_iter().map(|(_, n, m)| (n, m)).collect()
    }

    /// One delivery: fans `event` out to every monitor, pushing each
    /// reported match tagged with this delivery's sequence number.
    fn observe_seq(&mut self, event: &Event, out: &mut Vec<TaggedVerdict>) {
        let seq = self.delivery_seq;
        self.delivery_seq += 1;
        for (name, monitor) in &mut self.entries {
            for m in monitor.observe(event) {
                out.push((seq, name.clone(), m));
            }
        }
    }

    /// Count of deliveries this set has performed (see the field docs on
    /// the sequence alignment property).
    #[must_use]
    pub fn delivery_seq(&self) -> u64 {
        self.delivery_seq
    }

    /// Overrides the delivery counter — used when a shard restored from
    /// a checkpoint rejoins a group whose other members kept counting.
    pub fn set_delivery_seq(&mut self, seq: u64) {
        self.delivery_seq = seq;
    }

    /// Observes one **raw** arrival — the entry point for untrusted
    /// transports. With a set-level guard
    /// ([`MonitorSet::enable_guard`]) the arrival is validated,
    /// deduplicated, and causally ordered first; one raw arrival may
    /// yield zero deliveries (buffered, duplicate, or quarantined —
    /// never a panic) or several (it unblocked buffered successors).
    /// Without a guard this is exactly [`MonitorSet::observe`].
    pub fn observe_raw(&mut self, event: &Event) -> Vec<(String, Match)> {
        self.observe_raw_tagged(event)
            .into_iter()
            .map(|(_, n, m)| (n, m))
            .collect()
    }

    /// [`MonitorSet::observe_raw`] with each verdict tagged by its
    /// delivery sequence number — the form a sharded engine merges
    /// across shards.
    pub fn observe_raw_tagged(&mut self, event: &Event) -> Vec<TaggedVerdict> {
        let mut out = Vec::new();
        let Some(mut guard) = self.guard.take() else {
            self.observe_seq(event, &mut out);
            return out;
        };
        let mut deliverable = std::mem::take(&mut self.admit_buf);
        deliverable.clear();
        guard.admit(event, &mut deliverable);
        for e in &deliverable {
            self.observe_seq(e, &mut out);
        }
        self.guard = Some(guard);
        deliverable.clear();
        self.admit_buf = deliverable;
        out
    }

    /// Observes a whole batch of **raw** arrivals — the per-frame entry
    /// point for batched transports. Equivalent to calling
    /// [`MonitorSet::observe_raw`] once per event (verdicts, guard
    /// counters, and fault log are bit-identical, in the same order),
    /// but the guard is checked out and the delivery buffer swapped
    /// once per batch instead of once per event, and the batch is
    /// admitted through [`AdmissionGuard::admit_batch`].
    pub fn observe_raw_batch(&mut self, events: &[Event]) -> Vec<(String, Match)> {
        self.observe_raw_batch_tagged(events)
            .into_iter()
            .map(|(_, n, m)| (n, m))
            .collect()
    }

    /// [`MonitorSet::observe_raw_batch`] with each verdict tagged by its
    /// delivery sequence number.
    pub fn observe_raw_batch_tagged(&mut self, events: &[Event]) -> Vec<TaggedVerdict> {
        let mut out = Vec::new();
        let Some(mut guard) = self.guard.take() else {
            for e in events {
                self.observe_seq(e, &mut out);
            }
            return out;
        };
        let mut deliverable = std::mem::take(&mut self.admit_buf);
        deliverable.clear();
        guard.admit_batch(events, &mut deliverable);
        for e in &deliverable {
            self.observe_seq(e, &mut out);
        }
        self.guard = Some(guard);
        deliverable.clear();
        self.admit_buf = deliverable;
        out
    }

    /// Abandons causal order for events still waiting in the set-level
    /// guard's reorder buffer: delivers them to every monitor sorted by
    /// `(trace, index)` and marks the run degraded. Call at end of
    /// stream (or before a checkpoint). A no-op without a set-level
    /// guard or with an empty buffer.
    pub fn flush_guard(&mut self) -> Vec<(String, Match)> {
        self.flush_guard_tagged()
            .into_iter()
            .map(|(_, n, m)| (n, m))
            .collect()
    }

    /// [`MonitorSet::flush_guard`] with each verdict tagged by its
    /// delivery sequence number.
    pub fn flush_guard_tagged(&mut self) -> Vec<TaggedVerdict> {
        let mut out = Vec::new();
        let Some(mut guard) = self.guard.take() else {
            return out;
        };
        let mut deliverable = std::mem::take(&mut self.admit_buf);
        deliverable.clear();
        guard.flush(&mut deliverable);
        for e in &deliverable {
            self.observe_seq(e, &mut out);
        }
        self.guard = Some(guard);
        deliverable.clear();
        self.admit_buf = deliverable;
        out
    }

    /// The set-level guard's ingestion counters (all zero when no guard
    /// is enabled). Per-monitor guards keep their own counters — see
    /// [`MonitorSet::total_stats`].
    #[must_use]
    pub fn ingest_stats(&self) -> IngestStats {
        self.guard.as_ref().map(|g| *g.stats()).unwrap_or_default()
    }

    /// The set-level guard, when one is enabled.
    #[must_use]
    pub fn guard(&self) -> Option<&AdmissionGuard> {
        self.guard.as_ref()
    }

    /// The set-level guard's low-watermark clock: per trace, how many
    /// events have been contiguously admitted. Every event whose clock is
    /// component-wise ≤ this vector has been fully delivered (along with
    /// all its causal predecessors) — the safety line behind history GC
    /// and the durable log's watermark records. `None` without a guard.
    #[must_use]
    pub fn admitted_watermark(&self) -> Option<Vec<u32>> {
        self.guard.as_ref().map(|g| g.admitted.clone())
    }

    /// Runs bounded-memory history GC on every registered monitor
    /// against watermark clock `watermark` (see
    /// [`Monitor::gc_history`]); returns the total number of events
    /// released across the set.
    pub fn gc_histories(&mut self, watermark: &[u32], keep_recent: usize) -> usize {
        let mut removed = 0;
        for (_, m) in &mut self.entries {
            removed += m.gc_history(watermark, keep_recent);
        }
        removed
    }

    /// Drains the set-level guard's structured fault stream (empty
    /// without a guard).
    pub fn take_ingest_faults(&mut self) -> Vec<IngestFault> {
        self.guard
            .as_mut()
            .map(AdmissionGuard::take_faults)
            .unwrap_or_default()
    }

    /// True when the set-level guard lost or reordered information
    /// (quarantines, overflow drops, or degraded flushes).
    #[must_use]
    pub fn ingest_degraded(&self) -> bool {
        self.guard.as_ref().is_some_and(|g| g.stats().is_degraded())
    }

    /// Number of traces in the monitored computation.
    #[must_use]
    pub fn n_traces(&self) -> usize {
        self.n_traces
    }

    /// Installs an already-built monitor under `name` — the restore path
    /// used by [`crate::checkpoint::load_set`].
    pub(crate) fn insert_restored(&mut self, name: String, mut monitor: Monitor) {
        if let Some(pool) = &self.pool {
            monitor.set_pool(Arc::clone(pool));
        }
        self.entries.push((name, monitor));
    }

    /// Installs an already-populated set-level guard — the restore path
    /// used by [`crate::checkpoint::load_set`].
    pub(crate) fn install_guard(&mut self, guard: AdmissionGuard) {
        self.guard = Some(guard);
    }

    /// Removes the monitor registered under `name`, returning true when
    /// one was removed. Remaining monitors keep their relative order
    /// (and with it the set's verdict order).
    pub fn remove(&mut self, name: &str) -> bool {
        match self.entries.iter().position(|(n, _)| n == name) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// The monitor registered under `name`.
    #[must_use]
    pub fn monitor(&self, name: &str) -> Option<&Monitor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Iterates over `(name, monitor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Monitor)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no patterns are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sums the work counters over all registered monitors.
    #[must_use]
    pub fn total_stats(&self) -> MonitorStats {
        let mut total = MonitorStats::default();
        for (_, m) in &self.entries {
            total.absorb(m.stats());
        }
        total
    }

    /// Aggregates every monitor's [`Monitor::metrics`] snapshot into one
    /// (counters sum, histograms merge; recent arrivals concatenate,
    /// bounded). Shared-pool gauges appear once per monitor and sum — an
    /// aggregate across monitors, not a per-pool reading.
    #[must_use]
    pub fn metrics(&self) -> crate::MetricsSnapshot {
        let mut total = self.monitor_metrics();
        // The set-level guard's counters merge into the same
        // `ocep_ingest_*` families the per-monitor guards use.
        if let Some(g) = &self.guard {
            total.record_ingest(g.stats());
        }
        total
    }

    /// [`MonitorSet::metrics`] **without** the set-level guard's ingest
    /// counters. A sharded engine replicates one guard per shard; when
    /// it sums shard snapshots it takes the guard families from a single
    /// shard and the monitor families from all of them, so the
    /// `ocep_ingest_*` counters are not multiplied by the shard count.
    #[must_use]
    pub fn monitor_metrics(&self) -> crate::MetricsSnapshot {
        let mut total = crate::MetricsSnapshot::default();
        for (_, m) in &self.entries {
            total.absorb(&m.metrics());
        }
        total
    }

    /// Decomposes the set into `(n_traces, entries, guard_config)`,
    /// surrendering the monitors in registration order — the partition
    /// path a sharded engine uses to distribute an existing set across
    /// shards without rebuilding monitor state.
    #[must_use]
    pub fn into_parts(self) -> (usize, Vec<(String, Monitor)>, Option<GuardConfig>) {
        let guard_config = self.guard.as_ref().map(|g| g.config);
        (self.n_traces, self.entries, guard_config)
    }

    /// Installs an already-built monitor under `name`, preserving its
    /// accumulated state — the inverse of [`MonitorSet::into_parts`].
    pub fn insert_monitor(&mut self, name: impl Into<String>, monitor: Monitor) {
        self.insert_restored(name.into(), monitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocep_poet::{EventKind, PoetServer};
    use ocep_vclock::TraceId;

    fn t(i: u32) -> TraceId {
        TraceId::new(i)
    }

    fn feed(set: &mut MonitorSet, poet: &mut PoetServer) -> Vec<(String, Match)> {
        poet.linearization().flat_map(|e| set.observe(&e)).collect()
    }

    #[test]
    fn patterns_fire_independently() {
        let mut set = MonitorSet::new(2);
        set.add(
            "hb",
            Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap(),
        );
        set.add(
            "conc",
            Pattern::parse("X := [*, a, *]; Y := [*, b, *]; pattern := X || Y;").unwrap(),
        );
        let mut poet = PoetServer::new(2);
        // a on T0 and b on T1, concurrent: only "conc" matches.
        poet.record(t(0), EventKind::Unary, "a", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        let reports = feed(&mut set, &mut poet);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, "conc");
        // Now an ordered pair: only "hb" (the conc cell is new per leaf
        // trace, so check names precisely).
        let s = poet.record(t(0), EventKind::Send, "a", "");
        poet.record_receive(t(1), s.id(), "link", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        let reports = feed(&mut set, &mut poet);
        assert!(reports.iter().any(|(n, _)| n == "hb"));
    }

    #[test]
    fn observe_raw_without_guard_is_observe() {
        let mut set = MonitorSet::new(1);
        set.add(
            "one",
            Pattern::parse("A := [*, a, *]; pattern := A;").unwrap(),
        );
        let mut poet = PoetServer::new(1);
        poet.record(t(0), EventKind::Unary, "a", "");
        let reports: Vec<_> = poet
            .linearization()
            .flat_map(|e| set.observe_raw(&e))
            .collect();
        assert_eq!(reports.len(), 1);
        assert_eq!(set.ingest_stats(), IngestStats::default());
        assert!(!set.ingest_degraded());
    }

    #[test]
    fn set_guard_reorders_once_for_all_monitors() {
        let mut set = MonitorSet::new(2);
        set.add(
            "hb",
            Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap(),
        );
        set.add(
            "conc",
            Pattern::parse("X := [*, a, *]; Y := [*, c, *]; pattern := X || Y;").unwrap(),
        );
        set.enable_guard(GuardConfig::default());
        let mut poet = PoetServer::new(2);
        let s = poet.record(t(0), EventKind::Send, "a", "");
        poet.record_receive(t(1), s.id(), "b", "");
        poet.record(t(1), EventKind::Unary, "c", "");
        let events: Vec<Event> = poet.linearization().collect();
        // Deliver the receive before its send plus a duplicate: the
        // guard must repair both, and each monitor sees the clean order.
        let mut reports = Vec::new();
        for e in [&events[1], &events[0], &events[0], &events[2]] {
            reports.extend(set.observe_raw(e));
        }
        assert!(reports.iter().any(|(n, _)| n == "hb"), "{reports:?}");
        let stats = set.ingest_stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(stats.reordered_delivered, 1);
        assert!(!set.ingest_degraded());
        // Every monitor observed all three deliveries exactly once.
        for (_, m) in set.iter() {
            assert_eq!(m.stats().events, 3);
        }
    }

    #[test]
    fn set_guard_flush_and_fault_accounting() {
        let mut set = MonitorSet::new(2);
        set.add(
            "one",
            Pattern::parse("A := [*, a, *]; pattern := A;").unwrap(),
        );
        set.enable_guard(GuardConfig::default());
        let mut poet = PoetServer::new(2);
        poet.record(t(0), EventKind::Unary, "x", "");
        poet.record(t(0), EventKind::Unary, "a", "");
        let events: Vec<Event> = poet.linearization().collect();
        // Only the second event arrives: it stays buffered until the
        // explicit flush abandons causal order.
        assert!(set.observe_raw(&events[1]).is_empty());
        assert_eq!(set.ingest_stats().buffered, 1);
        let flushed = set.flush_guard();
        assert_eq!(flushed.len(), 1);
        assert!(set.ingest_degraded());
        assert_eq!(set.ingest_stats().degraded_flushes, 1);
        // The set-level counters surface in the aggregated metrics.
        let snap = set.metrics();
        assert_eq!(
            snap.value("ocep_ingest_degraded_flushes_total"),
            Some(1),
            "set-level guard counters must export"
        );
        assert!(set.take_ingest_faults().is_empty());
    }

    /// `observe_raw_batch` must yield exactly the concatenation of
    /// per-event `observe_raw` results — same verdicts in the same
    /// order, same guard counters, same per-monitor stats — with and
    /// without a set-level guard.
    #[test]
    fn observe_raw_batch_matches_per_event_observe_raw() {
        let build = |guard: bool| {
            let mut set = MonitorSet::new(2);
            set.add(
                "hb",
                Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap(),
            );
            set.add(
                "conc",
                Pattern::parse("X := [*, a, *]; Y := [*, c, *]; pattern := X || Y;").unwrap(),
            );
            if guard {
                set.enable_guard(GuardConfig::default());
            }
            set
        };
        let mut poet = PoetServer::new(2);
        let s = poet.record(t(0), EventKind::Send, "a", "");
        poet.record_receive(t(1), s.id(), "b", "");
        poet.record(t(1), EventKind::Unary, "c", "");
        let events: Vec<Event> = poet.linearization().collect();
        // Receive before send, a duplicate, then the tail — the guard
        // repairs it; without a guard both paths just fan out as-is.
        let stream = [
            events[1].clone(),
            events[0].clone(),
            events[0].clone(),
            events[2].clone(),
        ];
        for guard in [true, false] {
            let mut per_event = build(guard);
            let mut reference = Vec::new();
            for e in &stream {
                reference.extend(per_event.observe_raw(e));
            }
            let mut batched = build(guard);
            let got = batched.observe_raw_batch(&stream);
            let names =
                |v: &[(String, Match)]| v.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
            assert_eq!(names(&got), names(&reference), "guard={guard}");
            assert_eq!(batched.ingest_stats(), per_event.ingest_stats());
            for ((_, a), (_, b)) in batched.iter().zip(per_event.iter()) {
                assert_eq!(a.stats().events, b.stats().events);
            }
        }
    }

    #[test]
    fn remove_unregisters_a_monitor_and_keeps_order() {
        let mut set = MonitorSet::new(1);
        for name in ["a", "b", "c"] {
            set.add(
                name,
                Pattern::parse("A := [*, a, *]; pattern := A;").unwrap(),
            );
        }
        assert!(set.remove("b"));
        assert!(!set.remove("b"), "second remove finds nothing");
        assert_eq!(
            set.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        let mut poet = PoetServer::new(1);
        poet.record(t(0), EventKind::Unary, "a", "");
        let names: Vec<String> = feed(&mut set, &mut poet)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    /// Two sets holding disjoint halves of the monitors, fed the same
    /// raw stream through identical guards, tag verdicts with the same
    /// delivery sequence numbers as the combined set — so a stable
    /// merge by `(seq, registration order)` reproduces the combined
    /// set's verdict order exactly. This is the sharding invariant.
    #[test]
    fn delivery_seq_aligns_across_partitioned_sets() {
        let hb = "A := [*, a, *]; B := [*, b, *]; pattern := A -> B;";
        let conc = "X := [*, a, *]; Y := [*, c, *]; pattern := X || Y;";
        let build = |names: &[(&str, &str)]| {
            let mut set = MonitorSet::new(2);
            for (name, src) in names {
                set.add(*name, Pattern::parse(src).unwrap());
            }
            set.enable_guard(GuardConfig::default());
            set
        };
        let mut combined = build(&[("hb", hb), ("conc", conc)]);
        let mut left = build(&[("hb", hb)]);
        let mut right = build(&[("conc", conc)]);

        let mut poet = PoetServer::new(2);
        let s = poet.record(t(0), EventKind::Send, "a", "");
        poet.record_receive(t(1), s.id(), "b", "");
        poet.record(t(1), EventKind::Unary, "c", "");
        let events: Vec<Event> = poet.linearization().collect();
        // Reordered + duplicated stream: the guards repair identically.
        let stream = [&events[1], &events[0], &events[0], &events[2]];

        let mut reference = Vec::new();
        let mut merged: Vec<(u64, usize, String)> = Vec::new();
        for e in stream {
            reference.extend(combined.observe_raw(e).into_iter().map(|(n, _)| n));
            for (seq, n, _) in left.observe_raw_tagged(e) {
                merged.push((seq, 0, n));
            }
            for (seq, n, _) in right.observe_raw_tagged(e) {
                merged.push((seq, 1, n));
            }
        }
        merged.sort_by_key(|a| (a.0, a.1));
        let merged_names: Vec<String> = merged.into_iter().map(|(_, _, n)| n).collect();
        assert_eq!(merged_names, reference);
        assert_eq!(left.delivery_seq(), combined.delivery_seq());
        assert_eq!(right.delivery_seq(), combined.delivery_seq());
        assert_eq!(left.ingest_stats(), combined.ingest_stats());
    }

    #[test]
    fn accessors_and_stats() {
        let mut set = MonitorSet::new(1);
        assert!(set.is_empty());
        set.add(
            "one",
            Pattern::parse("A := [*, a, *]; pattern := A;").unwrap(),
        );
        assert_eq!(set.len(), 1);
        assert!(set.monitor("one").is_some());
        assert!(set.monitor("two").is_none());
        let mut poet = PoetServer::new(1);
        poet.record(t(0), EventKind::Unary, "a", "");
        let _ = feed(&mut set, &mut poet);
        assert_eq!(set.total_stats().events, 1);
        assert_eq!(set.iter().count(), 1);
    }
}
