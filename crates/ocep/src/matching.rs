//! Reported pattern matches.

use ocep_pattern::{LeafId, Pattern};
use ocep_poet::Event;
use std::sync::Arc;

/// One complete match: an assignment of a concrete event to every leaf of
/// the pattern, satisfying all causal, partner, and binding constraints.
///
/// # Example
///
/// ```
/// use ocep_core::Monitor;
/// use ocep_pattern::Pattern;
/// use ocep_poet::{EventKind, PoetServer};
/// use ocep_vclock::TraceId;
///
/// let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap();
/// let mut poet = PoetServer::new(1);
/// let mut monitor = Monitor::new(p, 1);
/// let a = poet.record(TraceId::new(0), EventKind::Unary, "a", "");
/// let b = poet.record(TraceId::new(0), EventKind::Unary, "b", "");
/// let matches: Vec<_> = poet.linearization().flat_map(|e| monitor.observe(&e)).collect();
/// assert_eq!(matches[0].binding_for("A").unwrap().id(), a.id());
/// assert_eq!(matches[0].binding_for("B").unwrap().id(), b.id());
/// ```
#[derive(Debug, Clone)]
pub struct Match {
    pattern: Arc<Pattern>,
    /// Indexed by leaf.
    events: Vec<Event>,
}

impl Match {
    pub(crate) fn new(pattern: Arc<Pattern>, events: Vec<Event>) -> Self {
        debug_assert_eq!(events.len(), pattern.n_leaves());
        Match { pattern, events }
    }

    /// Reassembles a match from externally persisted parts (the serving
    /// layer's durable-log recovery): `events` must be the bound events
    /// in leaf order.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the event count does not equal the pattern's
    /// leaf count.
    pub fn from_bound_events(pattern: Arc<Pattern>, events: Vec<Event>) -> Result<Self, String> {
        if events.len() != pattern.n_leaves() {
            return Err(format!(
                "{} bound events for a {}-leaf pattern",
                events.len(),
                pattern.n_leaves()
            ));
        }
        Ok(Match::new(pattern, events))
    }

    /// The event bound to `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range for the pattern.
    #[must_use]
    pub fn event(&self, leaf: LeafId) -> &Event {
        &self.events[leaf.as_usize()]
    }

    /// The events of the match, indexed by leaf.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Looks up the event bound to the occurrence named `name`: an exact
    /// occurrence name (`B#2`, `$diff`) or a class name (resolving to its
    /// first occurrence).
    #[must_use]
    pub fn binding_for(&self, name: &str) -> Option<&Event> {
        let leaves = self.pattern.leaves();
        if let Some(l) = leaves.iter().find(|l| l.display_name() == name) {
            return Some(&self.events[l.id().as_usize()]);
        }
        leaves
            .iter()
            .find(|l| l.class_name() == name)
            .map(|l| &self.events[l.id().as_usize()])
    }

    /// The pattern this match instantiates.
    #[must_use]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// True if `other` assigns exactly the same events to all leaves.
    #[must_use]
    pub fn same_events(&self, other: &Match) -> bool {
        self.events.len() == other.events.len()
            && self
                .events
                .iter()
                .zip(&other.events)
                .all(|(a, b)| a.id() == b.id())
    }
}

impl std::fmt::Display for Match {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (leaf, e)) in self.pattern.leaves().iter().zip(&self.events).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", leaf.display_name(), e.id())?;
        }
        write!(f, "}}")
    }
}
