//! The public monitor facade.

use crate::history::LeafHistory;
use crate::ingest::{AdmissionGuard, GuardConfig, IngestFault};
use crate::matching::Match;
use crate::obs::{ArrivalRecord, Metrics, MetricsSnapshot, ObsLevel, Stage};
use crate::pool::WorkerPool;
use crate::search::{Search, SearchScratch, SearchStats};
use crate::stats::MonitorStats;
use ocep_pattern::Pattern;
use ocep_poet::Event;
use std::collections::HashSet;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Nanoseconds elapsed since `t0`, saturating.
fn ns_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One in this many searches runs with full introspection (see
/// [`Monitor::run_search`]); all plain counters remain exact for every
/// search regardless.
const OBS_SEARCH_SAMPLE: u64 = 16;

/// One in this many arrivals takes the `Full`-level wall-clock timers
/// (arrival + per-stage). An `Instant` read serializes the pipeline, so
/// timing every stage boundary of every arrival costs more than most of
/// the stages it measures; deterministic sampling keeps the medians
/// honest at a sixteenth of that cost. Counters stay exact on every
/// arrival.
pub const OBS_TIMING_SAMPLE: u64 = 16;

/// Which matches a [`Monitor`] reports to its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsetPolicy {
    /// §IV-B representative subset: a match is reported only when it
    /// covers a `(leaf, trace)` cell no previously reported match
    /// covered, bounding total reports by `k·n`. The maintained subset is
    /// always refreshed to the most recent match per cell.
    #[default]
    Representative,
    /// Every match found by a per-arrival search is reported (still at
    /// most one per `(level, trace)` cell per arrival, and duplicates by
    /// event set are suppressed). Storage stays bounded; only the report
    /// volume grows. Useful when each violation occurrence must alert.
    PerArrival,
}

/// Tuning knobs for a [`Monitor`].
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Enable the §VI O(1) history deduplication (default `true`;
    /// disable only for the ablation study).
    pub dedup: bool,
    /// Reporting policy (default [`SubsetPolicy::Representative`]).
    pub policy: SubsetPolicy,
    /// Abort a single arrival's search after this many backtracking
    /// nodes; `0` (default) means unlimited. A safety valve for
    /// adversarial patterns — none of the paper's case studies need it.
    pub node_limit: u64,
    /// Worker threads for the §VI parallel trace traversal: the traces of
    /// the first backtracking level are partitioned across this many
    /// threads, each exploring its own subtrees. `1` (default) is the
    /// paper's sequential algorithm. Parallel searches may report
    /// slightly different (equally valid) representatives per cell.
    ///
    /// Threads come from a persistent [`WorkerPool`] — lazily created by
    /// the monitor on first use, or shared across monitors via
    /// [`Monitor::set_pool`] / [`crate::MonitorSet::ensure_pool`]. One of
    /// the partitions always runs inline on the observing thread, so a
    /// parallelism of `p` occupies `p - 1` pool workers.
    pub parallelism: usize,
    /// When `Some`, a causal [`AdmissionGuard`](crate::ingest) with this
    /// configuration validates, deduplicates, and reorders raw arrivals
    /// in front of the matcher (default `None`: the caller promises a
    /// clean linearization, as the paper assumes).
    pub guard: Option<GuardConfig>,
    /// Fault-injection hook for tests: the parallel partition with this
    /// share index panics instead of searching, exercising the
    /// worker-respawn and inline-fallback paths. `None` in production.
    pub inject_partition_panic: Option<usize>,
    /// Observability level (default [`ObsLevel::Off`]). `Off` takes no
    /// timers and allocates nothing; see [`crate::obs`]. Observation
    /// never changes matching behaviour — the metrics-transparency suite
    /// pins verdict/subset/checkpoint equality between `Off` and `Full`.
    pub obs: ObsLevel,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            dedup: true,
            policy: SubsetPolicy::default(),
            node_limit: 0,
            parallelism: 1,
            guard: None,
            inject_partition_panic: None,
            obs: ObsLevel::Off,
        }
    }
}

/// The OCEP online monitor: feed it a pattern and the event stream of a
/// computation (in linearization order); it reports a representative
/// subset of pattern matches as they complete (§IV).
///
/// See the [crate documentation](crate) for the algorithm and an example.
#[derive(Debug)]
pub struct Monitor {
    pub(crate) pattern: Arc<Pattern>,
    /// Shared with in-flight parallel search jobs only; between searches
    /// the monitor is the unique owner (jobs release their handles before
    /// signalling completion), so `observe` mutates via [`Arc::get_mut`]
    /// without ever deep-copying.
    pub(crate) history: Arc<LeafHistory>,
    n_traces: usize,
    config: MonitorConfig,
    /// `subset[leaf][trace]` — the most recent reported-or-found match
    /// whose `leaf` event is on `trace` (the §IV-B representative subset,
    /// at most `k·n` entries).
    pub(crate) subset: Vec<Vec<Option<Match>>>,
    pub(crate) stats: MonitorStats,
    /// Working buffers for the searches run on the observing thread,
    /// reused across arrivals.
    scratch: SearchScratch,
    /// Threads for the parallel trace traversal; `None` until the first
    /// parallel search (or a call to [`Monitor::set_pool`]).
    pool: Option<Arc<WorkerPool>>,
    /// The causal admission guard, when [`MonitorConfig::guard`] is set.
    pub(crate) guard: Option<AdmissionGuard>,
    /// Reused output buffer for guard deliveries.
    admit_buf: Vec<Event>,
    /// Live metrics registry; `None` when [`MonitorConfig::obs`] is
    /// `Off` so the disabled path costs one pointer-null check.
    pub(crate) obs: Option<Box<Metrics>>,
}

impl Monitor {
    /// Creates a monitor for `pattern` over a computation with
    /// `n_traces` traces, with the default configuration.
    #[must_use]
    pub fn new(pattern: Pattern, n_traces: usize) -> Self {
        Monitor::with_config(pattern, n_traces, MonitorConfig::default())
    }

    /// Creates a monitor with an explicit [`MonitorConfig`].
    #[must_use]
    pub fn with_config(pattern: Pattern, n_traces: usize, config: MonitorConfig) -> Self {
        let pattern = Arc::new(pattern);
        let k = pattern.n_leaves();
        Monitor {
            history: Arc::new(LeafHistory::new_for(&pattern, n_traces, config.dedup)),
            subset: vec![vec![None; n_traces]; k],
            pattern,
            n_traces,
            config,
            stats: MonitorStats::default(),
            scratch: SearchScratch::default(),
            pool: None,
            guard: config.guard.map(|g| AdmissionGuard::new(n_traces, g)),
            admit_buf: Vec::new(),
            obs: config
                .obs
                .enabled()
                .then(|| Box::new(Metrics::new(config.obs))),
        }
    }

    /// Backs this monitor's parallel searches with an existing pool
    /// (normally one shared across a [`crate::MonitorSet`]). Without
    /// this, a monitor with `parallelism > 1` lazily creates a private
    /// pool on its first parallel search. The effective parallelism is
    /// capped at the pool size plus one (the observing thread runs one
    /// partition inline).
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Observes one raw arrival and returns the newly reported matches.
    ///
    /// Without a configured guard, the event is assumed to be the next
    /// element of a clean linearization (the paper's contract) and goes
    /// straight to the matcher. With a guard
    /// ([`MonitorConfig::guard`]), the arrival is first validated,
    /// deduplicated, and causally ordered: one raw arrival may yield
    /// zero deliveries (buffered, duplicate, or quarantined — never a
    /// panic) or several (it unblocked buffered successors).
    ///
    /// Non-matching events cost one routing pass; events suppressed by
    /// the §VI dedup rule cost O(1); only terminating events (§V-B)
    /// trigger the backtracking search.
    pub fn observe(&mut self, event: &Event) -> Vec<Match> {
        self.stats.events += 1;
        // `stats.events % OBS_TIMING_SAMPLE` is now fixed for the whole
        // arrival: every stage_timing() call below agrees on whether
        // this arrival is in the timing sample.
        if self.obs.is_none() {
            return self.observe_arrival(event);
        }
        // Observability wrapper: snapshot the counters, time the whole
        // arrival, then file a post-mortem record from the deltas. The
        // matching path below is byte-identical to the Off path.
        let before = self.stats;
        let timing = self.stage_timing();
        let t0 = timing.then(Instant::now);
        let reported = self.observe_arrival(event);
        let total_ns = t0.map_or(0, ns_since);
        let stats = &self.stats;
        let rec = ArrivalRecord {
            seq: stats.events,
            event: String::new(),
            stored: stats.stored > before.stored,
            searches: stats.searches - before.searches,
            matches_found: stats.matches_found - before.matches_found,
            matches_reported: stats.matches_reported - before.matches_reported,
            nodes: stats.nodes - before.nodes,
            total_ns,
        };
        if let Some(m) = self.obs.as_deref_mut() {
            if timing {
                m.record_arrival(total_ns);
            }
            // The event text renders straight into the ring's reused
            // slot buffer — the per-arrival record never allocates once
            // the ring is warm.
            m.push_record_with(
                rec,
                format_args!(
                    "{}@{}:{}",
                    event.text(),
                    event.trace().as_usize(),
                    event.index().get()
                ),
            );
        }
        reported
    }

    /// Whether the current arrival takes wall-clock timers. `Full`
    /// observability times one in [`OBS_TIMING_SAMPLE`] arrivals,
    /// deterministically keyed on the exact arrival counter (which
    /// [`Monitor::observe`] bumps first, so the very first arrival is
    /// always in the sample). Everything that is not a timer — counters,
    /// the arrival ring, search introspection — ignores this gate.
    fn stage_timing(&self) -> bool {
        self.stats.events % OBS_TIMING_SAMPLE == 1
            && self.obs.as_ref().is_some_and(|m| m.level().timing())
    }

    /// The arrival path shared by the instrumented and plain variants of
    /// [`Monitor::observe`].
    fn observe_arrival(&mut self, event: &Event) -> Vec<Match> {
        if self.guard.is_none() {
            return self.observe_admitted(event);
        }
        let mut guard = self.guard.take().expect("guard presence checked above");
        let mut deliverable = std::mem::take(&mut self.admit_buf);
        deliverable.clear();
        let tg = self.stage_timing().then(Instant::now);
        guard.admit(event, &mut deliverable);
        if let (Some(tg), Some(m)) = (tg, self.obs.as_deref_mut()) {
            m.record_stage(Stage::GuardAdmit, ns_since(tg));
        }
        let mut reported = Vec::new();
        for e in &deliverable {
            reported.append(&mut self.observe_admitted(e));
        }
        self.stats.ingest = *guard.stats();
        self.guard = Some(guard);
        deliverable.clear();
        self.admit_buf = deliverable;
        reported
    }

    /// Abandons causal order for events still waiting in the guard's
    /// reorder buffer: delivers them to the matcher sorted by
    /// `(trace, index)` and marks the run degraded. Call at end of
    /// stream (or before a checkpoint) so permanently gapped stragglers
    /// still get matched best-effort. A no-op without a guard or with an
    /// empty buffer.
    pub fn flush_guard(&mut self) -> Vec<Match> {
        let Some(mut guard) = self.guard.take() else {
            return Vec::new();
        };
        let mut deliverable = std::mem::take(&mut self.admit_buf);
        deliverable.clear();
        let tg = self.stage_timing().then(Instant::now);
        guard.flush(&mut deliverable);
        if let (Some(tg), Some(m)) = (tg, self.obs.as_deref_mut()) {
            m.record_stage(Stage::GuardAdmit, ns_since(tg));
        }
        let mut reported = Vec::new();
        for e in &deliverable {
            reported.append(&mut self.observe_admitted(e));
        }
        self.stats.ingest = *guard.stats();
        self.guard = Some(guard);
        deliverable.clear();
        self.admit_buf = deliverable;
        reported
    }

    /// Regains unique access to the shared history. Normally immediate;
    /// after a worker panic the job's result channel can close a moment
    /// before the unwinding thread drops its history handle, so spin
    /// rather than assume.
    fn history_mut(history: &mut Arc<LeafHistory>) -> &mut LeafHistory {
        while Arc::get_mut(history).is_none() {
            std::thread::yield_now();
        }
        Arc::get_mut(history).expect("no other history handle can appear between searches")
    }

    /// Observes one *admitted* event: the matcher proper.
    fn observe_admitted(&mut self, event: &Event) -> Vec<Match> {
        let timing = self.stage_timing();
        let tr = timing.then(Instant::now);
        let stored = Self::history_mut(&mut self.history).observe(&self.pattern, event);
        if let (Some(tr), Some(m)) = (tr, self.obs.as_deref_mut()) {
            m.record_stage(Stage::RouteDedup, ns_since(tr));
        }
        if !stored {
            return Vec::new();
        }
        self.stats.stored += 1;

        let mut reported = Vec::new();
        let mut seen_this_arrival: HashSet<Vec<ocep_vclock::EventId>> = HashSet::new();
        let pattern = Arc::clone(&self.pattern);
        for &tl in pattern.terminating_leaves() {
            if !pattern.leaves()[tl.as_usize()].matches_shape(event) {
                continue;
            }
            self.stats.searches += 1;
            let ts = timing.then(Instant::now);
            let (matches, sstats) = self.run_search(tl, event);
            if let (Some(ts), Some(m)) = (ts, self.obs.as_deref_mut()) {
                m.record_stage(Stage::Search, ns_since(ts));
            }
            self.stats.absorb_search(&sstats);
            if let Some(m) = self.obs.as_deref_mut() {
                m.absorb_search_counters(
                    sstats.prune_gp_ls,
                    sstats.prune_intersect,
                    sstats.domain_ns,
                );
                if let Some(o) = &sstats.obs {
                    m.absorb_search(o);
                }
            }
            self.stats.matches_found += matches.len() as u64;

            let tm = timing.then(Instant::now);
            for m in matches {
                // Suppress event-set duplicates within one arrival (two
                // seeded searches can find the same match with leaves
                // permuted).
                let mut ids: Vec<_> = m.events().iter().map(Event::id).collect();
                ids.sort_unstable();
                if !seen_this_arrival.insert(ids) {
                    continue;
                }

                let mut new_cell = false;
                for (leaf, e) in pattern.leaves().iter().zip(m.events()) {
                    let cell = &mut self.subset[leaf.id().as_usize()][e.trace().as_usize()];
                    if cell.is_none() {
                        new_cell = true;
                    }
                    *cell = Some(m.clone());
                }
                let report = match self.config.policy {
                    SubsetPolicy::Representative => new_cell,
                    SubsetPolicy::PerArrival => true,
                };
                if report {
                    self.stats.matches_reported += 1;
                    reported.push(m);
                }
            }
            if let (Some(tm), Some(m)) = (tm, self.obs.as_deref_mut()) {
                m.record_stage(Stage::SubsetMerge, ns_since(tm));
            }
        }
        reported
    }

    /// Runs one seeded search, sequentially or with the §VI parallel
    /// trace traversal.
    fn run_search(&mut self, tl: ocep_pattern::LeafId, event: &Event) -> (Vec<Match>, SearchStats) {
        let obs_level = self.obs.as_ref().map_or(ObsLevel::Off, |m| m.level());
        // Search introspection (the width/backjump/conflict histograms)
        // is collected from a 1-in-N sample of searches, profiler-style:
        // an instrumented search allocates a fresh `SearchObs` per
        // partition plus its lazily-sized histogram buffers, and paying
        // that on every search dominates the search itself under the
        // worker pool. Counters (prunes, domains, nodes, `domain_ns`)
        // ride plain `SearchStats` fields and stay exact for every
        // search. Seeded from the exact `searches` counter, so sampling
        // is deterministic and the first search is always covered.
        let obs_level = if self.stats.searches % OBS_SEARCH_SAMPLE == 1 {
            obs_level
        } else {
            ObsLevel::Off
        };
        let workers = self.config.parallelism.max(1).min(self.n_traces.max(1));
        let order = self.pattern.eval_order(tl);
        // A partner-pinned first level has a unique candidate: splitting
        // traces would make every worker but one idle and one duplicate.
        let level1_partner_pinned = order.len() >= 2
            && self.pattern.constraints().iter().any(|c| {
                matches!(
                    c,
                    ocep_pattern::Constraint::Partner { send, recv }
                        if (*send == order[0] && *recv == order[1])
                            || (*send == order[1] && *recv == order[0])
                )
            });
        if workers <= 1 || order.len() < 2 || level1_partner_pinned {
            let search = Search::new(
                &self.pattern,
                &self.history,
                self.n_traces,
                tl,
                self.config.node_limit,
                &mut self.scratch,
            )
            .with_obs(obs_level);
            return search.run(event);
        }

        // Partition the first level's traces across `workers` shares:
        // share 0 runs inline on this thread, shares 1.. go to the pool.
        let pool = match &self.pool {
            Some(p) => Arc::clone(p),
            None => {
                let p = Arc::new(WorkerPool::new(workers - 1));
                self.pool = Some(Arc::clone(&p));
                p
            }
        };
        let workers = workers.min(pool.size() + 1);
        let n_traces = self.n_traces;
        let node_limit = self.config.node_limit;
        let inject_panic = self.config.inject_partition_panic;
        let (tx, rx) = mpsc::channel();
        for w in 1..workers {
            let pattern = Arc::clone(&self.pattern);
            let history = Arc::clone(&self.history);
            let event = event.clone();
            let tx = tx.clone();
            pool.execute(
                w - 1,
                Box::new(move |scratch| {
                    if inject_panic == Some(w) {
                        panic!("injected partition fault (test hook)");
                    }
                    let allowed: Vec<bool> = (0..n_traces).map(|t| t % workers == w).collect();
                    let out = Search::new(&pattern, &history, n_traces, tl, node_limit, scratch)
                        .with_level1_traces(allowed)
                        .with_obs(obs_level)
                        .run(&event);
                    // Release the shared handles BEFORE announcing the
                    // result: once the dispatcher has drained the channel
                    // it is again the history's unique owner and can
                    // mutate it in place on the next arrival. If the
                    // dispatcher already fell back and left (worker died
                    // elsewhere), the send fails harmlessly.
                    drop(history);
                    drop(pattern);
                    let _ = tx.send((w, out));
                }),
            );
        }
        drop(tx);

        // This thread takes share 0 (with its own persistent scratch)
        // while the pool works the others.
        let allowed: Vec<bool> = (0..n_traces).map(|t| t % workers == 0).collect();
        let mine = Search::new(
            &self.pattern,
            &self.history,
            n_traces,
            tl,
            node_limit,
            &mut self.scratch,
        )
        .with_level1_traces(allowed)
        .with_obs(obs_level)
        .run(event);

        // Collect into worker-order slots so the merge is deterministic
        // regardless of completion order.
        let mut slots: Vec<Option<(Vec<Match>, SearchStats)>> =
            (0..workers).map(|_| None).collect();
        slots[0] = Some(mine);
        for (w, out) in rx {
            slots[w] = Some(out);
        }

        // Panic containment: a share whose worker died (or was never
        // accepted) simply has no result. Re-run those partitions inline
        // — same partition function, same scratch discipline — so the
        // arrival's verdict is complete either way, and count the
        // degradation instead of aborting.
        let mut fell_back = false;
        for (w, slot) in slots.iter_mut().enumerate().skip(1) {
            if slot.is_some() {
                continue;
            }
            fell_back = true;
            let allowed: Vec<bool> = (0..n_traces).map(|t| t % workers == w).collect();
            let out = Search::new(
                &self.pattern,
                &self.history,
                n_traces,
                tl,
                node_limit,
                &mut self.scratch,
            )
            .with_level1_traces(allowed)
            .with_obs(obs_level)
            .run(event);
            *slot = Some(out);
        }
        if fell_back {
            self.stats.degraded_arrivals += 1;
        }

        let mut matches = Vec::new();
        let mut stats = SearchStats::default();
        let mut seen: HashSet<Vec<ocep_vclock::EventId>> = HashSet::new();
        for (ms, st) in slots.into_iter().flatten() {
            stats.merge(&st);
            for m in ms {
                let mut ids: Vec<_> = m.events().iter().map(Event::id).collect();
                ids.sort_unstable();
                if seen.insert(ids) {
                    matches.push(m);
                }
            }
        }
        (matches, stats)
    }

    /// The current representative subset: for each `(leaf, trace)` cell
    /// with at least one known match, the most recent such match. Matches
    /// covering several cells appear once.
    #[must_use]
    pub fn subset(&self) -> Vec<&Match> {
        let mut out: Vec<&Match> = Vec::new();
        let mut seen: HashSet<Vec<ocep_vclock::EventId>> = HashSet::new();
        for per_trace in &self.subset {
            for m in per_trace.iter().flatten() {
                // Leaf-wise ids: `same_events` equality, as a hashable key.
                let ids: Vec<_> = m.events().iter().map(Event::id).collect();
                if seen.insert(ids) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// True if some reported match has `leaf_name`'s event on trace `t` —
    /// the §IV-B coverage criterion.
    #[must_use]
    pub fn covers(&self, leaf_name: &str, t: ocep_vclock::TraceId) -> bool {
        self.pattern
            .leaves()
            .iter()
            .filter(|l| l.display_name() == leaf_name || l.class_name() == leaf_name)
            .any(|l| self.subset[l.id().as_usize()][t.as_usize()].is_some())
    }

    /// The compiled pattern being monitored.
    #[must_use]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Cumulative work counters.
    #[must_use]
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// The live metrics registry, when [`MonitorConfig::obs`] is not
    /// `Off`. Checkpointing serializes this; tests introspect it.
    #[must_use]
    pub fn obs_metrics(&self) -> Option<&Metrics> {
        self.obs.as_deref()
    }

    /// Replaces the live metrics registry (checkpoint restore). Also
    /// aligns [`MonitorConfig::obs`] with the registry's level so a
    /// restored monitor keeps collecting consistently.
    pub(crate) fn set_obs_metrics(&mut self, metrics: Option<Box<Metrics>>) {
        self.config.obs = metrics.as_ref().map_or(ObsLevel::Off, |m| m.level());
        self.obs = metrics;
    }

    /// An exportable snapshot of everything this monitor knows about its
    /// own behaviour: the [`MonitorStats`] counters, history and pool
    /// gauges, process-wide clock-op counters (when
    /// [`ocep_vclock::ops::enable`]d), and — when [`MonitorConfig::obs`]
    /// is not `Off` — stage/arrival latency histograms, search
    /// introspection, and the recent-arrival ring.
    ///
    /// See `docs/OBSERVABILITY.md` for the metric catalog.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        let st = &self.stats;
        s.counter(
            "ocep_events_total",
            "Events observed (§V-B arrivals).",
            st.events,
        );
        s.counter(
            "ocep_stored_total",
            "Events stored into at least one leaf history.",
            st.stored,
        );
        s.counter(
            "ocep_searches_total",
            "Terminating-event searches started.",
            st.searches,
        );
        s.counter(
            "ocep_matches_found_total",
            "Complete matches found before subset filtering.",
            st.matches_found,
        );
        s.counter(
            "ocep_matches_reported_total",
            "Matches reported to the caller.",
            st.matches_reported,
        );
        s.counter(
            "ocep_search_nodes_total",
            "Backtracking nodes explored.",
            st.nodes,
        );
        s.counter(
            "ocep_search_candidates_total",
            "Candidate events examined.",
            st.candidates,
        );
        s.counter(
            "ocep_search_domains_total",
            "Fig-4 domain computations performed.",
            st.domains,
        );
        s.counter(
            "ocep_search_backjumps_total",
            "Conflict-directed backjumps taken.",
            st.backjumps,
        );
        s.counter(
            "ocep_search_jump_bounds_total",
            "Fig-5 jump bounds applied to fast-forward a cursor.",
            st.jump_bounds,
        );
        s.counter(
            "ocep_search_deferred_rejections_total",
            "Complete assignments rejected by deferred checks.",
            st.deferred_rejections,
        );
        s.counter(
            "ocep_clones_avoided_total",
            "Event clones skipped by the zero-copy hot path.",
            st.clones_avoided,
        );
        s.counter(
            "ocep_clone_bytes_avoided_total",
            "Timestamp-buffer bytes those skipped clones would have copied.",
            st.clone_bytes_avoided,
        );
        s.counter(
            "ocep_degraded_arrivals_total",
            "Arrivals that fell back to inline search after a worker panic.",
            st.degraded_arrivals,
        );

        s.record_ingest(&st.ingest);

        s.gauge(
            "ocep_history_events",
            "Events currently stored across all leaf histories (§VI).",
            self.history_size() as u64,
        );
        s.counter(
            "ocep_history_suppressed_total",
            "Arrivals suppressed by the §VI dedup rule.",
            self.suppressed() as u64,
        );
        s.gauge(
            "ocep_history_bytes",
            "Approximate history memory in bytes.",
            self.history_bytes() as u64,
        );

        if let Some(pool) = &self.pool {
            let ps = pool.stats();
            s.gauge(
                "ocep_pool_workers",
                "Worker threads in the search pool.",
                pool.size() as u64,
            );
            s.counter(
                "ocep_pool_dispatched_total",
                "Jobs handed to pool workers.",
                ps.dispatched,
            );
            s.counter(
                "ocep_pool_completed_total",
                "Jobs that ran to completion.",
                ps.completed,
            );
            s.gauge(
                "ocep_pool_queue_depth",
                "Jobs accepted but not yet finished at snapshot time.",
                ps.queue_depth,
            );
            s.counter(
                "ocep_pool_panics_total",
                "Job panics caught and contained by workers.",
                ps.caught_panics,
            );
            s.counter(
                "ocep_pool_respawns_total",
                "Workers respawned after a caught panic.",
                ps.respawned,
            );
            for (w, jobs) in ps.jobs_per_worker.iter().enumerate() {
                s.counter_with(
                    "ocep_pool_jobs_total",
                    "Jobs accepted per worker slot.",
                    &[("worker", &w.to_string())],
                    *jobs,
                );
            }
        }

        if ocep_vclock::ops::enabled() {
            let ops = ocep_vclock::ops::snapshot();
            let n = "ocep_vclock_ops_total";
            let h = "Process-wide vector-clock operations (not per-monitor).";
            s.counter_with(n, h, &[("op", "tick")], ops.ticks);
            s.counter_with(n, h, &[("op", "join")], ops.joins);
            s.counter_with(n, h, &[("op", "comparison")], ops.comparisons);
            s.counter_with(n, h, &[("op", "pool_hit")], ops.pool_hits);
            s.counter_with(n, h, &[("op", "pool_miss")], ops.pool_misses);
        }

        if let Some(m) = &self.obs {
            for stage in Stage::ALL {
                s.histogram_with(
                    "ocep_stage_ns",
                    "Per-stage pipeline latency (ns), 1-in-16 sampled arrivals; domain_fig4 is nested inside search.",
                    &[("stage", stage.name())],
                    m.stage_hist(stage),
                );
            }
            s.histogram(
                "ocep_arrival_ns",
                "End-to-end arrival latency (ns), 1-in-16 sampled arrivals.",
                m.arrival_hist(),
            );
            let so = m.search_obs();
            for (level, h) in so.domain_width.iter().enumerate() {
                if h.is_empty() {
                    continue;
                }
                let label = if level == crate::obs::MAX_TRACKED_LEVELS - 1 {
                    format!("{level}+")
                } else {
                    level.to_string()
                };
                s.histogram_with(
                    "ocep_search_domain_width",
                    "Live Fig-4 domain widths per evaluation level (1-in-16 sampled searches).",
                    &[("level", &label)],
                    h,
                );
            }
            s.histogram(
                "ocep_search_backjump_depth",
                "Levels conflict-directed backjumps landed on (1-in-16 sampled searches).",
                &so.backjump_depth,
            );
            s.histogram(
                "ocep_search_conflict_size",
                "Conflict-set sizes (popcount) of exhausted subtrees (1-in-16 sampled searches).",
                &so.conflict_size,
            );
            let pr = "ocep_search_prunes_total";
            let pr_help = "Domains emptied by Fig-4 restriction, by cause.";
            s.counter_with(pr, pr_help, &[("kind", "gp_ls")], so.prune_gp_ls);
            s.counter_with(pr, pr_help, &[("kind", "intersect")], so.prune_intersect);
            s.counter(
                "ocep_search_domain_ns_total",
                "Wall-clock ns in domain construction + Fig-4 restriction (1-in-64 sampled estimate).",
                so.domain_ns,
            );
            s.recent = m.recent().records();
        }
        s
    }

    /// Number of events currently stored across all leaf histories (the
    /// §VI bounded-storage metric).
    #[must_use]
    pub fn history_size(&self) -> usize {
        self.history.stored()
    }

    /// Arrivals suppressed by the §VI dedup rule.
    #[must_use]
    pub fn suppressed(&self) -> usize {
        self.history.suppressed()
    }

    /// Approximate history memory in bytes (the §VI bounded-storage
    /// metric).
    #[must_use]
    pub fn history_bytes(&self) -> usize {
        self.history.approx_bytes()
    }

    /// Bounded-memory history GC (see
    /// [`LeafHistory::truncate_dominated`]): truncates, in every
    /// `(leaf, trace)` cell whose representative-subset entry is already
    /// populated, the history prefix dominated by the admission guard's
    /// low-watermark clock `watermark`, keeping the newest `keep_recent`
    /// events per cell. Returns the number of events released.
    ///
    /// Safe only under [`SubsetPolicy::Representative`]: a released
    /// candidate could at most have re-covered an already-covered cell,
    /// so reported verdicts on covered workloads are unchanged (the
    /// GC-transparency suite pins bit-identity on the pinned streams).
    /// `~>`-witness leaves are never truncated.
    pub fn gc_history(&mut self, watermark: &[u32], keep_recent: usize) -> usize {
        let n_traces = self.history.n_traces();
        let n_leaves = self.pattern.n_leaves();
        let mut cov = vec![false; n_leaves * n_traces];
        for l in 0..n_leaves {
            for t in 0..n_traces {
                cov[l * n_traces + t] = self.subset[l][t].is_some();
            }
        }
        Self::history_mut(&mut self.history)
            .truncate_dominated(watermark, keep_recent, |l, t| cov[l * n_traces + t])
    }

    /// A shared handle to the compiled pattern — used by the serving
    /// layer's recovery path to rebuild [`Match`]es from logged bytes.
    #[must_use]
    pub fn pattern_arc(&self) -> Arc<ocep_pattern::Pattern> {
        Arc::clone(&self.pattern)
    }

    /// The monitor's configuration.
    #[must_use]
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Mutable access to the configuration, for runtime toggles (node
    /// limit, the `inject_partition_panic` test hook). Changing `dedup`
    /// or `guard` after construction does *not* rebuild the history or
    /// guard — set those via [`Monitor::with_config`].
    pub fn config_mut(&mut self) -> &mut MonitorConfig {
        &mut self.config
    }

    /// The admission guard, when one is configured.
    #[must_use]
    pub fn guard(&self) -> Option<&AdmissionGuard> {
        self.guard.as_ref()
    }

    /// Drains the guard's structured fault stream (empty without a
    /// guard; see [`crate::ingest::AdmissionGuard::take_faults`]).
    pub fn take_ingest_faults(&mut self) -> Vec<IngestFault> {
        self.guard
            .as_mut()
            .map(AdmissionGuard::take_faults)
            .unwrap_or_default()
    }

    /// True when ingestion lost or reordered information (quarantines,
    /// overflow drops, or degraded flushes) — the condition behind the
    /// CLI's "ingest-degraded" exit code.
    #[must_use]
    pub fn ingest_degraded(&self) -> bool {
        self.stats.ingest.is_degraded()
    }
}
