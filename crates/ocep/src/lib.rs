//! OCEP — the online causal-event-pattern matching engine (§IV of the
//! paper).
//!
//! The [`Monitor`] consumes the events of a distributed computation in a
//! linearization of the partial order (as delivered by a
//! [`ocep_poet::PoetServer`]) and matches a compiled
//! [`ocep_pattern::Pattern`] online:
//!
//! * Arriving events are routed to the **history** of every pattern leaf
//!   whose shape they match, grouped by trace and totally ordered per
//!   trace (Fig 2's *History* attribute). Consecutive same-attribute
//!   occurrences with no intervening causally relevant event on the trace
//!   are deduplicated in O(1) (§VI), which bounds storage per
//!   communication block.
//! * Only **terminating events** (§V-B) start a search: leaves with no
//!   outgoing happens-before constraint, the only positions an event that
//!   completes a match can occupy.
//! * The search is the backtracking procedure of Algorithms 1–3: levels
//!   follow the pattern's evaluation order; each level's **domain** on a
//!   trace is the contiguous interval obtained by intersecting the Fig 4
//!   causality rules (`GP`/`LS` bounds from the already-instantiated
//!   events, computed by O(log) binary search over the history); empty
//!   domains record their culprit level and a Fig 5 *jump bound*, and
//!   exhausted levels backjump conflict-directed instead of
//!   chronologically.
//! * Completed matches update the **representative subset** (§IV-B): per
//!   arrival, at most one match is reported through each (level, trace)
//!   cell, and globally the subset keeps the most recent match per
//!   (leaf, trace) — at most `k·n` entries for a `k`-event pattern over
//!   `n` traces.
//!
//! # Example
//!
//! ```
//! use ocep_core::Monitor;
//! use ocep_pattern::Pattern;
//! use ocep_poet::{EventKind, PoetServer};
//! use ocep_vclock::TraceId;
//!
//! // Watch for two concurrent "green" events — the traffic-light safety
//! // violation from the paper's introduction.
//! let pattern = Pattern::parse(
//!     "G1 := [*, green, *]; G2 := [*, green, *]; pattern := G1 || G2;",
//! )
//! .unwrap();
//! let mut poet = PoetServer::new(2);
//! let mut monitor = Monitor::new(pattern, 2);
//!
//! poet.record(TraceId::new(0), EventKind::Unary, "green", "north");
//! poet.record(TraceId::new(1), EventKind::Unary, "green", "east");
//! let matches: Vec<_> = poet
//!     .linearization()
//!     .flat_map(|e| monitor.observe(&e))
//!     .collect();
//! assert_eq!(matches.len(), 1, "the two lights are concurrently green");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod domain;
mod history;
pub mod ingest;
mod matching;
mod monitor;
mod multi;
mod pool;
mod search;
mod stats;

pub mod obs;
/// Facade alias for the observability subsystem (metrics registry,
/// histograms, exporters) — see [`obs`].
pub use self::obs as ocep_obs;

pub use checkpoint::{
    load, load_at, load_set, load_set_at, save, save_at, save_set, save_set_at, strip_metrics,
    CheckpointError,
};
pub use history::LeafHistory;
pub use ingest::{
    AdmissionGuard, GuardConfig, IngestFault, IngestFaultKind, IngestStats, OverflowPolicy,
};
pub use matching::Match;
pub use monitor::{Monitor, MonitorConfig, SubsetPolicy, OBS_TIMING_SAMPLE};
pub use multi::{MonitorSet, TaggedVerdict};
pub use obs::{
    ArrivalRecord, Histogram, MetricFamily, MetricKind, MetricSample, MetricValue, Metrics,
    MetricsSnapshot, ObsLevel, SearchObs, Stage,
};
pub use pool::{PoolStats, WorkerPool};
pub use stats::MonitorStats;
