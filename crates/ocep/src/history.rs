//! Per-leaf event histories with O(1) causal deduplication (§VI).

use ocep_pattern::{LeafId, Pattern};
use ocep_poet::Event;
use ocep_vclock::{EventId, TraceId};
use std::collections::HashMap;

/// The *History* attribute of the pattern tree's leaf nodes (Fig 2):
/// for each leaf, the matched events grouped by trace and totally ordered
/// on each trace.
///
/// Storage is bounded by the §VI observation: how an event relates
/// causally to events on *other* traces is affected only by messages, so
/// two same-shape occurrences with no intervening causally relevant event
/// on their trace are interchangeable, and only the first is kept. An
/// event is *causally relevant* here if it is a message endpoint or was
/// itself appended to any leaf history (the latter protects same-trace
/// pattern constraints, which compare event indices).
#[derive(Debug)]
pub struct LeafHistory {
    /// `per_leaf[leaf][trace]` — events ascending by index.
    pub(crate) per_leaf: Vec<Vec<Vec<Event>>>,
    /// Monotone per-trace counter of causally relevant arrivals.
    pub(crate) relevant: Vec<u64>,
    /// `last_relevant[leaf][trace]` — the `relevant` value when that
    /// history last grew.
    pub(crate) last_relevant: Vec<Vec<u64>>,
    /// `by_partner[leaf]` — for stored receive events, the position of
    /// the receive keyed by its partner send. Lets the search resolve a
    /// `<>`-constrained leaf in O(1) instead of scanning candidates.
    pub(crate) by_partner: Vec<HashMap<EventId, EventId>>,
    /// `by_text[leaf][trace]` — ascending slice positions keyed by text
    /// value, maintained only for leaves whose text attribute is a
    /// variable: a bound variable then resolves its candidates without a
    /// linear scan.
    pub(crate) by_text: Vec<Vec<HashMap<std::sync::Arc<str>, Vec<u32>>>>,
    /// Which leaves maintain `by_text`.
    pub(crate) text_indexed: Vec<bool>,
    pub(crate) dedup: bool,
    /// Leaves whose candidates must never be suppressed: the `from` side
    /// of a `~>` constraint, where "no other occurrence causally between"
    /// makes same-block repeats semantically distinct.
    pub(crate) dedup_exempt: Vec<bool>,
    pub(crate) stored: usize,
    pub(crate) suppressed: usize,
}

impl LeafHistory {
    /// Creates empty histories for `n_leaves` leaves over `n_traces`
    /// traces. `dedup` enables the §VI O(1) suppression (disable it only
    /// for the ablation benchmark). Two leaf classes are exempted:
    ///
    /// * the `from` side of a `~>` constraint, because limited precedence
    ///   distinguishes same-block repeats;
    /// * any leaf with an overlapping-shape sibling not forced
    ///   `Concurrent` with it. A suppressed arrival's stored duplicate
    ///   matches exactly the same leaves, so a match may need *both*
    ///   occurrences at two related leaves (`C -> C`, or `C && C'` with
    ///   `C'` shape-compatible) — distinctness then makes the suppression
    ///   lossy. Concurrent pairs are safe: same-trace duplicates are
    ///   always program-ordered, never concurrent, so e.g. the pairwise-`||`
    ///   deadlock-cycle patterns keep their full §VI dedup.
    #[must_use]
    pub fn new_for(pattern: &Pattern, n_traces: usize, dedup: bool) -> Self {
        let n_leaves = pattern.n_leaves();
        let mut dedup_exempt = vec![false; n_leaves];
        for c in pattern.constraints() {
            if let ocep_pattern::Constraint::Lim { from, .. } = c {
                dedup_exempt[from.as_usize()] = true;
            }
        }
        let leaves = pattern.leaves();
        for i in 0..n_leaves {
            for j in 0..n_leaves {
                if i == j {
                    continue;
                }
                let rel = pattern.rel(LeafId::from_index(i as u32), LeafId::from_index(j as u32));
                if rel == Some(ocep_pattern::PairRel::Concurrent) {
                    continue;
                }
                if leaves[i].may_overlap(&leaves[j]) {
                    dedup_exempt[i] = true;
                    break;
                }
            }
        }
        let text_indexed: Vec<bool> = pattern
            .leaves()
            .iter()
            .map(|l| l.text_var().is_some())
            .collect();
        LeafHistory {
            per_leaf: vec![vec![Vec::new(); n_traces]; n_leaves],
            relevant: vec![0; n_traces],
            last_relevant: vec![vec![0; n_traces]; n_leaves],
            by_partner: vec![HashMap::new(); n_leaves],
            by_text: vec![vec![HashMap::new(); n_traces]; n_leaves],
            text_indexed,
            dedup,
            dedup_exempt,
            stored: 0,
            suppressed: 0,
        }
    }

    /// Creates empty histories with no `~>` exemptions — use
    /// [`LeafHistory::new_for`] when a compiled pattern is available.
    #[must_use]
    pub fn new(n_leaves: usize, n_traces: usize, dedup: bool) -> Self {
        LeafHistory {
            per_leaf: vec![vec![Vec::new(); n_traces]; n_leaves],
            relevant: vec![0; n_traces],
            last_relevant: vec![vec![0; n_traces]; n_leaves],
            by_partner: vec![HashMap::new(); n_leaves],
            by_text: vec![vec![HashMap::new(); n_traces]; n_leaves],
            text_indexed: vec![false; n_leaves],
            dedup,
            dedup_exempt: vec![false; n_leaves],
            stored: 0,
            suppressed: 0,
        }
    }

    /// Routes an arriving event into the histories of every shape-matching
    /// leaf. Returns `true` if the event was stored in at least one
    /// history (false means it was suppressed everywhere or matched no
    /// leaf — a suppressed terminating event needs no search either,
    /// because an equivalent representative has already been searched).
    pub fn observe(&mut self, pattern: &Pattern, event: &Event) -> bool {
        let t = event.trace().as_usize();
        let mut stored_somewhere = false;
        for leaf in pattern.matching_leaves(event) {
            let l = leaf.as_usize();
            let hist = &mut self.per_leaf[l][t];
            let fresh = self.relevant[t] > self.last_relevant[l][t] || hist.is_empty();
            // Only a unary event may merge into a block, and only when the
            // block head is itself unary: a communication event is never
            // interchangeable with anything (it has its own partner and
            // successor set), in either role.
            let mergeable = hist.last().is_some_and(|prev| {
                prev.kind() == ocep_poet::EventKind::Unary
                    && prev.ty() == event.ty()
                    && prev.text() == event.text()
            });
            if self.dedup
                && !self.dedup_exempt[l]
                && !fresh
                && mergeable
                && !event.kind().is_communication()
            {
                self.suppressed += 1;
                continue;
            }
            let pos = hist.len() as u32;
            hist.push(event.clone());
            if let Some(p) = event.partner() {
                self.by_partner[l].insert(p, event.id());
            }
            if self.text_indexed[l] {
                self.by_text[l][t]
                    .entry(event.text_arc())
                    .or_default()
                    .push(pos);
            }
            self.last_relevant[l][t] = self.relevant[t] + 1;
            self.stored += 1;
            stored_somewhere = true;
        }
        // A suppressed-everywhere event adds no candidate and leaves the
        // causal structure unchanged, so it is not "relevant": the block
        // it belongs to stays collapsible.
        if event.kind().is_communication() || stored_somewhere {
            self.relevant[t] += 1;
        }
        stored_somewhere
    }

    /// The stored candidates for `leaf` on trace `t`, ascending by index.
    #[must_use]
    pub fn on_trace(&self, leaf: LeafId, t: TraceId) -> &[Event] {
        &self.per_leaf[leaf.as_usize()][t.as_usize()]
    }

    /// True if `leaf` has any stored candidate on trace `t`.
    #[must_use]
    pub fn has_any(&self, leaf: LeafId, t: TraceId) -> bool {
        !self.on_trace(leaf, t).is_empty()
    }

    /// Total number of stored events across all histories.
    #[must_use]
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Approximate resident size of the histories in bytes (event
    /// bookkeeping plus one clock entry per trace per event) — the
    /// §VI bounded-storage metric in physical terms.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        let per_event = std::mem::size_of::<Event>() + self.n_traces() * std::mem::size_of::<u32>();
        self.stored * per_event
    }

    /// Number of arrivals suppressed by the §VI dedup rule.
    #[must_use]
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Number of traces.
    #[must_use]
    pub fn n_traces(&self) -> usize {
        self.relevant.len()
    }

    /// Ascending slice positions of `leaf`'s candidates on `t` whose text
    /// equals `value` — only available for text-indexed leaves (text
    /// attribute is a variable).
    #[must_use]
    pub fn text_positions(&self, leaf: LeafId, t: TraceId, value: &str) -> Option<&[u32]> {
        if !self.text_indexed[leaf.as_usize()] {
            return None;
        }
        Some(
            self.by_text[leaf.as_usize()][t.as_usize()]
                .get(value)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        )
    }

    /// The stored receive in `leaf`'s history whose partner send is
    /// `send`, if any — the O(1) `<>` resolution.
    #[must_use]
    pub fn receive_of(&self, leaf: LeafId, send: EventId) -> Option<&Event> {
        let id = *self.by_partner[leaf.as_usize()].get(&send)?;
        self.find(leaf, id)
    }

    /// The stored event with identifier `id` in `leaf`'s history, found
    /// by binary search over the trace's index-sorted slice.
    #[must_use]
    pub fn find(&self, leaf: LeafId, id: EventId) -> Option<&Event> {
        let slice = self.on_trace(leaf, id.trace());
        let pos = slice.partition_point(|x| x.index() < id.index());
        slice.get(pos).filter(|x| x.id() == id)
    }

    /// Bounded-memory GC: truncates, per `(leaf, trace)` cell, the
    /// longest prefix of events whose clocks are dominated by the
    /// admission guard's low-watermark `watermark` — keeping at least
    /// `keep_recent` newest events per cell as hysteresis — and rebases
    /// the derived indexes. Returns the number of events removed.
    ///
    /// `covered(leaf, trace)` gates the cell: the caller only allows
    /// cells whose representative-subset entry is already populated, so a
    /// removed candidate could at most have re-covered an already-covered
    /// cell. Leaves in `dedup_exempt` are never truncated: the `from`
    /// side of a `~>` constraint uses its *full* history as the
    /// "no occurrence causally between" witness set, so removing entries
    /// there could turn a non-match into a reported match.
    pub fn truncate_dominated<F>(
        &mut self,
        watermark: &[u32],
        keep_recent: usize,
        covered: F,
    ) -> usize
    where
        F: Fn(usize, usize) -> bool,
    {
        let mut removed_total = 0;
        for l in 0..self.per_leaf.len() {
            if self.dedup_exempt[l] {
                continue;
            }
            for t in 0..self.per_leaf[l].len() {
                if !covered(l, t) {
                    continue;
                }
                let hist = &mut self.per_leaf[l][t];
                let ceiling = hist.len().saturating_sub(keep_recent);
                let cut = hist[..ceiling].partition_point(|e| {
                    e.clock()
                        .entries()
                        .iter()
                        .zip(watermark)
                        .all(|(&c, &w)| c <= w)
                });
                if cut == 0 {
                    continue;
                }
                for e in &hist[..cut] {
                    if let Some(p) = e.partner() {
                        self.by_partner[l].remove(&p);
                    }
                }
                hist.drain(..cut);
                if self.text_indexed[l] {
                    // Positions are slice offsets; rebuild them shifted.
                    let map = &mut self.by_text[l][t];
                    map.clear();
                    for (pos, e) in self.per_leaf[l][t].iter().enumerate() {
                        map.entry(e.text_arc()).or_default().push(pos as u32);
                    }
                }
                self.stored -= cut;
                removed_total += cut;
            }
        }
        removed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocep_poet::{EventKind, PoetServer};

    fn t(i: u32) -> TraceId {
        TraceId::new(i)
    }

    fn pattern() -> Pattern {
        Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A -> B;").unwrap()
    }

    #[test]
    fn routes_to_matching_leaf_only() {
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 2, true);
        let mut poet = PoetServer::new(2);
        let a = poet.record(t(0), EventKind::Unary, "a", "");
        let other = poet.record(t(0), EventKind::Unary, "zzz", "");
        assert!(h.observe(&p, &a));
        assert!(!h.observe(&p, &other));
        assert_eq!(h.on_trace(p.leaves()[0].id(), t(0)).len(), 1);
        assert_eq!(h.on_trace(p.leaves()[1].id(), t(0)).len(), 0);
    }

    #[test]
    fn dedup_suppresses_causally_equivalent_repeats() {
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 2, true);
        let mut poet = PoetServer::new(2);
        for _ in 0..5 {
            let a = poet.record(t(0), EventKind::Unary, "a", "");
            h.observe(&p, &a);
        }
        // Only the first of the equivalent block is kept.
        assert_eq!(h.on_trace(p.leaves()[0].id(), t(0)).len(), 1);
        assert_eq!(h.suppressed(), 4);
    }

    #[test]
    fn communication_breaks_the_equivalence_block() {
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 2, true);
        let mut poet = PoetServer::new(2);
        let a1 = poet.record(t(0), EventKind::Unary, "a", "");
        h.observe(&p, &a1);
        let s = poet.record(t(0), EventKind::Send, "msg", "");
        h.observe(&p, &s); // not a leaf match, but a communication event
        let a2 = poet.record(t(0), EventKind::Unary, "a", "");
        h.observe(&p, &a2);
        assert_eq!(h.on_trace(p.leaves()[0].id(), t(0)).len(), 2);
    }

    #[test]
    fn other_leaf_match_on_same_trace_breaks_the_block() {
        // A unary 'b' between two 'a's is causally relevant for same-trace
        // ordering (a1 -> b -> ... vs b -> a2), so a2 must be kept.
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 2, true);
        let mut poet = PoetServer::new(2);
        let a1 = poet.record(t(0), EventKind::Unary, "a", "");
        let b = poet.record(t(0), EventKind::Unary, "b", "");
        let a2 = poet.record(t(0), EventKind::Unary, "a", "");
        h.observe(&p, &a1);
        h.observe(&p, &b);
        h.observe(&p, &a2);
        assert_eq!(h.on_trace(p.leaves()[0].id(), t(0)).len(), 2);
    }

    #[test]
    fn different_text_is_not_deduplicated() {
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 1, true);
        let mut poet = PoetServer::new(1);
        let a1 = poet.record(t(0), EventKind::Unary, "a", "x");
        let a2 = poet.record(t(0), EventKind::Unary, "a", "y");
        h.observe(&p, &a1);
        h.observe(&p, &a2);
        assert_eq!(h.on_trace(p.leaves()[0].id(), t(0)).len(), 2);
    }

    #[test]
    fn dedup_disabled_stores_everything() {
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 1, false);
        let mut poet = PoetServer::new(1);
        for _ in 0..5 {
            let a = poet.record(t(0), EventKind::Unary, "a", "");
            h.observe(&p, &a);
        }
        assert_eq!(h.on_trace(p.leaves()[0].id(), t(0)).len(), 5);
        assert_eq!(h.suppressed(), 0);
    }

    #[test]
    fn histories_stay_sorted_by_index() {
        let p = pattern();
        let mut h = LeafHistory::new(p.n_leaves(), 2, true);
        let mut poet = PoetServer::new(2);
        for i in 0..10 {
            let tr = t(i % 2);
            let s = poet.record(tr, EventKind::Send, "a", format!("{i}"));
            h.observe(&p, &s);
        }
        for tr in 0..2 {
            let evs = h.on_trace(p.leaves()[0].id(), t(tr));
            for w in evs.windows(2) {
                assert!(w[0].index() < w[1].index());
            }
        }
    }
}

#[cfg(test)]
mod block_head_tests {
    use super::*;
    use ocep_poet::{EventKind, PoetServer};

    /// Regression (found by the oracle property suite): a unary event
    /// must not merge into a block headed by a *send* of the same shape —
    /// the send has successors through its receive that the unary lacks.
    #[test]
    fn unary_never_merges_into_a_send_head() {
        let p = Pattern::parse("A := [*, a, *]; B := [*, b, *]; pattern := A || B;").unwrap();
        let mut h = LeafHistory::new_for(&p, 2, true);
        let mut poet = PoetServer::new(2);
        let s = poet.record(TraceId::new(1), EventKind::Send, "b", "");
        poet.record_receive(TraceId::new(0), s.id(), "b", "");
        let u = poet.record(TraceId::new(1), EventKind::Unary, "b", "");
        for e in poet.store().iter_arrival() {
            h.observe(&p, e);
        }
        // Both the send and the unary must be stored on T1.
        let b_leaf = p.leaves()[1].id();
        assert_eq!(h.on_trace(b_leaf, TraceId::new(1)).len(), 2);
        assert_eq!(h.on_trace(b_leaf, TraceId::new(1))[1].id(), u.id());
    }
}
