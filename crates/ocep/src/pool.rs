//! A persistent worker pool for the §VI parallel trace traversal.
//!
//! The paper's parallel matcher partitions the first backtracking
//! level's traces across threads. Spawning OS threads per arrival (the
//! previous `std::thread::scope` implementation) costs more than most
//! searches do, so the pool keeps its threads alive for the monitor's
//! lifetime and feeds them jobs over channels. Each worker *owns* a
//! [`SearchScratch`](crate::search::SearchScratch) for its whole life,
//! so a search dispatched to a warmed-up worker performs no per-arrival
//! allocation for its working buffers.
//!
//! One pool can back any number of monitors — a
//! [`MonitorSet`](crate::MonitorSet) shares a single pool across all of
//! its entries (see [`crate::MonitorSet::ensure_pool`]).
//!
//! Jobs capture `Arc` handles to the pattern and history they read; the
//! dispatching monitor regains unique ownership of its history because
//! every job drops its handles *before* announcing completion.

use crate::search::SearchScratch;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// A job sent to one worker: runs with the worker's long-lived scratch.
pub(crate) type Job = Box<dyn FnOnce(&mut SearchScratch) + Send>;

struct Worker {
    tx: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed set of long-lived search threads (see the module docs).
///
/// Dropping the pool closes every job channel and joins the threads.
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let workers = (0..threads.max(1))
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("ocep-search-{i}"))
                    .spawn(move || {
                        // The scratch outlives every job this worker runs:
                        // buffers are allocated once and reused.
                        let mut scratch = SearchScratch::default();
                        while let Ok(job) = rx.recv() {
                            job(&mut scratch);
                        }
                    })
                    .expect("failed to spawn search worker");
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool { workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Dispatches `job` to worker `w` (targeted, so each worker's scratch
    /// only ever serves one job at a time).
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range or the worker has exited (it only
    /// exits when the pool is dropped).
    pub(crate) fn execute(&self, w: usize, job: Job) {
        self.workers[w]
            .tx
            .send(job)
            .expect("search worker exited early");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing a worker's channel ends its recv loop; join afterwards
        // so queued jobs still run to completion.
        for w in &mut self.workers {
            let (dead, _) = mpsc::channel();
            w.tx = dead;
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                handle.join().expect("search worker panicked");
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_drop_joins_cleanly() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for w in 0..pool.size() {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(
                w,
                Box::new(move |_scratch| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(w).unwrap();
                }),
            );
        }
        drop(tx);
        let done: Vec<usize> = rx.iter().collect();
        assert_eq!(done.len(), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        drop(pool); // must not hang or panic
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn queued_jobs_finish_before_drop_returns() {
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            pool.execute(
                0,
                Box::new(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
