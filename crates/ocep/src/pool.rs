//! A persistent, panic-contained worker pool for the §VI parallel trace
//! traversal.
//!
//! The paper's parallel matcher partitions the first backtracking
//! level's traces across threads. Spawning OS threads per arrival (the
//! previous `std::thread::scope` implementation) costs more than most
//! searches do, so the pool keeps its threads alive for the monitor's
//! lifetime and feeds them jobs over channels. Each worker *owns* a
//! [`SearchScratch`](crate::search::SearchScratch) for its whole life,
//! so a search dispatched to a warmed-up worker performs no per-arrival
//! allocation for its working buffers.
//!
//! One pool can back any number of monitors — a
//! [`MonitorSet`](crate::MonitorSet) shares a single pool across all of
//! its entries (see [`crate::MonitorSet::ensure_pool`]).
//!
//! Jobs capture `Arc` handles to the pattern and history they read; the
//! dispatching monitor regains unique ownership of its history because
//! every job drops its handles *before* announcing completion.
//!
//! # Panic containment
//!
//! A panic inside a job must not take the monitor down. Every job runs
//! under [`catch_unwind`]; a worker that catches one retires itself (its
//! scratch may be mid-mutation, so it is not reused) and the next
//! dispatch to that slot respawns a fresh thread. The dispatcher sees a
//! dead worker in two ways, both recoverable: [`WorkerPool::execute`]
//! returns `false` when even a respawn cannot accept the job, and a job
//! accepted before the panic simply never reports back — the monitor
//! runs the missing partitions inline and counts a `degraded_arrival`
//! (see [`MonitorStats`](crate::MonitorStats)). Shutdown is equally
//! defensive: `Drop` joins best-effort and never panics, so a dead
//! worker cannot turn an unwinding monitor into a double-panic abort.
//! The pool exposes [`caught_panics`](WorkerPool::caught_panics) and
//! [`respawned`](WorkerPool::respawned) counters instead of logging.
//!
//! [`catch_unwind`]: std::panic::catch_unwind

use crate::search::SearchScratch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A job sent to one worker: runs with the worker's long-lived scratch.
pub(crate) type Job = Box<dyn FnOnce(&mut SearchScratch) + Send>;

struct Worker {
    tx: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed set of long-lived search threads (see the module docs).
///
/// Dropping the pool closes every job channel and joins the threads
/// best-effort.
pub struct WorkerPool {
    workers: Vec<Mutex<Worker>>,
    caught_panics: Arc<AtomicU64>,
    respawned: AtomicU64,
    /// Jobs accepted by a worker's channel (per worker slot).
    jobs_per_worker: Vec<AtomicU64>,
    dispatched: AtomicU64,
    completed: Arc<AtomicU64>,
}

/// Point-in-time utilization counters of a [`WorkerPool`].
///
/// Always collected (the pool dispatches once per partition per search,
/// so the relaxed atomics are far off the hot path) and exported through
/// [`crate::Monitor::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted per worker slot, in slot order.
    pub jobs_per_worker: Vec<u64>,
    /// Total jobs handed to workers.
    pub dispatched: u64,
    /// Jobs that ran to completion (including ones that panicked and
    /// were contained).
    pub completed: u64,
    /// Jobs accepted but not yet finished — the queue depth at snapshot
    /// time.
    pub queue_depth: u64,
    /// Job panics caught over the pool's lifetime.
    pub caught_panics: u64,
    /// Workers respawned after a caught panic.
    pub respawned: u64,
}

fn spawn_worker(
    i: usize,
    panics: Arc<AtomicU64>,
    completed: Arc<AtomicU64>,
) -> std::io::Result<Worker> {
    let (tx, rx) = mpsc::channel::<Job>();
    let handle = std::thread::Builder::new()
        .name(format!("ocep-search-{i}"))
        .spawn(move || {
            // The scratch outlives every job this worker runs: buffers
            // are allocated once and reused.
            let mut scratch = SearchScratch::default();
            while let Ok(job) = rx.recv() {
                let panicked = catch_unwind(AssertUnwindSafe(|| job(&mut scratch))).is_err();
                // A contained panic still retires the job.
                completed.fetch_add(1, Ordering::Relaxed);
                if panicked {
                    // The scratch may be mid-mutation; retire this
                    // worker rather than reuse it. Dropping `rx` is the
                    // death notice: the next send to this slot fails and
                    // triggers a respawn.
                    panics.fetch_add(1, Ordering::SeqCst);
                    break;
                }
            }
        })?;
    Ok(Worker {
        tx,
        handle: Some(handle),
    })
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (at least one).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn threads at startup (later
    /// respawns are best-effort and never panic).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let caught_panics = Arc::new(AtomicU64::new(0));
        let completed = Arc::new(AtomicU64::new(0));
        let threads = threads.max(1);
        let workers = (0..threads)
            .map(|i| {
                Mutex::new(
                    spawn_worker(i, Arc::clone(&caught_panics), Arc::clone(&completed))
                        .expect("failed to spawn search worker"),
                )
            })
            .collect();
        WorkerPool {
            workers,
            caught_panics,
            respawned: AtomicU64::new(0),
            jobs_per_worker: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            dispatched: AtomicU64::new(0),
            completed,
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Job panics caught by workers over the pool's lifetime.
    #[must_use]
    pub fn caught_panics(&self) -> u64 {
        self.caught_panics.load(Ordering::SeqCst)
    }

    /// Workers respawned after a caught panic.
    #[must_use]
    pub fn respawned(&self) -> u64 {
        self.respawned.load(Ordering::SeqCst)
    }

    /// A snapshot of the pool's utilization counters.
    ///
    /// `queue_depth` is `dispatched - completed` at snapshot time; a
    /// worker retired by a contained panic drops any jobs still queued
    /// on its channel, so the depth can over-count until the monitor's
    /// inline fallback absorbs the loss.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let dispatched = self.dispatched.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        PoolStats {
            jobs_per_worker: self
                .jobs_per_worker
                .iter()
                .map(|j| j.load(Ordering::Relaxed))
                .collect(),
            dispatched,
            completed,
            queue_depth: dispatched.saturating_sub(completed),
            caught_panics: self.caught_panics(),
            respawned: self.respawned(),
        }
    }

    /// Dispatches `job` to worker `w` (targeted, so each worker's scratch
    /// only ever serves one job at a time).
    ///
    /// Returns `true` when a live (possibly freshly respawned) worker
    /// accepted the job. Returns `false` — never panics — when `w` is out
    /// of range or the slot's worker died and could not be respawned; the
    /// caller is expected to run the job's work inline instead.
    pub(crate) fn execute(&self, w: usize, job: Job) -> bool {
        let Some(slot) = self.workers.get(w) else {
            return false;
        };
        let mut worker = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let job = match worker.tx.send(job) {
            Ok(()) => {
                self.count_accept(w);
                return true;
            }
            // The worker retired after catching a panic; the send hands
            // the job back so the respawned thread can take it.
            Err(mpsc::SendError(job)) => job,
        };
        if let Some(handle) = worker.handle.take() {
            let _ = handle.join();
        }
        match spawn_worker(
            w,
            Arc::clone(&self.caught_panics),
            Arc::clone(&self.completed),
        ) {
            Ok(fresh) => {
                *worker = fresh;
                self.respawned.fetch_add(1, Ordering::SeqCst);
                let accepted = worker.tx.send(job).is_ok();
                if accepted {
                    self.count_accept(w);
                }
                accepted
            }
            Err(_) => false,
        }
    }

    fn count_accept(&self, w: usize) {
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        self.jobs_per_worker[w].fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing a worker's channel ends its recv loop; join afterwards
        // so queued jobs still run to completion. Both steps are
        // best-effort: a worker that died of a caught panic must not
        // turn this Drop into an abort.
        for slot in &self.workers {
            let mut w = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let (dead, _) = mpsc::channel();
            w.tx = dead;
        }
        for slot in &self.workers {
            let mut w = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("caught_panics", &self.caught_panics())
            .field("respawned", &self.respawned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_and_drop_joins_cleanly() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for w in 0..pool.size() {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            assert!(pool.execute(
                w,
                Box::new(move |_scratch| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    tx.send(w).unwrap();
                }),
            ));
        }
        drop(tx);
        let done: Vec<usize> = rx.iter().collect();
        assert_eq!(done.len(), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        drop(pool); // must not hang or panic
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn out_of_range_worker_is_refused_not_panicked() {
        let pool = WorkerPool::new(1);
        assert!(!pool.execute(5, Box::new(|_| {})));
    }

    #[test]
    fn queued_jobs_finish_before_drop_returns() {
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(
                0,
                Box::new(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }),
            ));
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicking_job_is_contained_and_worker_respawns() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel::<&str>();
        assert!(pool.execute(
            0,
            Box::new(move |_| {
                // Hold the sender hostage to the unwind: rx sees a
                // disconnect instead of a message.
                let _keep = tx;
                panic!("deliberate test panic");
            }),
        ));
        // The panicking job never reports; its channel just closes. The
        // counter bumps a moment later (after the unwind is caught).
        assert!(rx.recv().is_err());
        while pool.caught_panics() == 0 {
            std::thread::yield_now();
        }
        // The next dispatch respawns the worker and runs normally.
        let (tx2, rx2) = mpsc::channel::<&str>();
        assert!(pool.execute(
            0,
            Box::new(move |_| {
                tx2.send("alive").unwrap();
            }),
        ));
        assert_eq!(rx2.recv().unwrap(), "alive");
        assert_eq!(pool.respawned(), 1);
        drop(pool); // best-effort shutdown after a death: no abort
    }

    #[test]
    fn pool_stats_track_dispatch_and_completion() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..6 {
            let tx = tx.clone();
            assert!(pool.execute(
                i % 2,
                Box::new(move |_| {
                    tx.send(()).unwrap();
                }),
            ));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 6);
        // The completion counter bumps after the job body returns; spin
        // briefly for the last increment.
        while pool.stats().completed < 6 {
            std::thread::yield_now();
        }
        let s = pool.stats();
        assert_eq!(s.dispatched, 6);
        assert_eq!(s.jobs_per_worker, vec![3, 3]);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.caught_panics, 0);
        assert_eq!(s.respawned, 0);
    }

    #[test]
    fn drop_after_worker_death_does_not_panic() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel::<()>();
        assert!(pool.execute(
            1,
            Box::new(move |_| {
                let _keep = tx;
                panic!("die");
            }),
        ));
        assert!(rx.recv().is_err()); // worker 1 is now dead
        drop(pool); // must join worker 0 and skip the corpse quietly
    }
}
