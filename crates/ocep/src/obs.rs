//! Observability: per-stage pipeline timing, search introspection, and
//! metric export.
//!
//! The paper's efficiency argument (§V–§VI) rests on GP/LS pruning,
//! conflict-directed backjumping, and O(1) dedup keeping online matching
//! cheap. This module makes those claims *observable*: a std-only metrics
//! registry threaded through the monitor pipeline that answers "where did
//! this arrival's time go" and "why was this search cheap or expensive".
//!
//! # Design
//!
//! * [`ObsLevel`] selects the cost/insight trade-off per monitor
//!   ([`crate::MonitorConfig::obs`]). `Off` is the default and is
//!   zero-cost: every instrumentation site is a branch on an enum (or an
//!   `Option` that is `None`), and no timer is ever taken.
//! * [`Histogram`] is a fixed-bucket log2 latency histogram: lock-free to
//!   record into (plain `u64`s, one owner), mergeable across workers, and
//!   cheap to serialize.
//! * [`Metrics`] is the live per-monitor registry: one histogram per
//!   pipeline [`Stage`], an end-to-end arrival histogram, the accumulated
//!   [`SearchObs`] introspection, and a bounded ring of recent
//!   [`ArrivalRecord`]s for post-mortem debugging.
//! * [`MetricsSnapshot`] is the export model: a flat list of metric
//!   families rendered to Prometheus text ([`MetricsSnapshot::to_prometheus`])
//!   or to JSON by `ocep-bench`'s std-only serializer. Snapshots from
//!   several monitors [`MetricsSnapshot::absorb`] into one aggregate.
//!
//! Pipeline stage taxonomy (per arrival): guard admission → route/dedup →
//! backtracking search (which internally times domain construction +
//! Fig-4 restriction — the two are one fused loop in [`crate::search`]) →
//! subset merge. See `docs/OBSERVABILITY.md` for the full metric catalog.

use std::fmt::Write as _;

/// How much observability a monitor collects.
///
/// The level is part of [`crate::MonitorConfig`] and must never change
/// matching behaviour — the metrics-transparency suite pins this by
/// running every conformance case at `Off` and `Full` and demanding
/// bit-identical verdicts, subsets, and (metrics-stripped) checkpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ObsLevel {
    /// No collection at all. Instrumentation sites reduce to a branch on
    /// this enum; no timers are taken and no allocation happens.
    #[default]
    Off,
    /// Counters and search introspection (prune hits, backjump depths,
    /// domain widths, conflict sizes) but no wall-clock timers.
    Counters,
    /// Everything: counters, introspection, per-stage and per-arrival
    /// latency histograms, and the recent-arrival ring buffer. Timers
    /// are sampled on one in sixteen arrivals (deterministically, from
    /// the exact arrival counter) so reading the clock at every stage
    /// boundary doesn't dominate the stages it measures.
    Full,
}

impl ObsLevel {
    /// True when any collection is on.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != ObsLevel::Off
    }

    /// True when wall-clock timers are taken.
    #[must_use]
    pub fn timing(self) -> bool {
        self == ObsLevel::Full
    }

    /// Parses a CLI-style level name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<ObsLevel> {
        match name {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The CLI-style level name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }

    /// Stable numeric code used by the checkpoint format.
    #[must_use]
    pub(crate) fn code(self) -> u8 {
        match self {
            ObsLevel::Off => 0,
            ObsLevel::Counters => 1,
            ObsLevel::Full => 2,
        }
    }

    /// Inverse of [`ObsLevel::code`].
    #[must_use]
    pub(crate) fn from_code(code: u8) -> Option<ObsLevel> {
        match code {
            0 => Some(ObsLevel::Off),
            1 => Some(ObsLevel::Counters),
            2 => Some(ObsLevel::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for ObsLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket 0 holds exact zeros; bucket `i` (for `1 <= i < BUCKETS-1`)
/// holds values in `[2^(i-1), 2^i)`; the top bucket saturates, holding
/// everything `>= 2^(BUCKETS-2)`. With 40 buckets the top edge is
/// `2^38` ≈ 275 s in nanoseconds — any sample beyond that is an outage,
/// not a latency.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Designed for latencies in nanoseconds but unit-agnostic (the search
/// introspection uses it for domain widths and backjump depths too).
/// Recording is branch-free apart from the bucket-index computation;
/// merging is element-wise addition, hence associative and commutative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index for a value.
    #[must_use]
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower edge of bucket `i`.
    #[must_use]
    pub fn lower_edge(i: usize) -> u64 {
        if i <= 1 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Exclusive upper edge of bucket `i`; `u64::MAX` for the saturated
    /// top bucket.
    #[must_use]
    pub fn upper_edge(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (element-wise; the merge
    /// is associative and commutative, so worker-local histograms can be
    /// folded in any order).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts (empty slice until the first sample).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket `[lower, upper)` containing the `q`-quantile sample
    /// (`0.0 <= q <= 1.0`), or `None` when empty. The true quantile is
    /// guaranteed to lie within the returned edges; this is the precision
    /// the log2 bucketing affords (a factor-of-two band).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((Self::lower_edge(i), Self::upper_edge(i)));
            }
        }
        None
    }

    /// Mean of the recorded samples, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Rebuilds a histogram from serialized parts (checkpoint restore).
    pub(crate) fn from_raw(counts: Vec<u64>, sum: u64, max: u64) -> Histogram {
        let count = counts.iter().sum();
        Histogram {
            counts,
            count,
            sum,
            max,
        }
    }
}

/// A timed pipeline stage. One latency histogram is kept per stage.
///
/// `DomainFig4` is nested inside `Search` wall-clock-wise: domain
/// construction and the Fig-4 GP/LS restriction are a single fused loop
/// in the backtracking search, so they are timed together and *inside*
/// the search stage (its histogram is not disjoint from `Search`'s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Causal admission guard (`guard.admit` / flush) — §V-B category
    /// checks, dedup against the admitted set, reorder buffering.
    GuardAdmit,
    /// Leaf-history routing and §VI O(1) dedup (`LeafHistory::observe`).
    RouteDedup,
    /// Domain construction + Fig-4 GP/LS restriction (one fused loop,
    /// timed inside the search).
    DomainFig4,
    /// The terminating-event-seeded backtracking search (Algs 1–3).
    Search,
    /// Representative-subset maintenance (§IV-B) and match reporting.
    SubsetMerge,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 5;
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::GuardAdmit,
        Stage::RouteDedup,
        Stage::DomainFig4,
        Stage::Search,
        Stage::SubsetMerge,
    ];

    /// Stable label used in exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::GuardAdmit => "guard_admit",
            Stage::RouteDedup => "route_dedup",
            Stage::DomainFig4 => "domain_fig4",
            Stage::Search => "search",
            Stage::SubsetMerge => "subset_merge",
        }
    }

    #[must_use]
    fn index(self) -> usize {
        match self {
            Stage::GuardAdmit => 0,
            Stage::RouteDedup => 1,
            Stage::DomainFig4 => 2,
            Stage::Search => 3,
            Stage::SubsetMerge => 4,
        }
    }
}

/// Deepest evaluation-order level with its own domain-width histogram;
/// deeper levels share the last slot (labelled `"15+"`).
pub const MAX_TRACKED_LEVELS: usize = 16;

/// Search introspection accumulated across searches (and merged across
/// the worker pool's partition searches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchObs {
    /// Live (post-restriction, non-empty) domain widths per evaluation
    /// level; levels `>= MAX_TRACKED_LEVELS-1` share the last histogram.
    pub domain_width: Vec<Histogram>,
    /// Distribution of the levels conflict-directed backjumps landed on.
    pub backjump_depth: Histogram,
    /// Popcount of the conflict set returned by exhausted subtrees.
    pub conflict_size: Histogram,
    /// Domains emptied by a single GP/LS restriction rule (Fig-4 prune).
    pub prune_gp_ls: u64,
    /// Domains emptied by intersecting individually non-empty
    /// restrictions.
    pub prune_intersect: u64,
    /// Wall-clock nanoseconds spent in domain construction + Fig-4
    /// restriction (only accumulated at [`ObsLevel::Full`]). A 1-in-64
    /// sampled, scaled estimate: timing every computation would make the
    /// timer the dominant cost of the loop it measures.
    pub domain_ns: u64,
}

impl SearchObs {
    /// Records a live domain's width at an evaluation level.
    pub fn record_domain_width(&mut self, level: usize, width: u64) {
        let slot = level.min(MAX_TRACKED_LEVELS - 1);
        if self.domain_width.len() <= slot {
            self.domain_width.resize(slot + 1, Histogram::new());
        }
        self.domain_width[slot].record(width);
    }

    /// Folds another search's introspection into this one (order-free).
    pub fn merge(&mut self, other: &SearchObs) {
        if self.domain_width.len() < other.domain_width.len() {
            self.domain_width
                .resize(other.domain_width.len(), Histogram::new());
        }
        for (a, b) in self.domain_width.iter_mut().zip(other.domain_width.iter()) {
            a.merge(b);
        }
        self.backjump_depth.merge(&other.backjump_depth);
        self.conflict_size.merge(&other.conflict_size);
        self.prune_gp_ls += other.prune_gp_ls;
        self.prune_intersect += other.prune_intersect;
        self.domain_ns += other.domain_ns;
    }
}

/// One arrival's post-mortem record, kept in a bounded ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalRecord {
    /// 1-based arrival sequence number (the monitor's `events` counter
    /// at the time of this arrival).
    pub seq: u64,
    /// Compact event rendering, `"text@trace:index"`.
    pub event: String,
    /// Whether any leaf history stored the event.
    pub stored: bool,
    /// Terminating-event searches this arrival triggered.
    pub searches: u64,
    /// Matches found (pre-dedup) by those searches.
    pub matches_found: u64,
    /// Matches reported to the caller.
    pub matches_reported: u64,
    /// Backtracking nodes explored.
    pub nodes: u64,
    /// End-to-end wall-clock nanoseconds for the arrival. 0 below
    /// [`ObsLevel::Full`], and 0 at `Full` for arrivals outside the
    /// 1-in-16 timing sample.
    pub total_ns: u64,
}

/// Capacity of the recent-arrival ring buffer.
pub const RECENT_CAP: usize = 128;

/// Fixed-capacity overwriting ring of [`ArrivalRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct RecentRing {
    buf: Vec<ArrivalRecord>,
    next: usize,
}

impl RecentRing {
    /// Appends a record, evicting the oldest once full.
    pub fn push(&mut self, rec: ArrivalRecord) {
        if self.buf.len() < RECENT_CAP {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
        }
        self.next = (self.next + 1) % RECENT_CAP;
    }

    /// Appends a record whose `event` description is rendered lazily:
    /// the text is written into the evicted slot's string buffer, so a
    /// steady-state push allocates nothing. `rec.event` must arrive
    /// empty. This keeps the always-on (every arrival, any enabled
    /// level) ring cost off the allocator, which the worker pool is
    /// already contending for.
    pub fn push_with(&mut self, mut rec: ArrivalRecord, event: std::fmt::Arguments<'_>) {
        use std::fmt::Write as _;
        debug_assert!(rec.event.is_empty());
        if self.buf.len() < RECENT_CAP {
            let _ = write!(rec.event, "{event}");
            self.buf.push(rec);
        } else {
            let slot = &mut self.buf[self.next];
            rec.event = std::mem::take(&mut slot.event);
            rec.event.clear();
            let _ = write!(rec.event, "{event}");
            *slot = rec;
        }
        self.next = (self.next + 1) % RECENT_CAP;
    }

    /// Number of records currently held (≤ [`RECENT_CAP`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no record has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records in arrival order, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<ArrivalRecord> {
        if self.buf.len() < RECENT_CAP {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(RECENT_CAP);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

impl PartialEq for RecentRing {
    fn eq(&self, other: &RecentRing) -> bool {
        // Rings are equal when they hold the same records in the same
        // arrival order, regardless of internal rotation (a restored
        // ring starts unrotated).
        self.records() == other.records()
    }
}

impl Eq for RecentRing {}

/// The live per-monitor metrics registry.
///
/// Owned by a [`crate::Monitor`] (boxed, only when
/// [`crate::MonitorConfig::obs`] is not `Off`) and updated single-threaded
/// from the arrival path; worker-side introspection travels back through
/// the existing search-result channel and is merged here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    pub(crate) level: ObsLevel,
    pub(crate) stage_ns: [Histogram; Stage::COUNT],
    pub(crate) arrival_ns: Histogram,
    pub(crate) search: SearchObs,
    pub(crate) recent: RecentRing,
}

impl Metrics {
    /// Creates an empty registry collecting at `level`.
    #[must_use]
    pub fn new(level: ObsLevel) -> Metrics {
        Metrics {
            level,
            ..Metrics::default()
        }
    }

    /// The collection level.
    #[must_use]
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Records a stage duration in nanoseconds.
    pub fn record_stage(&mut self, stage: Stage, ns: u64) {
        self.stage_ns[stage.index()].record(ns);
    }

    /// Records an end-to-end arrival duration in nanoseconds.
    pub fn record_arrival(&mut self, ns: u64) {
        self.arrival_ns.record(ns);
    }

    /// Folds a finished search's introspection into the registry.
    pub fn absorb_search(&mut self, obs: &SearchObs) {
        self.search.merge(obs);
    }

    /// Folds the always-on search tallies into the registry. These ride
    /// plain `u64` fields on the search's stats (not the boxed
    /// introspection) so the recursion's flush points compile to
    /// branch-free adds; the nested domain stage is timed from the
    /// accumulated (sampled) `domain_ns`.
    pub fn absorb_search_counters(
        &mut self,
        prune_gp_ls: u64,
        prune_intersect: u64,
        domain_ns: u64,
    ) {
        self.search.prune_gp_ls += prune_gp_ls;
        self.search.prune_intersect += prune_intersect;
        self.search.domain_ns += domain_ns;
        if domain_ns > 0 {
            self.stage_ns[Stage::DomainFig4.index()].record(domain_ns);
        }
    }

    /// Appends an arrival record to the post-mortem ring.
    pub fn push_record(&mut self, rec: ArrivalRecord) {
        self.recent.push(rec);
    }

    /// Appends an arrival record, rendering the event description into
    /// the ring's reused buffer (see [`RecentRing::push_with`]).
    pub fn push_record_with(&mut self, rec: ArrivalRecord, event: std::fmt::Arguments<'_>) {
        self.recent.push_with(rec, event);
    }

    /// The latency histogram of one stage.
    #[must_use]
    pub fn stage_hist(&self, stage: Stage) -> &Histogram {
        &self.stage_ns[stage.index()]
    }

    /// The end-to-end arrival latency histogram.
    #[must_use]
    pub fn arrival_hist(&self) -> &Histogram {
        &self.arrival_ns
    }

    /// The accumulated search introspection.
    #[must_use]
    pub fn search_obs(&self) -> &SearchObs {
        &self.search
    }

    /// The recent-arrival ring.
    #[must_use]
    pub fn recent(&self) -> &RecentRing {
        &self.recent
    }
}

/// Kind of a metric family, mirroring the Prometheus type taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A single exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter or gauge reading.
    Int(u64),
    /// Full bucketed distribution.
    Hist(Histogram),
}

/// One labelled sample of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Label pairs, e.g. `[("stage", "search")]`; empty for unlabelled
    /// metrics.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A named metric family with one or more labelled samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (Prometheus conventions: counters end in `_total`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Samples, one per distinct label set.
    pub samples: Vec<MetricSample>,
}

/// An exportable point-in-time view of one or more monitors' metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Metric families in catalog order.
    pub families: Vec<MetricFamily>,
    /// Recent arrivals (post-mortem ring contents), oldest first. Not
    /// part of the Prometheus export; included in JSON and `ocep stats`.
    pub recent: Vec<ArrivalRecord>,
}

impl MetricsSnapshot {
    fn family_mut(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut MetricFamily {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(MetricFamily {
            name: name.to_owned(),
            help: help.to_owned(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn push_sample(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: Vec<(String, String)>,
        value: MetricValue,
    ) {
        let fam = self.family_mut(name, help, kind);
        if let Some(s) = fam.samples.iter_mut().find(|s| s.labels == labels) {
            merge_value(&mut s.value, &value);
        } else {
            fam.samples.push(MetricSample { labels, value });
        }
    }

    /// Adds an unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, v: u64) {
        self.push_sample(
            name,
            help,
            MetricKind::Counter,
            Vec::new(),
            MetricValue::Int(v),
        );
    }

    /// Adds a labelled counter sample.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.push_sample(
            name,
            help,
            MetricKind::Counter,
            own_labels(labels),
            MetricValue::Int(v),
        );
    }

    /// Adds an unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, v: u64) {
        self.push_sample(
            name,
            help,
            MetricKind::Gauge,
            Vec::new(),
            MetricValue::Int(v),
        );
    }

    /// Adds a labelled gauge sample.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], v: u64) {
        self.push_sample(
            name,
            help,
            MetricKind::Gauge,
            own_labels(labels),
            MetricValue::Int(v),
        );
    }

    /// Adds an unlabelled histogram.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.push_sample(
            name,
            help,
            MetricKind::Histogram,
            Vec::new(),
            MetricValue::Hist(h.clone()),
        );
    }

    /// Adds a labelled histogram sample.
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &Histogram,
    ) {
        self.push_sample(
            name,
            help,
            MetricKind::Histogram,
            own_labels(labels),
            MetricValue::Hist(h.clone()),
        );
    }

    /// Records the full admission-guard counter catalog (the
    /// `ocep_ingest_*` families) from one [`IngestStats`]. Shared by
    /// [`crate::Monitor::metrics`] (per-monitor guards) and
    /// [`crate::MonitorSet::metrics`] (the set-level guard in front of
    /// [`crate::MonitorSet::observe_raw`]), so both export identical
    /// families and a scrape cannot tell where the guard sits.
    pub fn record_ingest(&mut self, g: &crate::ingest::IngestStats) {
        let ing = "ocep_ingest_events_total";
        let ing_help = "Admission-guard event outcomes.";
        self.counter_with(ing, ing_help, &[("outcome", "admitted")], g.admitted);
        self.counter_with(
            ing,
            ing_help,
            &[("outcome", "duplicate")],
            g.duplicates_dropped,
        );
        self.counter_with(ing, ing_help, &[("outcome", "buffered")], g.buffered);
        self.counter_with(
            ing,
            ing_help,
            &[("outcome", "reordered")],
            g.reordered_delivered,
        );
        self.counter_with(
            ing,
            ing_help,
            &[("outcome", "degraded_delivered")],
            g.degraded_delivered,
        );
        let q = "ocep_ingest_quarantined_total";
        let q_help = "Events quarantined by the admission guard, by reason.";
        self.counter_with(
            q,
            q_help,
            &[("reason", "trace_range")],
            g.quarantined_trace_range,
        );
        self.counter_with(
            q,
            q_help,
            &[("reason", "clock_width")],
            g.quarantined_clock_width,
        );
        self.counter_with(
            q,
            q_help,
            &[("reason", "non_monotone")],
            g.quarantined_non_monotone,
        );
        let ov = "ocep_ingest_overflow_total";
        let ov_help = "Reorder-buffer overflow actions, by policy.";
        self.counter_with(ov, ov_help, &[("policy", "rejected")], g.overflow_rejected);
        self.counter_with(ov, ov_help, &[("policy", "dropped")], g.overflow_dropped);
        self.counter(
            "ocep_ingest_degraded_flushes_total",
            "Flushes that abandoned causal order.",
            g.degraded_flushes,
        );
        self.gauge(
            "ocep_ingest_buffer_peak",
            "High-water mark of the reorder buffer.",
            g.buffered_peak,
        );
    }

    /// Merges another snapshot into this one: same-name families unify,
    /// same-label samples combine (counters/gauges add, histograms
    /// merge). Used to aggregate a [`crate::MonitorSet`] and to total the
    /// per-case snapshots of a fuzz run.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for fam in &other.families {
            for s in &fam.samples {
                self.push_sample(
                    &fam.name,
                    &fam.help,
                    fam.kind,
                    s.labels.clone(),
                    s.value.clone(),
                );
            }
        }
        self.recent.extend(other.recent.iter().cloned());
        if self.recent.len() > RECENT_CAP {
            let drop = self.recent.len() - RECENT_CAP;
            self.recent.drain(..drop);
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms expand to cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count`; every family gets exactly one `# HELP` and
    /// `# TYPE` line. Empty histogram buckets are elided (the cumulative
    /// counts stay correct); `le` edges are the log2 bucket boundaries.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.name());
            for s in &fam.samples {
                match &s.value {
                    MetricValue::Int(v) => {
                        let _ = writeln!(out, "{}{} {}", fam.name, fmt_labels(&s.labels, None), v);
                    }
                    MetricValue::Hist(h) => {
                        let mut cum = 0u64;
                        for (i, c) in h.bucket_counts().iter().enumerate() {
                            cum += c;
                            if *c == 0 && i != HIST_BUCKETS - 1 {
                                continue;
                            }
                            let le = if i >= HIST_BUCKETS - 1 {
                                "+Inf".to_owned()
                            } else {
                                Histogram::upper_edge(i).to_string()
                            };
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                fam.name,
                                fmt_labels(&s.labels, Some(&le)),
                                cum
                            );
                        }
                        if h.bucket_counts().is_empty() {
                            let _ = writeln!(
                                out,
                                "{}_bucket{} 0",
                                fam.name,
                                fmt_labels(&s.labels, Some("+Inf"))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            fam.name,
                            fmt_labels(&s.labels, None),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            fam.name,
                            fmt_labels(&s.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders a human-readable snapshot for `ocep stats`.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            let nonzero = fam.samples.iter().any(|s| match &s.value {
                MetricValue::Int(v) => *v != 0,
                MetricValue::Hist(h) => !h.is_empty(),
            });
            if !nonzero {
                continue;
            }
            let _ = writeln!(out, "{}  ({})", fam.name, fam.help);
            for s in &fam.samples {
                let label = if s.labels.is_empty() {
                    String::new()
                } else {
                    format!("{} ", fmt_labels(&s.labels, None))
                };
                match &s.value {
                    MetricValue::Int(v) => {
                        let _ = writeln!(out, "  {label}{v}");
                    }
                    MetricValue::Hist(h) if h.is_empty() => {}
                    MetricValue::Hist(h) => {
                        let p50 = h.quantile(0.5).map_or(0, |(_, hi)| hi);
                        let p99 = h.quantile(0.99).map_or(0, |(_, hi)| hi);
                        let _ = writeln!(
                            out,
                            "  {label}count={} sum={} mean={:.1} p50<{} p99<{} max={}",
                            h.count(),
                            h.sum(),
                            h.mean().unwrap_or(0.0),
                            p50,
                            p99,
                            h.max()
                        );
                    }
                }
            }
        }
        if !self.recent.is_empty() {
            let _ = writeln!(out, "recent arrivals (oldest first, cap {RECENT_CAP}):");
            for r in &self.recent {
                let _ = writeln!(
                    out,
                    "  #{} {} stored={} searches={} found={} reported={} nodes={} total_ns={}",
                    r.seq,
                    r.event,
                    r.stored,
                    r.searches,
                    r.matches_found,
                    r.matches_reported,
                    r.nodes,
                    r.total_ns
                );
            }
        }
        out
    }

    /// Looks up an unlabelled counter/gauge value by family name (test
    /// and cross-check helper). Labelled samples are summed.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<u64> {
        let fam = self.families.iter().find(|f| f.name == name)?;
        let mut total = 0u64;
        for s in &fam.samples {
            match &s.value {
                MetricValue::Int(v) => total += v,
                MetricValue::Hist(_) => return None,
            }
        }
        Some(total)
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

fn merge_value(into: &mut MetricValue, from: &MetricValue) {
    match (into, from) {
        (MetricValue::Int(a), MetricValue::Int(b)) => *a += b,
        (MetricValue::Hist(a), MetricValue::Hist(b)) => a.merge(b),
        // Kind mismatch cannot happen for catalog-built snapshots; keep
        // the existing value rather than panicking on foreign input.
        _ => {}
    }
}

fn fmt_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn hist_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn bucket_edges_are_monotone_and_cover_u64() {
        // Satellite: bucket monotonicity. Edges must be non-decreasing,
        // every value must land in a bucket whose [lower, upper) range
        // contains it, and bucket_index must be monotone in the value.
        let mut prev_edge = 0u64;
        for i in 0..HIST_BUCKETS {
            let lo = Histogram::lower_edge(i);
            let hi = Histogram::upper_edge(i);
            assert!(lo <= hi, "bucket {i}: lower {lo} > upper {hi}");
            assert!(lo >= prev_edge, "bucket {i}: edges not monotone");
            prev_edge = lo;
        }
        let mut prev_idx = 0usize;
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(i >= prev_idx, "bucket_index not monotone at {v}");
            prev_idx = i;
            assert!(
                Histogram::lower_edge(i) <= v,
                "{v} below its bucket {i} lower edge"
            );
            if i < HIST_BUCKETS - 1 {
                assert!(
                    v < Histogram::upper_edge(i),
                    "{v} at/above bucket {i} upper edge"
                );
            }
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = hist_of(&[0, 1, 5, 1000]);
        let b = hist_of(&[2, 2, 700_000]);
        let c = hist_of(&[u64::MAX, 3]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
        assert_eq!(ab_c.count(), 9);

        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, a);
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn quantile_estimates_are_bounded_by_bucket_edges() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i * 37 % 5000).collect();
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let (lo, hi) = h.quantile(q).expect("non-empty");
            assert!(lo <= hi);
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            assert!(
                lo <= truth && (truth < hi || hi == u64::MAX),
                "q={q}: true quantile {truth} outside bucket [{lo}, {hi})"
            );
        }
        assert!(Histogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = Histogram::new();
        let top_lo = 1u64 << (HIST_BUCKETS - 2);
        h.record(top_lo);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum saturates instead of overflowing
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts()[HIST_BUCKETS - 1], 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
        let (lo, hi) = h.quantile(0.5).expect("non-empty");
        assert_eq!(lo, top_lo / 2 * 2); // lower edge of the top bucket
        assert_eq!(hi, u64::MAX);
    }

    #[test]
    fn search_obs_clamps_levels_and_merges() {
        let mut a = SearchObs::default();
        a.record_domain_width(0, 5);
        a.record_domain_width(MAX_TRACKED_LEVELS + 7, 3);
        assert_eq!(a.domain_width.len(), MAX_TRACKED_LEVELS);
        assert_eq!(a.domain_width[MAX_TRACKED_LEVELS - 1].count(), 1);

        let mut b = SearchObs::default();
        b.record_domain_width(2, 9);
        b.prune_gp_ls = 4;
        b.prune_intersect = 1;
        b.backjump_depth.record(3);
        a.merge(&b);
        assert_eq!(a.domain_width[2].count(), 1);
        assert_eq!(a.prune_gp_ls, 4);
        assert_eq!(a.prune_intersect, 1);
        assert_eq!(a.backjump_depth.count(), 1);
    }

    #[test]
    fn recent_ring_overwrites_oldest_and_compares_by_content() {
        let rec = |seq: u64| ArrivalRecord {
            seq,
            event: format!("e{seq}"),
            stored: true,
            searches: 0,
            matches_found: 0,
            matches_reported: 0,
            nodes: 0,
            total_ns: 0,
        };
        let mut ring = RecentRing::default();
        for i in 0..(RECENT_CAP as u64 + 10) {
            ring.push(rec(i));
        }
        let records = ring.records();
        assert_eq!(records.len(), RECENT_CAP);
        assert_eq!(records[0].seq, 10, "oldest surviving record");
        assert_eq!(records[RECENT_CAP - 1].seq, RECENT_CAP as u64 + 9);

        // A rebuilt (unrotated) ring with the same records compares equal.
        let mut rebuilt = RecentRing::default();
        for r in records {
            rebuilt.push(r);
        }
        assert_eq!(ring, rebuilt);
    }

    #[test]
    fn snapshot_absorb_sums_and_merges() {
        let mut a = MetricsSnapshot::default();
        a.counter("ocep_events_total", "events", 3);
        a.counter_with("ocep_prunes_total", "prunes", &[("kind", "gp_ls")], 2);
        a.histogram("ocep_arrival_ns", "arrival latency", &hist_of(&[10, 20]));

        let mut b = MetricsSnapshot::default();
        b.counter("ocep_events_total", "events", 4);
        b.counter_with("ocep_prunes_total", "prunes", &[("kind", "intersect")], 5);
        b.histogram("ocep_arrival_ns", "arrival latency", &hist_of(&[30]));

        a.absorb(&b);
        assert_eq!(a.value("ocep_events_total"), Some(7));
        assert_eq!(
            a.value("ocep_prunes_total"),
            Some(7),
            "labelled samples sum"
        );
        let fam = a
            .families
            .iter()
            .find(|f| f.name == "ocep_arrival_ns")
            .expect("family");
        match &fam.samples[0].value {
            MetricValue::Hist(h) => assert_eq!(h.count(), 3),
            MetricValue::Int(_) => panic!("histogram family"),
        }
    }

    #[test]
    fn prometheus_export_is_well_formed() {
        let mut s = MetricsSnapshot::default();
        s.counter("ocep_events_total", "Events observed.", 42);
        s.gauge_with(
            "ocep_pool_jobs_total",
            "Jobs per worker.",
            &[("worker", "0")],
            7,
        );
        s.histogram(
            "ocep_arrival_ns",
            "Arrival latency (ns).",
            &hist_of(&[1, 3, 3000]),
        );
        s.histogram("ocep_empty_ns", "Never recorded.", &Histogram::new());
        let text = s.to_prometheus();

        // One HELP/TYPE pair per family; sample lines are `name{labels} value`.
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut last_cum: HashMap<String, u64> = HashMap::new();
        for line in text.lines() {
            assert!(!line.is_empty());
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line: {line}"
                );
                assert!(seen.insert(rest.to_owned()), "duplicate meta line: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let value: f64 = value.parse().expect("numeric value");
            assert!(value >= 0.0);
            assert!(seen.insert(series.to_owned()), "duplicate series: {series}");
            // Cumulative bucket counts must be non-decreasing per series.
            if let Some(base) = series
                .split('{')
                .next()
                .and_then(|n| n.strip_suffix("_bucket"))
            {
                let prev = last_cum.entry(base.to_owned()).or_insert(0);
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                let v = value as u64;
                assert!(v >= *prev, "bucket counts must be cumulative: {series}");
                *prev = v;
            }
        }
        assert!(text.contains("# TYPE ocep_events_total counter"));
        assert!(text.contains("ocep_events_total 42"));
        assert!(text.contains("ocep_pool_jobs_total{worker=\"0\"} 7"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("ocep_arrival_ns_count 3"));
        assert!(text.contains("ocep_empty_ns_count 0"));
    }

    #[test]
    fn obs_level_names_round_trip() {
        for lvl in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::from_name(lvl.name()), Some(lvl));
            assert_eq!(ObsLevel::from_code(lvl.code()), Some(lvl));
        }
        assert_eq!(ObsLevel::from_name("verbose"), None);
        assert_eq!(ObsLevel::from_code(9), None);
        assert!(!ObsLevel::Off.enabled());
        assert!(ObsLevel::Counters.enabled() && !ObsLevel::Counters.timing());
        assert!(ObsLevel::Full.timing());
    }
}
