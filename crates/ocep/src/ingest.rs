//! The causal admission guard: a validating reorder stage in front of
//! [`Monitor::observe`](crate::Monitor::observe).
//!
//! Every correctness argument of §IV assumes the monitor consumes a
//! *clean linearization* of the causal order. A real transport delivers
//! duplicated, reordered, late, and occasionally corrupt events; the
//! guard uses the Fidge/Mattern timestamps already carried by every
//! [`Event`] to re-establish a causal delivery order at the ingestion
//! boundary instead of trusting the producer:
//!
//! * **Validation** — events naming an out-of-range trace, carrying a
//!   clock of the wrong dimension, or violating the Fidge convention
//!   (own-trace clock entry ≠ index, or index 0) are *quarantined* into a
//!   structured [`IngestFault`] stream with per-category counters. They
//!   never reach the history.
//! * **Duplicate drop** — an event whose index is already admitted on its
//!   trace is dropped in O(1); a duplicate of a still-buffered event is
//!   dropped by id lookup.
//! * **Causal buffering** — a causally premature event (a program-order
//!   gap on its own trace, or a receive whose partner send has not been
//!   admitted) is buffered until its predecessors arrive. Admission is
//!   O(1) per in-order event: because the guard only ever admits an event
//!   whose full causal past is admitted, deliverability reduces to two
//!   constant-time checks — *program order* (`index == admitted + 1`) and
//!   *direct dependency* (the partner send, if any, is admitted) — the
//!   Birman–Schiper–Stephenson observation specialized to one-partner
//!   messages.
//! * **Bounded memory** — the buffer holds at most
//!   [`GuardConfig::capacity`] events; on overflow a configurable
//!   [`OverflowPolicy`] applies. No input can make the guard panic or
//!   grow without bound.

use ocep_poet::Event;
use ocep_vclock::EventId;
use std::collections::HashSet;

/// What to do when a premature event arrives and the reorder buffer is
/// already at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Drop the incoming event (count it, record a fault). The safest
    /// default: admitted history stays causally consistent.
    #[default]
    Reject,
    /// Evict the oldest buffered event to make room (count it, record a
    /// fault). Prefers recent context over old gaps.
    DropOldest,
    /// Abandon causal order: deliver everything buffered (plus the
    /// incoming event) sorted by `(trace, index)` and continue in
    /// degraded mode. Late gap-fillers arriving afterwards are dropped
    /// as stale duplicates.
    FlushDegraded,
}

impl std::fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OverflowPolicy::Reject => "reject",
            OverflowPolicy::DropOldest => "drop-oldest",
            OverflowPolicy::FlushDegraded => "flush-degraded",
        })
    }
}

impl OverflowPolicy {
    /// Parses the [`Display`](std::fmt::Display) form (for CLI flags and
    /// checkpoint decoding).
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "reject" => OverflowPolicy::Reject,
            "drop-oldest" => OverflowPolicy::DropOldest,
            "flush-degraded" => OverflowPolicy::FlushDegraded,
            _ => return None,
        })
    }
}

/// Configuration of an [`AdmissionGuard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// Maximum number of causally premature events held for reordering.
    pub capacity: usize,
    /// What happens when the buffer is full and another premature event
    /// arrives.
    pub overflow: OverflowPolicy,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            capacity: 1024,
            overflow: OverflowPolicy::Reject,
        }
    }
}

/// The category of one quarantined or dropped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestFaultKind {
    /// The event (or its partner) names a trace outside the computation.
    TraceOutOfRange,
    /// The vector clock's dimension differs from the trace count.
    ClockWidthMismatch,
    /// The clock's own-trace entry disagrees with the event index, or the
    /// index is 0 — the local component is not the required monotone
    /// counter.
    NonMonotoneLocal,
    /// The reorder buffer overflowed and the policy dropped an event.
    BufferOverflow,
}

impl std::fmt::Display for IngestFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IngestFaultKind::TraceOutOfRange => "trace-out-of-range",
            IngestFaultKind::ClockWidthMismatch => "clock-width-mismatch",
            IngestFaultKind::NonMonotoneLocal => "non-monotone-local",
            IngestFaultKind::BufferOverflow => "buffer-overflow",
        })
    }
}

/// One entry of the structured ingest-error stream.
#[derive(Debug, Clone)]
pub struct IngestFault {
    /// The fault category.
    pub kind: IngestFaultKind,
    /// The offending event, when it carried a well-formed id.
    pub event: Option<EventId>,
    /// Human-readable context.
    pub detail: String,
}

impl std::fmt::Display for IngestFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.detail)
    }
}

/// Per-category ingestion counters, surfaced through
/// [`MonitorStats`](crate::MonitorStats).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Events admitted to the monitor (in causal order).
    pub admitted: u64,
    /// Exact duplicates dropped (already admitted, or already buffered).
    pub duplicates_dropped: u64,
    /// Premature events that entered the reorder buffer.
    pub buffered: u64,
    /// Buffered events later delivered once their predecessors arrived.
    pub reordered_delivered: u64,
    /// Quarantined: event or partner trace id out of range.
    pub quarantined_trace_range: u64,
    /// Quarantined: clock dimension != trace count.
    pub quarantined_clock_width: u64,
    /// Quarantined: own-trace clock entry inconsistent with the index.
    pub quarantined_non_monotone: u64,
    /// Incoming events rejected by [`OverflowPolicy::Reject`].
    pub overflow_rejected: u64,
    /// Buffered events evicted by [`OverflowPolicy::DropOldest`].
    pub overflow_dropped: u64,
    /// Times [`OverflowPolicy::FlushDegraded`] (or an explicit flush of a
    /// non-empty buffer) abandoned causal order.
    pub degraded_flushes: u64,
    /// Events delivered out of causal order by those flushes.
    pub degraded_delivered: u64,
    /// High-water mark of the reorder buffer.
    pub buffered_peak: u64,
}

impl IngestStats {
    /// Total quarantined events across all validation categories.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined_trace_range + self.quarantined_clock_width + self.quarantined_non_monotone
    }

    /// True when ingestion lost or reordered information: something was
    /// quarantined, dropped by overflow, or flushed out of causal order.
    /// (Duplicates and successful reorders are *not* degradation — the
    /// guard fully repaired those.)
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.quarantined() > 0
            || self.overflow_rejected > 0
            || self.overflow_dropped > 0
            || self.degraded_flushes > 0
    }

    /// Adds every counter of `other` into `self`.
    pub fn absorb(&mut self, other: &IngestStats) {
        self.admitted += other.admitted;
        self.duplicates_dropped += other.duplicates_dropped;
        self.buffered += other.buffered;
        self.reordered_delivered += other.reordered_delivered;
        self.quarantined_trace_range += other.quarantined_trace_range;
        self.quarantined_clock_width += other.quarantined_clock_width;
        self.quarantined_non_monotone += other.quarantined_non_monotone;
        self.overflow_rejected += other.overflow_rejected;
        self.overflow_dropped += other.overflow_dropped;
        self.degraded_flushes += other.degraded_flushes;
        self.degraded_delivered += other.degraded_delivered;
        self.buffered_peak = self.buffered_peak.max(other.buffered_peak);
    }
}

/// Cap on the retained structured fault log; counters keep counting past
/// it, so an attacker cannot grow memory by sending garbage.
const MAX_FAULT_LOG: usize = 256;

/// The validating reorder stage (see the module docs).
///
/// Feed raw events to [`AdmissionGuard::admit`]; it appends the events
/// that became deliverable — validated, deduplicated, and in causal
/// order — to the output buffer.
#[derive(Debug)]
pub struct AdmissionGuard {
    pub(crate) n_traces: usize,
    /// `admitted[t]` — count of admitted events on trace `t`; indices
    /// `1..=admitted[t]` have all been delivered, in order.
    pub(crate) admitted: Vec<u32>,
    /// Premature events awaiting predecessors, in arrival order.
    pub(crate) buffer: Vec<Event>,
    /// Ids of buffered events, for O(1) duplicate-of-buffered detection.
    pub(crate) buffered_ids: HashSet<EventId>,
    pub(crate) config: GuardConfig,
    pub(crate) stats: IngestStats,
    faults: Vec<IngestFault>,
    /// Faults not retained because the log was full (still counted).
    faults_dropped: u64,
}

impl AdmissionGuard {
    /// Creates a guard for a computation of `n_traces` traces.
    #[must_use]
    pub fn new(n_traces: usize, config: GuardConfig) -> Self {
        AdmissionGuard {
            n_traces,
            admitted: vec![0; n_traces],
            buffer: Vec::new(),
            buffered_ids: HashSet::new(),
            config,
            stats: IngestStats::default(),
            faults: Vec::new(),
            faults_dropped: 0,
        }
    }

    /// Ingestion counters.
    #[must_use]
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The guard's configuration.
    #[must_use]
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Number of events currently buffered awaiting predecessors.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Drains the structured fault stream (quarantines and overflow
    /// drops, capped at a fixed retention; counters are exact).
    pub fn take_faults(&mut self) -> Vec<IngestFault> {
        std::mem::take(&mut self.faults)
    }

    /// Faults that were counted but not retained in the capped log.
    #[must_use]
    pub fn faults_dropped(&self) -> u64 {
        self.faults_dropped
    }

    fn fault(&mut self, kind: IngestFaultKind, event: Option<EventId>, detail: String) {
        match kind {
            IngestFaultKind::TraceOutOfRange => self.stats.quarantined_trace_range += 1,
            IngestFaultKind::ClockWidthMismatch => self.stats.quarantined_clock_width += 1,
            IngestFaultKind::NonMonotoneLocal => self.stats.quarantined_non_monotone += 1,
            IngestFaultKind::BufferOverflow => {} // counted at the call site
        }
        if self.faults.len() < MAX_FAULT_LOG {
            self.faults.push(IngestFault {
                kind,
                event,
                detail,
            });
        } else {
            self.faults_dropped += 1;
        }
    }

    /// O(1) causal deliverability for a *validated* event: program order
    /// on its own trace, plus (for receives) the partner send admitted.
    /// Sufficient because every admitted event's full causal past is
    /// admitted (induction over admissions).
    fn deliverable(&self, event: &Event) -> bool {
        let t = event.trace().as_usize();
        if u64::from(event.index().get()) != u64::from(self.admitted[t]) + 1 {
            return false;
        }
        match event.partner() {
            Some(p) => p.index().get() <= self.admitted[p.trace().as_usize()],
            None => true,
        }
    }

    /// Validates `event`; returns `false` (and records the quarantine)
    /// when it must not be admitted in any order.
    fn validate(&mut self, event: &Event) -> bool {
        let t = event.trace();
        if t.as_usize() >= self.n_traces {
            self.fault(
                IngestFaultKind::TraceOutOfRange,
                Some(event.id()),
                format!("event {} on trace {} of {}", event.id(), t, self.n_traces),
            );
            return false;
        }
        if event.clock().len() != self.n_traces {
            self.fault(
                IngestFaultKind::ClockWidthMismatch,
                Some(event.id()),
                format!(
                    "event {} carries a {}-entry clock over {} traces",
                    event.id(),
                    event.clock().len(),
                    self.n_traces
                ),
            );
            return false;
        }
        if event.index().get() == 0 || event.clock().entry(t) != event.index() {
            self.fault(
                IngestFaultKind::NonMonotoneLocal,
                Some(event.id()),
                format!(
                    "event {} has own-trace clock entry {} (Fidge convention requires {})",
                    event.id(),
                    event.clock().entry(t).get(),
                    event.index().get()
                ),
            );
            return false;
        }
        if let Some(p) = event.partner() {
            if p.trace().as_usize() >= self.n_traces {
                self.fault(
                    IngestFaultKind::TraceOutOfRange,
                    Some(event.id()),
                    format!(
                        "event {} names partner {} on an unknown trace",
                        event.id(),
                        p
                    ),
                );
                return false;
            }
            if p.index().get() == 0 {
                self.fault(
                    IngestFaultKind::NonMonotoneLocal,
                    Some(event.id()),
                    format!("event {} names partner {} with index 0", event.id(), p),
                );
                return false;
            }
        }
        true
    }

    fn deliver(&mut self, event: Event, out: &mut Vec<Event>) {
        let t = event.trace().as_usize();
        self.admitted[t] = self.admitted[t].max(event.index().get());
        self.stats.admitted += 1;
        out.push(event);
    }

    /// Repeatedly sweeps the buffer, delivering events whose predecessors
    /// are now admitted, until a fixpoint. In-order sweeps deliver
    /// same-unlock chains in arrival order.
    fn drain_buffer(&mut self, out: &mut Vec<Event>) {
        loop {
            let mut progress = false;
            let mut i = 0;
            while i < self.buffer.len() {
                if self.deliverable(&self.buffer[i]) {
                    let e = self.buffer.remove(i);
                    self.buffered_ids.remove(&e.id());
                    self.stats.reordered_delivered += 1;
                    self.deliver(e, out);
                    progress = true;
                } else {
                    i += 1;
                }
            }
            if !progress {
                return;
            }
        }
    }

    /// Processes one raw arrival. Deliverable events (the arrival and/or
    /// previously buffered ones it unlocked) are appended to `out` in
    /// causal order; invalid, duplicate, and overflowing arrivals are
    /// counted and recorded instead. Never panics.
    pub fn admit(&mut self, event: &Event, out: &mut Vec<Event>) {
        if !self.validate(event) {
            return;
        }
        let t = event.trace().as_usize();
        // O(1) duplicate of an already-admitted index.
        if event.index().get() <= self.admitted[t] {
            self.stats.duplicates_dropped += 1;
            return;
        }
        if self.deliverable(event) {
            // The fast path: an in-order arrival costs two comparisons
            // and (with an empty buffer) no scan at all.
            self.deliver(event.clone(), out);
            if !self.buffer.is_empty() {
                self.drain_buffer(out);
            }
            return;
        }
        // Premature: buffer it (or apply the overflow policy).
        if self.buffered_ids.contains(&event.id()) {
            self.stats.duplicates_dropped += 1;
            return;
        }
        if self.buffer.len() >= self.config.capacity {
            match self.config.overflow {
                OverflowPolicy::Reject => {
                    self.stats.overflow_rejected += 1;
                    self.fault(
                        IngestFaultKind::BufferOverflow,
                        Some(event.id()),
                        format!(
                            "buffer at capacity {}; rejected incoming {}",
                            self.config.capacity,
                            event.id()
                        ),
                    );
                    return;
                }
                OverflowPolicy::DropOldest => {
                    let evicted = self.buffer.remove(0);
                    self.buffered_ids.remove(&evicted.id());
                    self.stats.overflow_dropped += 1;
                    self.fault(
                        IngestFaultKind::BufferOverflow,
                        Some(evicted.id()),
                        format!(
                            "buffer at capacity {}; evicted oldest {}",
                            self.config.capacity,
                            evicted.id()
                        ),
                    );
                    // Fall through to buffer the incoming event.
                }
                OverflowPolicy::FlushDegraded => {
                    self.buffer.push(event.clone());
                    self.flush(out);
                    return;
                }
            }
        }
        self.buffer.push(event.clone());
        self.buffered_ids.insert(event.id());
        self.stats.buffered += 1;
        self.stats.buffered_peak = self.stats.buffered_peak.max(self.buffer.len() as u64);
    }

    /// Processes a whole batch of raw arrivals through the same state
    /// machine as per-event [`AdmissionGuard::admit`] — validation,
    /// deduplication, and causal reordering are applied to every event
    /// in batch order, so verdicts, delivery order, counters, and the
    /// fault log are bit-identical to calling `admit` once per event.
    ///
    /// What the batch form buys is amortization, not different
    /// semantics: `out` is grown once for the whole frame instead of
    /// re-checked per push, and callers (the monitor set, the serve
    /// engine) check the guard out and swap their reuse buffers once
    /// per batch instead of once per event. The common clean batch —
    /// in-order, no duplicates, empty buffer — runs entirely on the
    /// two-comparison fast path of `admit` with no buffer scans.
    pub fn admit_batch(&mut self, events: &[Event], out: &mut Vec<Event>) {
        out.reserve(events.len());
        for event in events {
            self.admit(event, out);
        }
    }

    /// Abandons causal order for everything still buffered: delivers the
    /// buffer sorted by `(trace, index)` (so per-trace order at least is
    /// preserved) and marks the run degraded. Used by the
    /// [`OverflowPolicy::FlushDegraded`] policy and by end-of-stream
    /// drains. A no-op on an empty buffer.
    pub fn flush(&mut self, out: &mut Vec<Event>) {
        if self.buffer.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.buffer);
        self.buffered_ids.clear();
        pending.sort_by_key(|e| (e.trace().as_u32(), e.index().get()));
        self.stats.degraded_flushes += 1;
        self.stats.degraded_delivered += pending.len() as u64;
        for e in pending {
            self.deliver(e, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocep_poet::{EventKind, PoetServer};
    use ocep_vclock::{EventIndex, StampedEvent, TraceId, VectorClock};

    fn t(i: u32) -> TraceId {
        TraceId::new(i)
    }

    /// A small two-trace execution with a message in the middle:
    /// T0: a1, s2(send), a3 — T1: b1, r2(recv of s2), b3.
    fn sample_events() -> Vec<Event> {
        let mut poet = PoetServer::new(2);
        poet.record(t(0), EventKind::Unary, "a", "");
        let s = poet.record(t(0), EventKind::Send, "s", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        poet.record_receive(t(1), s.id(), "r", "");
        poet.record(t(0), EventKind::Unary, "a", "");
        poet.record(t(1), EventKind::Unary, "b", "");
        poet.store().iter_arrival().cloned().collect()
    }

    fn admit_all(guard: &mut AdmissionGuard, events: &[Event]) -> Vec<Event> {
        let mut out = Vec::new();
        for e in events {
            guard.admit(e, &mut out);
        }
        out
    }

    fn ids(events: &[Event]) -> Vec<EventId> {
        events.iter().map(Event::id).collect()
    }

    #[test]
    fn clean_stream_passes_through_unchanged() {
        let events = sample_events();
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let out = admit_all(&mut guard, &events);
        assert_eq!(ids(&out), ids(&events));
        assert_eq!(guard.stats().admitted, 6);
        assert_eq!(guard.stats().buffered, 0);
        assert_eq!(guard.stats().quarantined(), 0);
        assert_eq!(guard.buffered(), 0);
    }

    #[test]
    fn premature_event_is_buffered_then_delivered_in_order() {
        let events = sample_events();
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        // Deliver the receive (arrival index 3) before its partner send
        // (arrival index 1): [a1, b1, r2, s2, a3, b3].
        let shuffled = [
            events[0].clone(),
            events[2].clone(),
            events[3].clone(),
            events[1].clone(),
            events[4].clone(),
            events[5].clone(),
        ];
        let out = admit_all(&mut guard, &shuffled);
        // The guard must re-establish causal order: s2 before r2.
        let pos = |id: EventId| ids(&out).iter().position(|&x| x == id).unwrap();
        assert_eq!(out.len(), 6);
        assert!(pos(events[1].id()) < pos(events[3].id()));
        assert_eq!(guard.stats().buffered, 1);
        assert_eq!(guard.stats().reordered_delivered, 1);
        assert_eq!(guard.buffered(), 0);
    }

    #[test]
    fn swapped_program_order_pair_is_restored_exactly() {
        let events = sample_events();
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        // Swap a1 and s2 (same trace, program-ordered): guard must
        // restore the exact original sequence.
        let shuffled = [
            events[1].clone(),
            events[0].clone(),
            events[2].clone(),
            events[3].clone(),
            events[4].clone(),
            events[5].clone(),
        ];
        let out = admit_all(&mut guard, &shuffled);
        assert_eq!(ids(&out), ids(&events));
    }

    #[test]
    fn duplicate_of_admitted_event_dropped_in_o1() {
        let events = sample_events();
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let mut out = Vec::new();
        guard.admit(&events[0], &mut out);
        guard.admit(&events[0], &mut out);
        guard.admit(&events[0], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(guard.stats().duplicates_dropped, 2);
    }

    #[test]
    fn duplicate_of_buffered_event_dropped() {
        let events = sample_events();
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let mut out = Vec::new();
        // a3 (trace 0 index 3) is premature with nothing admitted.
        guard.admit(&events[4], &mut out);
        guard.admit(&events[4], &mut out);
        assert!(out.is_empty());
        assert_eq!(guard.buffered(), 1);
        assert_eq!(guard.stats().duplicates_dropped, 1);
    }

    #[test]
    fn quarantines_trace_out_of_range() {
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let stamp = StampedEvent::new_unchecked(
            EventId::new(t(7), EventIndex::new(1)),
            VectorClock::from_entries(vec![0, 0]),
        );
        let bad = Event::new(stamp, EventKind::Unary, "a", "", None);
        let mut out = Vec::new();
        guard.admit(&bad, &mut out);
        assert!(out.is_empty());
        assert_eq!(guard.stats().quarantined_trace_range, 1);
        let faults = guard.take_faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].kind, IngestFaultKind::TraceOutOfRange);
    }

    #[test]
    fn quarantines_clock_width_mismatch() {
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let stamp = StampedEvent::new_unchecked(
            EventId::new(t(0), EventIndex::new(1)),
            VectorClock::from_entries(vec![1, 0, 0]),
        );
        let bad = Event::new(stamp, EventKind::Unary, "a", "", None);
        let mut out = Vec::new();
        guard.admit(&bad, &mut out);
        assert!(out.is_empty());
        assert_eq!(guard.stats().quarantined_clock_width, 1);
    }

    #[test]
    fn quarantines_non_monotone_local_component() {
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let stamp = StampedEvent::new_unchecked(
            EventId::new(t(0), EventIndex::new(3)),
            VectorClock::from_entries(vec![9, 0]),
        );
        let bad = Event::new(stamp, EventKind::Unary, "a", "", None);
        let mut out = Vec::new();
        guard.admit(&bad, &mut out);
        assert!(out.is_empty());
        assert_eq!(guard.stats().quarantined_non_monotone, 1);
        assert_eq!(guard.stats().quarantined(), 1);
    }

    #[test]
    fn buffer_exactly_at_capacity_still_reorders() {
        // Capacity 2, and exactly 2 events buffered before the unlock
        // arrives: nothing overflows and order is restored.
        let mut poet = PoetServer::new(1);
        for _ in 0..3 {
            poet.record(t(0), EventKind::Unary, "a", "");
        }
        let evs: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let mut guard = AdmissionGuard::new(
            1,
            GuardConfig {
                capacity: 2,
                overflow: OverflowPolicy::Reject,
            },
        );
        let out = admit_all(
            &mut guard,
            &[evs[1].clone(), evs[2].clone(), evs[0].clone()],
        );
        assert_eq!(ids(&out), ids(&evs));
        assert_eq!(guard.stats().buffered_peak, 2);
        assert_eq!(guard.stats().overflow_rejected, 0);
    }

    #[test]
    fn overflow_reject_drops_incoming() {
        let mut poet = PoetServer::new(1);
        for _ in 0..4 {
            poet.record(t(0), EventKind::Unary, "a", "");
        }
        let evs: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let mut guard = AdmissionGuard::new(
            1,
            GuardConfig {
                capacity: 2,
                overflow: OverflowPolicy::Reject,
            },
        );
        let mut out = Vec::new();
        guard.admit(&evs[1], &mut out); // premature
        guard.admit(&evs[2], &mut out); // premature — buffer now full
        guard.admit(&evs[3], &mut out); // premature — rejected
        assert!(out.is_empty());
        assert_eq!(guard.stats().overflow_rejected, 1);
        // The gap-filler still unlocks what was buffered.
        guard.admit(&evs[0], &mut out);
        assert_eq!(ids(&out), ids(&evs[..3]));
    }

    #[test]
    fn overflow_drop_oldest_evicts_head() {
        let mut poet = PoetServer::new(1);
        for _ in 0..4 {
            poet.record(t(0), EventKind::Unary, "a", "");
        }
        let evs: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let mut guard = AdmissionGuard::new(
            1,
            GuardConfig {
                capacity: 2,
                overflow: OverflowPolicy::DropOldest,
            },
        );
        let mut out = Vec::new();
        guard.admit(&evs[1], &mut out);
        guard.admit(&evs[2], &mut out);
        guard.admit(&evs[3], &mut out); // evicts evs[1]
        assert_eq!(guard.stats().overflow_dropped, 1);
        guard.admit(&evs[0], &mut out);
        // evs[1] was evicted, so only evs[0] is deliverable; 2 and 4
        // stay gapped in the buffer.
        assert_eq!(ids(&out), vec![evs[0].id()]);
        assert_eq!(guard.buffered(), 2);
    }

    #[test]
    fn overflow_flush_degraded_delivers_sorted_and_continues() {
        let mut poet = PoetServer::new(1);
        for _ in 0..4 {
            poet.record(t(0), EventKind::Unary, "a", "");
        }
        let evs: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let mut guard = AdmissionGuard::new(
            1,
            GuardConfig {
                capacity: 2,
                overflow: OverflowPolicy::FlushDegraded,
            },
        );
        let mut out = Vec::new();
        guard.admit(&evs[3], &mut out);
        guard.admit(&evs[1], &mut out);
        guard.admit(&evs[2], &mut out); // overflow: flush all three sorted
        assert_eq!(ids(&out), vec![evs[1].id(), evs[2].id(), evs[3].id()]);
        assert_eq!(guard.stats().degraded_flushes, 1);
        assert_eq!(guard.stats().degraded_delivered, 3);
        assert!(guard.stats().is_degraded());
        // The late gap-filler is now stale.
        guard.admit(&evs[0], &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(guard.stats().duplicates_dropped, 1);
    }

    #[test]
    fn premature_event_with_quarantined_predecessor_waits_then_overflows() {
        // The predecessor (index 1) arrives corrupt and is quarantined;
        // its successor (index 2) must stay buffered — the guard cannot
        // know the gap will never fill — and the overflow policy is the
        // bound on that wait.
        let mut poet = PoetServer::new(1);
        poet.record(t(0), EventKind::Unary, "a", "");
        poet.record(t(0), EventKind::Unary, "a", "");
        let evs: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        // Corrupt copy of evs[0]: own-entry mismatch.
        let corrupt = Event::new(
            StampedEvent::new_unchecked(
                EventId::new(t(0), EventIndex::new(1)),
                VectorClock::from_entries(vec![5]),
            ),
            EventKind::Unary,
            "a",
            "",
            None,
        );
        let mut guard = AdmissionGuard::new(
            1,
            GuardConfig {
                capacity: 1,
                overflow: OverflowPolicy::Reject,
            },
        );
        let mut out = Vec::new();
        guard.admit(&corrupt, &mut out);
        assert_eq!(guard.stats().quarantined_non_monotone, 1);
        guard.admit(&evs[1], &mut out);
        assert!(out.is_empty());
        assert_eq!(guard.buffered(), 1, "successor waits for the gap");
        // A healthy copy of the predecessor eventually unblocks it.
        guard.admit(&evs[0], &mut out);
        assert_eq!(ids(&out), ids(&evs));
        assert_eq!(guard.buffered(), 0);
    }

    #[test]
    fn single_trace_degenerate_case() {
        // n_traces = 1: deliverability is pure program order.
        let mut poet = PoetServer::new(1);
        for _ in 0..5 {
            poet.record(t(0), EventKind::Unary, "a", "");
        }
        let evs: Vec<Event> = poet.store().iter_arrival().cloned().collect();
        let mut guard = AdmissionGuard::new(1, GuardConfig::default());
        let shuffled = [
            evs[1].clone(),
            evs[0].clone(),
            evs[4].clone(),
            evs[2].clone(),
            evs[3].clone(),
        ];
        let out = admit_all(&mut guard, &shuffled);
        assert_eq!(ids(&out), ids(&evs));
        assert_eq!(guard.stats().quarantined(), 0);
    }

    #[test]
    fn explicit_flush_drains_stragglers_sorted() {
        let events = sample_events();
        let mut guard = AdmissionGuard::new(2, GuardConfig::default());
        let mut out = Vec::new();
        // Only the tail events arrive; their predecessors never do.
        guard.admit(&events[4], &mut out); // T0:3
        guard.admit(&events[5], &mut out); // T1:3
        assert!(out.is_empty());
        guard.flush(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(guard.stats().degraded_flushes, 1);
        assert!(guard.stats().is_degraded());
        guard.flush(&mut out);
        assert_eq!(guard.stats().degraded_flushes, 1, "empty flush is free");
    }

    #[test]
    fn fault_log_is_capped_but_counters_are_exact() {
        let mut guard = AdmissionGuard::new(1, GuardConfig::default());
        let mut out = Vec::new();
        for i in 0..(MAX_FAULT_LOG + 50) {
            let bad = Event::new(
                StampedEvent::new_unchecked(
                    EventId::new(t(9), EventIndex::new(i as u32 + 1)),
                    VectorClock::from_entries(vec![0]),
                ),
                EventKind::Unary,
                "a",
                "",
                None,
            );
            guard.admit(&bad, &mut out);
        }
        assert_eq!(
            guard.stats().quarantined_trace_range,
            (MAX_FAULT_LOG + 50) as u64
        );
        assert_eq!(guard.take_faults().len(), MAX_FAULT_LOG);
        assert_eq!(guard.faults_dropped(), 50);
    }

    /// A seeded multi-trace execution with cross-trace messages, in
    /// arrival order — the workload the batch-equivalence sweeps run on.
    fn seeded_events(seed: u64, n_traces: u32, n_events: usize) -> Vec<Event> {
        let mut rng = ocep_rng::Rng::seed_from_u64(seed);
        let mut poet = PoetServer::new(n_traces as usize);
        let mut sends: Vec<(TraceId, EventId)> = Vec::new();
        for _ in 0..n_events {
            let tr = t(rng.gen_range(0..n_traces));
            match rng.gen_range(0..4u32) {
                0 => {
                    let s = poet.record(tr, EventKind::Send, "s", "");
                    sends.push((tr, s.id()));
                }
                1 if sends.iter().any(|(st, _)| *st != tr) => {
                    let candidates: Vec<EventId> = sends
                        .iter()
                        .filter(|(st, _)| *st != tr)
                        .map(|(_, id)| *id)
                        .collect();
                    let pick = *rng.choose(&candidates).unwrap();
                    poet.record_receive(tr, pick, "r", "");
                }
                _ => {
                    poet.record(tr, EventKind::Unary, "u", "");
                }
            }
        }
        poet.store().iter_arrival().cloned().collect()
    }

    /// Applies a pinned-seed transport fault plan: adjacent + windowed
    /// reorder, duplicated deliveries, and a sprinkling of malformed
    /// events (wrong clock width, out-of-range trace) that must be
    /// quarantined identically by both admission paths.
    fn apply_fault_plan(events: &[Event], rng: &mut ocep_rng::Rng) -> Vec<Event> {
        let mut stream: Vec<Event> = events.to_vec();
        // Windowed reorder: displace events a few slots back.
        let mut i = 0;
        while i + 1 < stream.len() {
            if rng.gen_bool(0.3) {
                let j = (i + rng.gen_range(1..4usize)).min(stream.len() - 1);
                stream.swap(i, j);
            }
            i += 1;
        }
        // Duplicates: re-deliver random earlier events.
        for _ in 0..events.len() / 5 {
            let src = rng.gen_range(0..stream.len());
            let dst = rng.gen_range(0..stream.len() + 1);
            let dup = stream[src].clone();
            stream.insert(dst, dup);
        }
        // Malformed arrivals that must be quarantined.
        for _ in 0..3 {
            let bad = Event::new(
                StampedEvent::new_unchecked(
                    EventId::new(t(rng.gen_range(90..99u32)), EventIndex::new(1)),
                    VectorClock::from_entries(vec![0]),
                ),
                EventKind::Unary,
                "bad",
                "",
                None,
            );
            let dst = rng.gen_range(0..stream.len() + 1);
            stream.insert(dst, bad);
        }
        stream
    }

    fn fault_key(f: &IngestFault) -> (IngestFaultKind, Option<EventId>, String) {
        (f.kind, f.event, f.detail.clone())
    }

    /// `admit_batch` must be observationally identical to per-event
    /// `admit`: same delivered events in the same order, same counters,
    /// same fault log — for every batch partition of the same stream,
    /// under reorder/duplicate/corruption fault plans, across overflow
    /// policies. This is the contract that lets the serve engine switch
    /// `EventBatch` frames to the batch path without perturbing the
    /// deterministic-simulation oracle.
    #[test]
    fn admit_batch_is_bit_identical_to_per_event_admit() {
        let policies = [
            OverflowPolicy::Reject,
            OverflowPolicy::DropOldest,
            OverflowPolicy::FlushDegraded,
        ];
        for seed in 0..12u64 {
            let events = seeded_events(0xBA7C_0000 + seed, 2 + (seed % 7) as u32, 80);
            let mut rng = ocep_rng::Rng::seed_from_u64(0xFA_0017 + seed);
            let stream = apply_fault_plan(&events, &mut rng);
            for policy in policies {
                // Small capacity so overflow policies actually trigger.
                let config = GuardConfig {
                    capacity: 8,
                    overflow: policy,
                };
                let mut reference = AdmissionGuard::new(7, config);
                let mut ref_out = Vec::new();
                for e in &stream {
                    reference.admit(e, &mut ref_out);
                }
                for batch_size in [1usize, 7, 64, stream.len()] {
                    let mut batched = AdmissionGuard::new(7, config);
                    let mut out = Vec::new();
                    for chunk in stream.chunks(batch_size) {
                        batched.admit_batch(chunk, &mut out);
                    }
                    assert_eq!(
                        out, ref_out,
                        "delivery diverged (seed {seed}, {policy}, batch {batch_size})"
                    );
                    assert_eq!(
                        batched.stats(),
                        reference.stats(),
                        "stats diverged (seed {seed}, {policy}, batch {batch_size})"
                    );
                    assert_eq!(
                        batched.faults.iter().map(fault_key).collect::<Vec<_>>(),
                        reference.faults.iter().map(fault_key).collect::<Vec<_>>(),
                        "fault log diverged (seed {seed}, {policy}, batch {batch_size})"
                    );
                }
            }
        }
    }
}
