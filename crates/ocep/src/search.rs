//! The OCEP backtracking search (Algorithms 1–3).
//!
//! A search is seeded by one terminating event (Alg 1's precondition: `M`
//! is a partial match of length one). Levels follow the pattern's
//! evaluation order; `go_forward` instantiates the current level by
//! iterating traces and, per trace, the Fig 4 domain latest-first
//! (`nextMatch`). On a complete match the subset is updated and the
//! search *advances to the next trace* at the completing level (§IV-C),
//! which is what bounds the reported subset by one match per
//! (level, trace) cell.
//!
//! Failure handling refines the paper's `bt[][]`/`getTS` machinery into
//! two sound mechanisms:
//!
//! * **Conflict-directed backjumping** — every failed subtree reports the
//!   set of earlier levels its failure depends on; a level whose choice is
//!   not in that set returns immediately instead of trying further
//!   candidates (the paper's `goBackward` jump past "repeated failure
//!   from the same conflicting event").
//! * **Fig 5 jump bounds** — when a single instantiated event `e` alone
//!   empties a level's domain on a trace, the vector timestamps of the
//!   conflicting events yield an exact bound on which other candidates
//!   for `e`'s level can ever resolve the conflict (cases a and b of
//!   Fig 5); the bound is carried upward and fast-forwards the candidate
//!   cursor at that level.
//!
//! # Allocation discipline
//!
//! The recursion itself is allocation-free: already-instantiated events
//! are *borrowed* out of the assignment for the Fig 4 restriction rules,
//! candidate events are O(1) clones (`Arc`-shared timestamps), a failed
//! subtree's jump bound travels as a `Copy` `Option` rather than a `Vec`,
//! and the per-level working buffers (`assignment`, `covered`,
//! `my_bound`, variable bindings) live in a [`SearchScratch`] that the
//! caller reuses across searches — the monitor keeps one, and each
//! worker of the parallel pool owns one for its thread's lifetime.

use crate::domain::{restrict, Domain};
use crate::history::LeafHistory;
use crate::matching::Match;
use crate::obs::{ObsLevel, SearchObs};
use ocep_pattern::{Bindings, Constraint, LeafId, PairRel, Pattern};
use ocep_poet::Event;
use ocep_vclock::{EventSet, TraceId};
use std::sync::Arc;

/// Statistics of one arrival's search, merged into the monitor totals.
#[derive(Debug, Default, Clone)]
pub(crate) struct SearchStats {
    pub nodes: u64,
    pub candidates: u64,
    pub domains: u64,
    pub backjumps: u64,
    pub jump_bounds_applied: u64,
    pub deferred_rejections: u64,
    /// Fig 4 restrictions evaluated against a *borrowed* assigned event
    /// where the matcher previously cloned it (the ablation counter for
    /// the zero-copy hot path).
    pub clones_avoided: u64,
    /// Heap bytes those avoided clones would have copied pre-Arc: one
    /// `n_traces`-wide `u32` timestamp buffer per restriction.
    pub clone_bytes_avoided: u64,
    /// Domains emptied by a single GP/LS rule (Fig 4). Carried as a plain
    /// counter (not inside `obs`) so the recursion's flush points stay
    /// branch-free adds; the registry picks it up after the search.
    pub prune_gp_ls: u64,
    /// Domains emptied by the running intersection (Fig 4).
    pub prune_intersect: u64,
    /// Sampled, scaled wall-clock ns in the fused domain + Fig-4 loop
    /// (see [`DOMAIN_TIME_SAMPLE`]); zero unless timing is enabled.
    pub domain_ns: u64,
    /// Search introspection, collected only when the monitor's
    /// [`ObsLevel`] asks for it (`None` keeps the `Off` path
    /// allocation-free). Boxed so the common case stays one word; rides
    /// the existing worker result channel, so pool partitions merge it
    /// like any other counter.
    pub obs: Option<Box<SearchObs>>,
}

impl SearchStats {
    /// Accumulates a worker's counters into a merged total.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.candidates += other.candidates;
        self.domains += other.domains;
        self.backjumps += other.backjumps;
        self.jump_bounds_applied += other.jump_bounds_applied;
        self.deferred_rejections += other.deferred_rejections;
        self.clones_avoided += other.clones_avoided;
        self.clone_bytes_avoided += other.clone_bytes_avoided;
        self.prune_gp_ls += other.prune_gp_ls;
        self.prune_intersect += other.prune_intersect;
        self.domain_ns += other.domain_ns;
        if let Some(o) = &other.obs {
            self.obs.get_or_insert_with(Box::default).merge(o);
        }
    }
}

/// A Fig 5 jump bound: candidates for the level holding `target_leaf` on
/// `on_trace` with index greater than `max_index` are guaranteed to
/// reproduce the recorded conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JumpBound {
    target_leaf: LeafId,
    on_trace: TraceId,
    max_index: u32,
}

/// Result of exploring one subtree. `Copy`, so failure propagation never
/// allocates.
#[derive(Clone, Copy)]
enum Outcome {
    /// At least one complete match was recorded below this point.
    FoundSome,
    /// No match; `conflicts` is a bitmask (over eval-order positions) of
    /// the levels the failure depends on, and `bound` carries the Fig 5
    /// jump bound for an earlier level when one was derivable. (At most
    /// one bound can survive a level — it must be *uniform* across every
    /// failed trace — so an `Option` replaces the old per-subtree `Vec`.)
    Exhausted {
        conflicts: u64,
        bound: Option<JumpBound>,
    },
}

/// Reusable per-search working memory (see the module docs on allocation
/// discipline). One instance lives in the sequential [`crate::Monitor`];
/// each thread of the parallel worker pool owns another. Buffers are
/// resized on demand, so one scratch serves patterns and computations of
/// any shape (the pool is shared across a [`crate::MonitorSet`]).
#[derive(Debug, Default)]
pub(crate) struct SearchScratch {
    /// Assignment indexed by *leaf id*.
    assignment: Vec<Option<Event>>,
    /// Per (eval position, trace), flattened: a match through this cell
    /// was already found this arrival, so the trace is skipped
    /// (per-trace advance).
    covered: Vec<bool>,
    /// Per eval position: the Fig 5 fast-forward bound for that level's
    /// candidates, keyed by trace. Taken out by the level's recursion
    /// frame and put back on exit.
    my_bound: Vec<Vec<Option<u32>>>,
    /// Attribute-variable bindings (§III-C).
    bindings: Bindings,
}

impl SearchScratch {
    /// Clears the buffers and sizes them for one search.
    fn prepare(&mut self, levels: usize, n_traces: usize, n_leaves: usize, n_vars: usize) {
        self.assignment.clear();
        self.assignment.resize(n_leaves, None);
        self.covered.clear();
        self.covered.resize(levels * n_traces, false);
        if self.my_bound.len() < levels {
            self.my_bound.resize_with(levels, Vec::new);
        }
        self.bindings.reset(n_vars);
    }
}

pub(crate) struct Search<'a> {
    pattern: &'a Arc<Pattern>,
    history: &'a LeafHistory,
    n_traces: usize,
    order: &'a [LeafId],
    scratch: &'a mut SearchScratch,
    matches: Vec<Match>,
    pub stats: SearchStats,
    /// Safety valve for adversarial patterns: the search aborts after
    /// this many recursion nodes (0 = unlimited).
    node_limit: u64,
    /// §VI parallel traversal: when set, the first backtracking level
    /// only iterates the traces marked `true` (each worker thread owns a
    /// disjoint slice of the level-1 subtrees).
    level1_traces: Option<Vec<bool>>,
    /// [`ObsLevel::Full`] only: take wall-clock timers around the fused
    /// domain-construction + Fig-4 restriction loop. Sampled 1 in
    /// [`DOMAIN_TIME_SAMPLE`] computations and scaled, so the timer's
    /// syscall cost stays off the search's hot path.
    time_domains: bool,
}

/// Sampling rate for the per-domain wall-clock timer: one in this many
/// domain computations is timed and the reading scaled back up, making
/// `domain_ns` an estimate whose overhead is ~1/64th of timing every
/// computation (two `Instant` reads per domain would otherwise dominate
/// the fused Fig-4 loop they are trying to measure).
const DOMAIN_TIME_SAMPLE: u64 = 64;

impl<'a> Search<'a> {
    pub fn new(
        pattern: &'a Arc<Pattern>,
        history: &'a LeafHistory,
        n_traces: usize,
        seed_leaf: LeafId,
        node_limit: u64,
        scratch: &'a mut SearchScratch,
    ) -> Self {
        let order = pattern.eval_order(seed_leaf);
        scratch.prepare(order.len(), n_traces, pattern.n_leaves(), pattern.n_vars());
        Search {
            pattern,
            history,
            n_traces,
            order,
            scratch,
            matches: Vec::new(),
            stats: SearchStats::default(),
            node_limit,
            level1_traces: None,
            time_domains: false,
        }
    }

    /// Restricts the first backtracking level to the traces marked
    /// `true` (builder style). Used by the parallel monitor to partition
    /// the level-1 subtrees across worker threads (§VI).
    pub fn with_level1_traces(mut self, allowed: Vec<bool>) -> Self {
        self.level1_traces = Some(allowed);
        self
    }

    /// Enables search introspection at the given [`ObsLevel`] (builder
    /// style). `Off` leaves the search untouched; `Counters` collects
    /// prune/width/backjump distributions; `Full` also times the fused
    /// domain + Fig-4 loop.
    pub fn with_obs(mut self, level: ObsLevel) -> Self {
        if level.enabled() {
            self.stats.obs = Some(Box::default());
            self.time_domains = level.timing();
        }
        self
    }

    fn covered(&self, pos: usize, t: usize) -> bool {
        self.scratch.covered[pos * self.n_traces + t]
    }

    /// Runs the search seeded with `seed` at the order's first leaf and
    /// returns every match found (one per covered (level, trace) cell).
    pub fn run(mut self, seed: &Event) -> (Vec<Match>, SearchStats) {
        let seed_leaf = self.order[0];
        let Some(delta) = self
            .pattern
            .leaf_match(seed_leaf, seed, &self.scratch.bindings)
        else {
            return (Vec::new(), self.stats);
        };
        // Quick feasibility screen: every leaf needs at least one
        // candidate on some trace.
        for &leaf in &self.order[1..] {
            if !(0..self.n_traces).any(|t| self.history.has_any(leaf, TraceId::new(t as u32))) {
                return (Vec::new(), self.stats);
            }
        }
        self.scratch.bindings.apply(&delta);
        self.scratch.assignment[seed_leaf.as_usize()] = Some(seed.clone());
        let _ = self.go(1);
        (std::mem::take(&mut self.matches), self.stats)
    }

    fn exhausted_all_earlier(&self, pos: usize) -> Outcome {
        Outcome::Exhausted {
            conflicts: mask_below(pos),
            bound: None,
        }
    }

    /// Alg 2 / Alg 3 rolled into one recursive step for eval position
    /// `pos` (the paper's backtracking level).
    fn go(&mut self, pos: usize) -> Outcome {
        self.stats.nodes += 1;
        if self.node_limit != 0 && self.stats.nodes > self.node_limit {
            // Abort quietly: report whatever was found so far.
            return Outcome::Exhausted {
                conflicts: 0,
                bound: None,
            };
        }
        if pos == self.order.len() {
            return self.complete();
        }
        let leaf = self.order[pos];
        // O(1) `<>` resolution: when this leaf is partner-constrained
        // against an already-instantiated endpoint, the candidate is
        // unique — no trace/domain iteration needed.
        if let Some(unique) = self.partner_candidate(leaf, pos) {
            return self.try_unique_candidate(leaf, pos, unique);
        }
        let mut found_any = false;
        let mut conflicts: u64 = 0;
        // Local tallies for counters that would otherwise need `&mut
        // self` while an assigned event is borrowed.
        let mut avoided: u64 = 0;
        let obs_on = self.stats.obs.is_some();
        let mut domain_ns: u64 = 0;
        let mut prune_gp_ls: u64 = 0;
        let mut prune_intersect: u64 = 0;
        // Fig 5 bookkeeping. A jump bound may only be emitted when *every*
        // failed trace at this level was emptied by the same earlier
        // level's event alone, each with a derivable bound — otherwise a
        // replacement for that event might succeed through a trace whose
        // failure had a different cause.
        let mut uniform: Option<JumpBound> = None;
        let mut poisoned = false;
        // Fast-forward bound for *this* level's candidates, learned from
        // deeper failures, keyed by the trace currently being iterated.
        // Taken out of the scratch pool (and put back on every exit) so
        // recursion never allocates it.
        let mut my_bound = std::mem::take(&mut self.scratch.my_bound[pos]);
        my_bound.clear();
        my_bound.resize(self.n_traces, None);
        // A literal or bound process attribute pins the level to one
        // trace: skip all others outright.
        let pin = self.pattern.leaves()[leaf.as_usize()]
            .process_pin(&self.scratch.bindings)
            .map(ocep_vclock::TraceId::as_usize);

        #[allow(clippy::needless_range_loop)]
        'traces: for t in 0..self.n_traces {
            if let Some(pin) = pin {
                if t != pin {
                    continue;
                }
            }
            if self.covered(pos, t) {
                continue;
            }
            if pos == 1 {
                if let Some(allowed) = &self.level1_traces {
                    if !allowed[t] {
                        continue;
                    }
                }
            }
            let trace = TraceId::new(t as u32);
            let slice = self.history.on_trace(leaf, trace);
            if slice.is_empty() {
                continue;
            }
            // ---- Fig 4: domain computation with conflict attribution ----
            self.stats.domains += 1;
            let dom_t = (self.time_domains && self.stats.domains % DOMAIN_TIME_SAMPLE == 1)
                .then(std::time::Instant::now);
            // None = domain survived; Some(true) = a single GP/LS rule
            // emptied it; Some(false) = the intersection emptied it.
            let mut pruned: Option<bool> = None;
            let mut dom = Domain::full(slice.len());
            let mut contributors: u64 = 0;
            for (p, &other_leaf) in self.order[..pos].iter().enumerate() {
                let Some(rel) = self.pattern.rel(leaf, other_leaf) else {
                    continue;
                };
                let e = self.scratch.assignment[other_leaf.as_usize()]
                    .as_ref()
                    .expect("earlier levels are instantiated");
                avoided += 1;
                // Deliberate, feature-gated bug used to validate the
                // conformance harness: drop the happens-before (GP-derived)
                // domain restriction, so candidates that do not precede the
                // already-assigned event survive and false positives reach
                // the report path.
                #[cfg(feature = "mutation-skip-domain")]
                if rel == PairRel::Before {
                    continue;
                }
                let individual = restrict(slice, rel, e);
                if individual.is_empty() {
                    // The conflict involves only e and this history: a
                    // Fig 5 bound on replacements for e may exist.
                    match fig5_bound(rel, e, slice) {
                        Some(b) => {
                            let jb = JumpBound {
                                target_leaf: other_leaf,
                                on_trace: e.trace(),
                                max_index: b,
                            };
                            uniform = match uniform {
                                None => Some(jb),
                                Some(u)
                                    if u.target_leaf == jb.target_leaf
                                        && u.on_trace == jb.on_trace =>
                                {
                                    // getClosest: the *latest* timestamp
                                    // that can resolve every conflict.
                                    Some(JumpBound {
                                        max_index: u.max_index.max(jb.max_index),
                                        ..u
                                    })
                                }
                                Some(_) => {
                                    poisoned = true;
                                    uniform
                                }
                            };
                        }
                        None => poisoned = true,
                    }
                    conflicts |= 1 << p;
                    pruned = Some(true);
                    break;
                }
                let next = dom.intersect(individual);
                if next.is_empty() {
                    // Intersection conflict: blame every contributor so far
                    // plus this one.
                    conflicts |= contributors | (1 << p);
                    poisoned = true;
                    pruned = Some(false);
                    break;
                }
                if next != dom {
                    contributors |= 1 << p;
                }
                dom = next;
            }
            if let Some(t0) = dom_t {
                domain_ns += u64::try_from(t0.elapsed().as_nanos())
                    .unwrap_or(u64::MAX)
                    .saturating_mul(DOMAIN_TIME_SAMPLE);
            }
            match pruned {
                Some(true) => {
                    prune_gp_ls += 1;
                    continue 'traces;
                }
                Some(false) => {
                    prune_intersect += 1;
                    continue 'traces;
                }
                None => {}
            }
            if obs_on {
                if let Some(o) = self.stats.obs.as_deref_mut() {
                    o.record_domain_width(pos, dom.len() as u64);
                }
            }
            // Levels that narrowed this domain excluded candidates; if the
            // remaining ones all fail, those levels share the blame.
            conflicts |= contributors;
            poisoned = true; // candidate-level failures have mixed causes

            // When the leaf's text attribute is a bound variable, the
            // text index yields the (few) matching candidates directly
            // instead of scanning the whole domain.
            let indexed: Option<Vec<usize>> = self.pattern.leaves()[leaf.as_usize()]
                .text_var()
                .and_then(|v| self.scratch.bindings.get(v))
                .and_then(|val| self.history.text_positions(leaf, trace, &val))
                .map(|positions| {
                    let lo = positions.partition_point(|&p| (p as usize) < dom.lo);
                    let hi = positions.partition_point(|&p| (p as usize) < dom.hi);
                    positions[lo..hi].iter().map(|&p| p as usize).collect()
                });

            // ---- nextMatch: candidates latest-first -----------------------
            let (mut cursor, floor) = match &indexed {
                Some(v) => (v.len(), 0),
                None => (dom.hi, dom.lo),
            };
            while cursor > floor {
                cursor -= 1;
                let cpos = match &indexed {
                    Some(v) => v[cursor],
                    None => {
                        if let Some(maxidx) = my_bound[t] {
                            // Fast-forward past candidates a Fig 5 bound
                            // rules out.
                            let cand_idx = slice[cursor].index().get();
                            if cand_idx > maxidx {
                                self.stats.jump_bounds_applied += 1;
                                let new_hi = slice[dom.lo..=cursor]
                                    .partition_point(|x| x.index().get() <= maxidx)
                                    + dom.lo;
                                if new_hi <= dom.lo {
                                    continue 'traces;
                                }
                                cursor = new_hi - 1;
                            }
                        }
                        cursor
                    }
                };
                self.stats.candidates += 1;
                // O(1): the event's timestamp buffer is Arc-shared.
                let cand = slice[cpos].clone();
                // Distinctness: one concrete event per leaf.
                if let Some(p) = self.position_holding(&cand, pos) {
                    conflicts |= 1 << p;
                    continue;
                }
                // Partner constraints against instantiated endpoints.
                if let Some(p) = self.partner_violation(leaf, &cand, pos) {
                    conflicts |= 1 << p;
                    continue;
                }
                // Attribute variables (§III-C).
                let Some(delta) = self.pattern.leaf_match(leaf, &cand, &self.scratch.bindings)
                else {
                    conflicts |= mask_below(pos);
                    continue;
                };
                self.scratch.bindings.apply(&delta);
                self.scratch.assignment[leaf.as_usize()] = Some(cand);
                let out = self.go(pos + 1);
                self.scratch.assignment[leaf.as_usize()] = None;
                self.scratch.bindings.retract(&delta);
                match out {
                    Outcome::FoundSome => {
                        found_any = true;
                        // §IV-C: after a complete match with this level's
                        // event on trace t, continue with trace t+1.
                        continue 'traces;
                    }
                    Outcome::Exhausted {
                        conflicts: c,
                        bound,
                    } => {
                        if c & (1 << pos) == 0 {
                            // This level's choice is irrelevant to the
                            // failure: no other candidate here can help
                            // (conflict-directed backjump). The bound
                            // passes through unchanged — its validity
                            // depends only on its target's assignment.
                            self.stats.backjumps += 1;
                            self.stats.clones_avoided += avoided;
                            self.stats.clone_bytes_avoided += avoided * self.clone_bytes();
                            self.scratch.my_bound[pos] = my_bound;
                            self.stats.domain_ns += domain_ns;
                            self.stats.prune_gp_ls += prune_gp_ls;
                            self.stats.prune_intersect += prune_intersect;
                            if obs_on {
                                if let Some(o) = self.stats.obs.as_deref_mut() {
                                    o.backjump_depth.record(pos as u64);
                                }
                            }
                            if found_any {
                                return Outcome::FoundSome;
                            }
                            return Outcome::Exhausted {
                                conflicts: c | conflicts,
                                bound,
                            };
                        }
                        conflicts |= c & mask_below(pos);
                        if let Some(b) = bound {
                            if b.target_leaf == leaf && b.on_trace == trace {
                                let slot = &mut my_bound[t];
                                *slot = Some(match *slot {
                                    Some(old) => old.min(b.max_index),
                                    None => b.max_index,
                                });
                            }
                            // A bound for another level is dropped here: a
                            // strict-rule bound only arrives with a
                            // singleton conflict set, which either names
                            // this level (consumed above) or triggers the
                            // pass-through backjump branch.
                        }
                    }
                }
            }
        }

        self.stats.clones_avoided += avoided;
        self.stats.clone_bytes_avoided += avoided * self.clone_bytes();
        self.scratch.my_bound[pos] = my_bound;
        self.stats.domain_ns += domain_ns;
        self.stats.prune_gp_ls += prune_gp_ls;
        self.stats.prune_intersect += prune_intersect;
        if obs_on && !found_any {
            if let Some(o) = self.stats.obs.as_deref_mut() {
                o.conflict_size.record(u64::from(conflicts.count_ones()));
            }
        }
        if found_any {
            Outcome::FoundSome
        } else {
            let bound = match uniform {
                Some(u) if !poisoned => Some(u),
                _ => None,
            };
            Outcome::Exhausted { conflicts, bound }
        }
    }

    /// Heap bytes one avoided `Event` clone would have copied before the
    /// timestamps became `Arc`-shared: the `n_traces`-wide `u32` buffer.
    fn clone_bytes(&self) -> u64 {
        (self.n_traces * std::mem::size_of::<u32>()) as u64
    }

    /// All levels instantiated: verify deferred constraints, record the
    /// match, and mark per-trace coverage (`updateSubset`).
    fn complete(&mut self) -> Outcome {
        if !self.deferred_ok() {
            self.stats.deferred_rejections += 1;
            // Deferred constraints span many leaves; blame every level.
            return self.exhausted_all_earlier(self.order.len());
        }
        // O(1) clones throughout: the Match shares every event's
        // timestamp and string buffers with the history.
        let events: Vec<Event> = self
            .scratch
            .assignment
            .iter()
            .map(|e| e.as_ref().expect("complete assignment").clone())
            .collect();
        self.matches
            .push(Match::new(Arc::clone(self.pattern), events));
        for (p, &leaf) in self.order.iter().enumerate() {
            let t = self.scratch.assignment[leaf.as_usize()]
                .as_ref()
                .expect("complete assignment")
                .trace()
                .as_usize();
            self.scratch.covered[p * self.n_traces + t] = true;
        }
        Outcome::FoundSome
    }

    /// Checks `Lim` and `WeakPrecede` constraints on the full assignment.
    fn deferred_ok(&self) -> bool {
        for c in self.pattern.constraints() {
            match c {
                Constraint::Lim { from, to } if !self.lim_ok(*from, *to) => {
                    return false;
                }
                Constraint::WeakPrecede { from, to } => {
                    let fs: EventSet = from
                        .iter()
                        .map(|l| {
                            self.scratch.assignment[l.as_usize()]
                                .as_ref()
                                .expect("complete")
                                .stamp()
                                .clone()
                        })
                        .collect();
                    let ts: EventSet = to
                        .iter()
                        .map(|l| {
                            self.scratch.assignment[l.as_usize()]
                                .as_ref()
                                .expect("complete")
                                .stamp()
                                .clone()
                        })
                        .collect();
                    if !fs.weakly_precedes(&ts) {
                        return false;
                    }
                }
                Constraint::Entangled { left, right } => {
                    let ls: EventSet = left
                        .iter()
                        .map(|l| {
                            self.scratch.assignment[l.as_usize()]
                                .as_ref()
                                .expect("complete")
                                .stamp()
                                .clone()
                        })
                        .collect();
                    let rs: EventSet = right
                        .iter()
                        .map(|l| {
                            self.scratch.assignment[l.as_usize()]
                                .as_ref()
                                .expect("complete")
                                .stamp()
                                .clone()
                        })
                        .collect();
                    if !ls.entangled(&rs) {
                        return false;
                    }
                }
                _ => {}
            }
        }
        true
    }

    /// `from ~> to`: no other stored event of `from`'s leaf strictly
    /// causally between the two assigned events.
    fn lim_ok(&self, from: LeafId, to: LeafId) -> bool {
        let a = self.scratch.assignment[from.as_usize()]
            .as_ref()
            .expect("complete");
        let b = self.scratch.assignment[to.as_usize()]
            .as_ref()
            .expect("complete");
        for t in 0..self.n_traces {
            let trace = TraceId::new(t as u32);
            let slice = self.history.on_trace(from, trace);
            // Events x with a -> x and x -> b.
            let after_a = restrict(slice, PairRel::After, a);
            let before_b = restrict(slice, PairRel::Before, b);
            let mid = after_a.intersect(before_b);
            for x in &slice[mid.lo..mid.hi.max(mid.lo)] {
                if x.id() != a.id() && x.id() != b.id() {
                    return false;
                }
            }
        }
        true
    }

    /// The unique candidate for `leaf` when it is `<>`-constrained
    /// against an instantiated endpoint: the stored receive of an
    /// assigned send (via the partner index) or the stored send named by
    /// an assigned receive's partner field.
    fn partner_candidate(&self, leaf: LeafId, pos: usize) -> Option<Event> {
        for c in self.pattern.constraints() {
            match c {
                Constraint::Partner { send, recv } if *recv == leaf => {
                    if let Some(s) = &self.scratch.assignment[send.as_usize()] {
                        if self.order[..pos].contains(send) {
                            return self.history.receive_of(leaf, s.id()).cloned();
                        }
                    }
                }
                Constraint::Partner { send, recv } if *send == leaf => {
                    if let Some(r) = &self.scratch.assignment[recv.as_usize()] {
                        if self.order[..pos].contains(recv) {
                            let sid = r.partner()?;
                            return self.history.find(leaf, sid).cloned();
                        }
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Tries the single possible candidate for a partner-resolved level:
    /// validates every constraint directly (no domain computation) and
    /// descends. Failure blames all earlier levels (coarse but sound —
    /// the partner chain pins the candidate).
    fn try_unique_candidate(&mut self, leaf: LeafId, pos: usize, cand: Event) -> Outcome {
        let t = cand.trace().as_usize();
        let fail = Outcome::Exhausted {
            conflicts: mask_below(pos),
            bound: None,
        };
        if self.covered(pos, t) || self.position_holding(&cand, pos).is_some() {
            return fail;
        }
        for &other_leaf in &self.order[..pos] {
            let Some(rel) = self.pattern.rel(leaf, other_leaf) else {
                continue;
            };
            let other = self.scratch.assignment[other_leaf.as_usize()]
                .as_ref()
                .expect("earlier levels are instantiated");
            let got = cand.stamp().causality(other.stamp());
            let ok = matches!(
                (rel, got),
                (PairRel::Before, ocep_vclock::Causality::Before)
                    | (PairRel::After, ocep_vclock::Causality::After)
                    | (PairRel::Concurrent, ocep_vclock::Causality::Concurrent)
            );
            if !ok {
                return fail;
            }
        }
        if self.partner_violation(leaf, &cand, pos).is_some() {
            return fail;
        }
        let Some(delta) = self.pattern.leaf_match(leaf, &cand, &self.scratch.bindings) else {
            return fail;
        };
        self.stats.candidates += 1;
        self.scratch.bindings.apply(&delta);
        self.scratch.assignment[leaf.as_usize()] = Some(cand);
        let out = self.go(pos + 1);
        self.scratch.assignment[leaf.as_usize()] = None;
        self.scratch.bindings.retract(&delta);
        match out {
            Outcome::FoundSome => Outcome::FoundSome,
            Outcome::Exhausted { .. } => fail,
        }
    }

    /// If `cand` is already assigned to an earlier level, returns that
    /// level's eval position.
    fn position_holding(&self, cand: &Event, pos: usize) -> Option<usize> {
        for (p, &l) in self.order[..pos].iter().enumerate() {
            if let Some(e) = &self.scratch.assignment[l.as_usize()] {
                if e.id() == cand.id() {
                    return Some(p);
                }
            }
        }
        None
    }

    /// Checks the `<>` constraints of `leaf` against instantiated
    /// endpoints; on violation returns the conflicting eval position.
    fn partner_violation(&self, leaf: LeafId, cand: &Event, pos: usize) -> Option<usize> {
        for c in self.pattern.constraints() {
            let (other, cand_is_send) = match c {
                Constraint::Partner { send, recv } if *send == leaf => (*recv, true),
                Constraint::Partner { send, recv } if *recv == leaf => (*send, false),
                _ => continue,
            };
            let Some(e) = &self.scratch.assignment[other.as_usize()] else {
                continue;
            };
            let ok = if cand_is_send {
                e.partner() == Some(cand.id())
            } else {
                cand.partner() == Some(e.id())
            };
            if !ok {
                let p = self.order[..pos]
                    .iter()
                    .position(|l| *l == other)
                    .expect("assigned leaf is in the order prefix");
                return Some(p);
            }
        }
        None
    }
}

/// Fig 5 bound derivation for a single-constraint empty domain on a trace:
/// returns the greatest index a replacement candidate for `e`'s level may
/// have (on `e`'s trace) such that the conflict could be resolved.
fn fig5_bound(rel: PairRel, e: &Event, slice: &[Event]) -> Option<u32> {
    match rel {
        // Candidate x needs e -> x but nothing on this trace follows e:
        // a replacement e' helps only if e' -> x_max, i.e. its index is at
        // most GP(x_max, trace(e)) (Fig 5a).
        PairRel::After => {
            let x_max = slice.last()?;
            Some(x_max.clock().entry(e.trace()).get())
        }
        // Candidate x needs x -> e but nothing here precedes e: an even
        // earlier e' has fewer predecessors still — prune the whole trace
        // (Fig 5b).
        PairRel::Before => Some(0),
        // Concurrency conflicts move both interval ends; no single-ended
        // sound bound (Fig 5c is handled by plain backjumping).
        PairRel::Concurrent => None,
    }
}

fn mask_below(pos: usize) -> u64 {
    if pos >= 64 {
        u64::MAX
    } else {
        (1u64 << pos) - 1
    }
}
