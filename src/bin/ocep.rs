//! `ocep` — command-line front end for the OCEP framework.
//!
//! ```text
//! ocep validate <pattern-file>                 # parse & explain a pattern
//! ocep check <pattern-file> <dump-file>        # match a pattern over a dump
//! ocep record-demo <workload> <out-file>       # produce a demo trace dump
//! ocep info <dump-file>                        # summarize a trace dump
//! ocep show <dump-file> [--limit N]            # ASCII process-time diagram
//! ocep analyze <pattern-file> <dump-file>      # offline exhaustive statistics
//! ocep slice <dump-file> <out-file> T0,T3,...  # project onto involved traces
//! ocep fuzz [--seed N] [--cases N]             # differential conformance fuzzing
//! ocep fuzz --replay <dir>                     # re-run a dumped failure
//! ```

use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::{Constraint, Pattern};
use ocep_repro::poet::dump;
use ocep_repro::simulator::workloads::{atomicity, message_race, random_walk, replicated_service};

const USAGE: &str = "\
ocep — online causal-event-pattern matching (ICDCS 2013 reproduction)

USAGE:
    ocep validate <pattern-file>
    ocep check <pattern-file> <dump-file> [--per-arrival] [--no-dedup] [--stats]
    ocep record-demo <deadlock|race|atomicity|ordering> <out-file> [--seed N]
    ocep info <dump-file>
    ocep show <dump-file> [--limit N]
    ocep analyze <pattern-file> <dump-file>
    ocep slice <dump-file> <out-file> <T0,T3,...>
    ocep fuzz [--seed N] [--cases N] [--smoke] [--dump-dir DIR]
    ocep fuzz --replay <dir>

`fuzz` generates seeded random (pattern, execution) cases and checks the
online monitor against the exhaustive oracle and the naive baseline
(agreement, k*n subset bound, coverage, linearization invariance). A
failing case is shrunk and dumped as a replayable directory; `--replay`
re-runs one deterministically. `--smoke` is the fixed-size CI run.

A pattern file holds a pattern program, e.g.:

    A := [*, enter_method, *];
    B := [*, enter_method, *];
    pattern := A || B;

A dump file is the POET trace format written by `record-demo` or by
`ocep_poet::dump::dump_to_file`.
";

fn main() {
    if let Err(msg) = run() {
        eprintln!("error: {msg}\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") => validate(args.get(1).ok_or("missing pattern file")?),
        Some("check") => check(&args[1..]),
        Some("record-demo") => record_demo(&args[1..]),
        Some("info") => info(args.get(1).ok_or("missing dump file")?),
        Some("show") => show(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("slice") => slice_cmd(&args[1..]),
        Some("fuzz") => fuzz_cmd(&args[1..]),
        Some("--help" | "-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn load_pattern(path: &str) -> Result<Pattern, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read pattern file '{path}': {e}"))?;
    Pattern::parse(&src).map_err(|e| e.to_string())
}

fn validate(path: &str) -> Result<(), String> {
    let p = load_pattern(path)?;
    println!("pattern: {}", p.program().pattern);
    println!("\nevents ({}):", p.n_leaves());
    for leaf in p.leaves() {
        let term = if p.terminating_leaves().contains(&leaf.id()) {
            "  [terminating]"
        } else {
            ""
        };
        println!(
            "  {}  (class {}){}",
            leaf.display_name(),
            leaf.class_name(),
            term
        );
    }
    if !p.var_names().is_empty() {
        println!("\nattribute variables: {}", p.var_names().join(", "));
    }
    println!("\nconstraints:");
    for c in p.constraints() {
        let name =
            |l: ocep_repro::pattern::LeafId| p.leaves()[l.as_usize()].display_name().to_owned();
        match c {
            Constraint::Before { from, to } => {
                println!("  {} -> {}", name(*from), name(*to));
            }
            Constraint::Concurrent { a, b } => {
                println!("  {} || {}", name(*a), name(*b));
            }
            Constraint::Partner { send, recv } => {
                println!("  {} <> {}", name(*send), name(*recv));
            }
            Constraint::Lim { from, to } => {
                println!("  {} ~> {}", name(*from), name(*to));
            }
            Constraint::WeakPrecede { from, to } => {
                let f: Vec<_> = from.iter().map(|l| name(*l)).collect();
                let t: Vec<_> = to.iter().map(|l| name(*l)).collect();
                println!("  {{{}}} -> {{{}}} (weak)", f.join(","), t.join(","));
            }
            Constraint::Entangled { left, right } => {
                let l: Vec<_> = left.iter().map(|x| name(*x)).collect();
                let r: Vec<_> = right.iter().map(|x| name(*x)).collect();
                println!("  {{{}}} <-> {{{}}}", l.join(","), r.join(","));
            }
        }
    }
    println!("\nok: pattern is valid");
    Ok(())
}

fn check(args: &[String]) -> Result<(), String> {
    let pattern_path = args.first().ok_or("missing pattern file")?;
    let dump_path = args.get(1).ok_or("missing dump file")?;
    let per_arrival = args.iter().any(|a| a == "--per-arrival");
    let no_dedup = args.iter().any(|a| a == "--no-dedup");
    let show_stats = args.iter().any(|a| a == "--stats");

    let pattern = load_pattern(pattern_path)?;
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let n = server.n_traces();
    let mut monitor = Monitor::with_config(
        pattern,
        n,
        MonitorConfig {
            dedup: !no_dedup,
            policy: if per_arrival {
                SubsetPolicy::PerArrival
            } else {
                SubsetPolicy::Representative
            },
            ..MonitorConfig::default()
        },
    );
    let mut reported = 0usize;
    for e in server.store().iter_arrival() {
        for m in monitor.observe(e) {
            reported += 1;
            println!("match: {m}");
        }
    }
    println!(
        "\n{} events, {} matches found, {} reported",
        monitor.stats().events,
        monitor.stats().matches_found,
        reported
    );
    if show_stats {
        println!("stats: {}", monitor.stats());
        println!(
            "history: {} events stored, {} suppressed by dedup",
            monitor.history_size(),
            monitor.suppressed()
        );
    }
    Ok(())
}

fn record_demo(args: &[String]) -> Result<(), String> {
    let which = args.first().ok_or("missing workload name")?;
    let out = args.get(1).ok_or("missing output file")?;
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let generated = match which.as_str() {
        "deadlock" => random_walk::generate(&random_walk::Params {
            seed,
            deadlock_prob: 0.05,
            ..random_walk::Params::default()
        }),
        "race" => message_race::generate(&message_race::Params {
            seed,
            ..message_race::Params::default()
        }),
        "atomicity" => atomicity::generate(&atomicity::Params {
            seed,
            bug_prob: 0.05,
            ..atomicity::Params::default()
        }),
        "ordering" => replicated_service::generate(&replicated_service::Params {
            seed,
            bug_prob: 0.05,
            ..replicated_service::Params::default()
        }),
        other => return Err(format!("unknown workload '{other}'")),
    };
    dump::dump_to_file(generated.poet.store(), out)
        .map_err(|e| format!("cannot write '{out}': {e}"))?;
    let pattern_path = format!("{out}.pattern");
    std::fs::write(&pattern_path, &generated.pattern_src)
        .map_err(|e| format!("cannot write '{pattern_path}': {e}"))?;
    println!(
        "wrote {} events over {} traces to {out}\n\
         ({} violations injected; matching pattern written to {pattern_path})",
        generated.poet.store().len(),
        generated.n_traces,
        generated.truth.len()
    );
    println!("try: ocep check {pattern_path} {out} --stats");
    Ok(())
}

/// Renders a Fig 3-style process-time diagram: one column per trace,
/// one row per event in linearization order, with `o--->` send markers
/// and `>` receive markers labelled by type.
fn show(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing dump file")?;
    let limit: usize = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let server =
        dump::reload_from_file(path).map_err(|e| format!("cannot reload '{path}': {e}"))?;
    let store = server.store();
    let n = store.n_traces();
    let col = 14usize;

    let mut header = String::from("        ");
    for tr in 0..n {
        header.push_str(&format!("{:^col$}", format!("T{tr}")));
    }
    println!("{header}");
    println!("        {}", "-".repeat(col * n));

    for (row, e) in store.iter_arrival().enumerate() {
        if row >= limit {
            println!(
                "        ... ({} more events; raise with --limit)",
                store.len() - limit
            );
            break;
        }
        let mut line = format!("{:>6}  ", row + 1);
        for tr in 0..n {
            if e.trace().as_usize() == tr {
                let marker = match e.kind() {
                    ocep_repro::poet::EventKind::Send => format!("{}>", e.ty()),
                    ocep_repro::poet::EventKind::Receive => format!(">{}", e.ty()),
                    ocep_repro::poet::EventKind::Unary => e.ty().to_owned(),
                };
                let mut cell = marker;
                cell.truncate(col - 1);
                line.push_str(&format!("{cell:^col$}"));
            } else {
                line.push_str(&format!("{:^col$}", "|"));
            }
        }
        if let Some(p) = e.partner() {
            line.push_str(&format!("  (from {p})"));
        }
        println!("{line}");
    }
    Ok(())
}

/// Offline exhaustive statistics (the post-mortem companion of §II).
fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let pattern = load_pattern(args.first().ok_or("missing pattern file")?)?;
    let dump_path = args.get(1).ok_or("missing dump file")?;
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let report = ocep_repro::analysis::analyze(&pattern, server.store());
    print!("{report}");
    let involved = report.involved_traces();
    if !involved.is_empty() {
        let names: Vec<String> = involved.iter().map(ToString::to_string).collect();
        println!("involved traces: {}", names.join(","));
        println!("tip: ocep slice {dump_path} <out-file> {}", names.join(","));
    }
    Ok(())
}

/// Projects a dump onto selected traces (post-mortem §II workflow).
fn slice_cmd(args: &[String]) -> Result<(), String> {
    let dump_path = args.first().ok_or("missing dump file")?;
    let out_path = args.get(1).ok_or("missing output file")?;
    let spec = args.get(2).ok_or("missing trace list (e.g. T0,T3)")?;
    let keep: Vec<ocep_repro::vclock::TraceId> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .strip_prefix('T')
                .and_then(|d| d.parse::<u32>().ok())
                .map(ocep_repro::vclock::TraceId::new)
                .ok_or_else(|| format!("bad trace name '{s}' (expected T<n>)"))
        })
        .collect::<Result<_, _>>()?;
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    for &t in &keep {
        if t.as_usize() >= server.n_traces() {
            return Err(format!("trace {t} is outside the dump"));
        }
    }
    let sliced = ocep_repro::analysis::slice(server.store(), &keep);
    dump::dump_to_file(sliced.store(), out_path)
        .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
    println!(
        "sliced {} of {} events onto {} traces -> {out_path}",
        sliced.store().len(),
        server.store().len(),
        keep.len()
    );
    Ok(())
}

/// Differential conformance fuzzing (`ocep fuzz`).
fn fuzz_cmd(args: &[String]) -> Result<(), String> {
    use ocep_repro::conformance as conf;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };

    if let Some(dir) = flag_val("--replay") {
        let outcome = conf::replay_dump(std::path::Path::new(dir))
            .map_err(|e| format!("cannot replay '{dir}': {e}"))?;
        match &outcome.result {
            Err(m) => println!("replay: mismatch reproduced: {m}"),
            Ok(o) => println!(
                "replay: all invariants hold (truth={}, reported={}, detected={})",
                o.truth, o.reported, o.detected
            ),
        }
        if let Some(expected) = outcome.expected {
            println!("dump recorded invariant: {expected}");
        }
        if outcome.reproduced() {
            println!("verdict: REPRODUCED");
            return Ok(());
        }
        println!("verdict: NOT reproduced");
        std::process::exit(1);
    }

    let seed: u64 = flag_val("--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(0);
    let smoke = args.iter().any(|a| a == "--smoke");
    let cases: usize = if smoke {
        2000
    } else {
        flag_val("--cases")
            .map(|s| s.parse().map_err(|_| format!("bad --cases '{s}'")))
            .transpose()?
            .unwrap_or(500)
    };
    let dump_dir = flag_val("--dump-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| Some(std::path::PathBuf::from("fuzz-failures")));

    let cfg = conf::FuzzConfig {
        seed,
        cases,
        dump_dir,
        max_failures: 5,
    };
    println!("fuzzing: seed={seed} cases={cases}");
    let mut checked = 0usize;
    let report = conf::run_fuzz(&cfg, |i, result| {
        checked += 1;
        if let Err(m) = result {
            eprintln!("case {i}: MISMATCH {m}");
        } else if (i + 1) % 100 == 0 {
            eprintln!("  ... {} cases checked", i + 1);
        }
    });
    println!(
        "done: {} cases, {} with a match ({} oracle assignments total), {} failures",
        report.cases_run,
        report.detected,
        report.truth_total,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "failure at case {} (case seed {:#x}): {}",
            f.case_index, f.case_seed, f.mismatch
        );
        println!(
            "  shrunk to {} traces / {} events, pattern:\n    {}",
            f.shrunk.n_traces,
            f.shrunk.actions.len(),
            f.shrunk.pattern_src.replace('\n', "\n    ")
        );
        match &f.dump {
            Some(dir) => println!(
                "  dump: {} (re-run: ocep fuzz --replay {})",
                dir.display(),
                dir.display()
            ),
            None => println!("  dump: <not written>"),
        }
    }
    if report.failures.is_empty() {
        println!("all invariants hold");
        Ok(())
    } else {
        std::process::exit(1);
    }
}

fn info(path: &str) -> Result<(), String> {
    let server =
        dump::reload_from_file(path).map_err(|e| format!("cannot reload '{path}': {e}"))?;
    let store = server.store();
    println!("dump: {path}");
    println!("traces: {}", store.n_traces());
    println!("events: {}", store.len());
    let mut by_type: std::collections::BTreeMap<String, usize> = Default::default();
    for e in store.iter_arrival() {
        *by_type.entry(e.ty().to_owned()).or_default() += 1;
    }
    println!("event types:");
    for (ty, count) in by_type {
        println!("  {ty:<24} {count}");
    }
    Ok(())
}
