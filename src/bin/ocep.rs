//! `ocep` — command-line front end for the OCEP framework.
//!
//! ```text
//! ocep validate <pattern-file>                 # parse & explain a pattern
//! ocep check <pattern-file> <dump-file>        # match a pattern over a dump
//! ocep record-demo <workload> <out-file>       # produce a demo trace dump
//! ocep info <dump-file>                        # summarize a trace dump
//! ocep show <dump-file> [--limit N]            # ASCII process-time diagram
//! ocep analyze <pattern-file> <dump-file>      # offline exhaustive statistics
//! ocep slice <dump-file> <out-file> T0,T3,...  # project onto involved traces
//! ocep fuzz [--seed N] [--cases N]             # differential conformance fuzzing
//! ocep fuzz --replay <dir>                     # re-run a dumped failure
//! ocep sim [--seed N] [--seeds N] [--faults]   # deterministic whole-system simulation
//! ocep sim --replay <dir>                      # re-run a dumped sim failure
//! ocep serve <pattern-file> --traces N         # OCWP daemon over TCP
//! ocep send <addr> <dump-file>                 # stream a dump to a daemon
//! ocep ingest <format> <recording>             # external recording -> events
//! ocep tail <addr> [--once]                    # follow verdicts from a daemon
//! ocep replay <pattern-file> <wal-dir>         # match a pattern over a durable log
//! ```

use ocep_repro::ocep::{
    GuardConfig, MetricsSnapshot, Monitor, MonitorConfig, ObsLevel, OverflowPolicy, SubsetPolicy,
};
use ocep_repro::pattern::{Constraint, Pattern};
use ocep_repro::poet::dump;
use ocep_repro::simulator::workloads::{atomicity, message_race, random_walk, replicated_service};

const USAGE: &str = "\
ocep — online causal-event-pattern matching (ICDCS 2013 reproduction)

USAGE:
    ocep validate <pattern-file>
    ocep check <pattern-file> <dump-file> [--per-arrival] [--no-dedup] [--stats]
               [--guard] [--guard-capacity N] [--overflow reject|drop-oldest|flush-degraded]
               [--obs off|counters|full] [--metrics FILE]
    ocep check --resume <ckpt-file> <dump-file> [--stats] [--metrics FILE]
    ocep stats <pattern-file> <dump-file> [--obs LEVEL] [--metrics FILE] [monitor flags]
    ocep stats <ckpt-file>
    ocep checkpoint <pattern-file> <dump-file> <out-ckpt> [--events N]
               [--per-arrival] [--no-dedup] [--guard] [--guard-capacity N] [--overflow P]
    ocep record-demo <deadlock|race|atomicity|ordering> <out-file> [--seed N]
    ocep info <dump-file>
    ocep show <dump-file> [--limit N]
    ocep analyze <pattern-file> <dump-file>
    ocep slice <dump-file> <out-file> <T0,T3,...>
    ocep fuzz [--seed N] [--cases N] [--smoke] [--dump-dir DIR]
              [--obs LEVEL] [--metrics FILE]
    ocep fuzz --faults [--seed N] [--cases N] [--smoke]
    ocep fuzz --replay <dir>
    ocep sim [--seed N] [--seeds N] [--clients N] [--tails N] [--events N]
             [--faults] [--crashes N] [--sabotage] [--dump-dir DIR]
             [--wal] [--wal-sabotage] [--shards N]
    ocep sim --replay <dir>
    ocep serve <pattern-file> --traces N [--addr HOST:PORT] [--port-file FILE]
               [--window N] [--slow-policy reject|drop-oldest|flush-degraded]
               [--checkpoint DIR] [--checkpoint-every N] [--metrics FILE]
               [--wal DIR] [--durability none|batch|strict] [--history-gc]
               [--shards N] [monitor flags]
    ocep send <addr> <dump-file> [--batch N] [--name S] [--shutdown]
    ocep ingest <format> <recording> [--pattern FILE]... [--batch N] [monitor flags]
    ocep ingest <format> <recording> --addr HOST:PORT [--batch N] [--name S]
               [--shutdown]
    ocep tail <addr> [--once] [--name S] [--from LSN] [--tenant T]
    ocep register <addr> <tenant> <pattern-file>... --traces N [--unregister]
    ocep replay <pattern-file> <wal-dir> [--traces N]
    ocep stats --addr HOST:PORT

EXIT CODES:
    0  success; `check` found no pattern match
    1  a pattern match (violation) was found, or fuzzing found failures
    2  ingestion degraded: the admission guard quarantined or lost events,
       or a search partition fell back after a worker panic
    3  usage or runtime error (bad flags, unreadable files, corrupt input)

`check --guard` puts the causal admission guard in front of the monitor:
duplicated and reordered events are repaired via their vector timestamps,
malformed events are quarantined into a structured fault stream, and the
reorder buffer is bounded by --guard-capacity with an --overflow policy.

`checkpoint` runs a monitor over (a prefix of) a dump and serializes its
full matching state; `check --resume` restores it and continues over the
remainder of the dump, producing the same verdicts as an uninterrupted
run.

`--obs` selects the observability level (per-stage latency histograms,
search introspection, recent-arrival ring; see docs/OBSERVABILITY.md).
`--metrics FILE` writes the final metrics snapshot — Prometheus text
format, or JSON when FILE ends in .json — and implies `--obs full`.
`stats` runs a dump at full observability and pretty-prints the snapshot;
given a single checkpoint file it prints the metrics embedded in it.

`fuzz` generates seeded random (pattern, execution) cases and checks the
online monitor against the exhaustive oracle and the naive baseline
(agreement, k*n subset bound, coverage, linearization invariance). A
failing case is shrunk and dumped as a replayable directory; `--replay`
re-runs one deterministically. `fuzz --faults` additionally perturbs
each stream with seeded duplicates, reorders, drops, and corrupt-clock
events, and checks the guarded monitor differentially against the clean
run. `--smoke` is the fixed-size CI run.

`sim` drives the whole serve stack — the real `EngineCore` behind
`ocep serve` — inside a seeded discrete-event simulator in virtual time
(docs/SIMULATION.md): N scripted clients over simulated transports,
optional wire faults (`--faults`: corruption, duplication, reorder,
partitions, slow tails exercising every slow-client policy), and
`--crashes N` mid-stream daemon crash/restart cycles recovered from the
engine's own checkpoint bytes. Every run is executed twice and must be
bit-reproducible, and its journal is replayed through an in-process
oracle that must agree bit-for-bit on verdicts, subsets, ingest
accounting, and checkpoint bytes. `--seeds N` sweeps N consecutive
seeds from `--seed`; a failing seed is shrunk to a minimal config and
dumped under `--dump-dir` for `sim --replay`. `--sabotage` drops one
journaled delivery to prove the oracle catches divergence. `--wal`
serves through an on-disk durable log: crashes become SIGKILL-like (no
checkpoint, no drain) and each restart recovers by replaying the log;
`--wal-sabotage` silently drops one log append to prove the oracle
catches a recovery that lost an event.

A pattern file holds a pattern program, e.g.:

    A := [*, enter_method, *];
    B := [*, enter_method, *];
    pattern := A || B;

A dump file is the POET trace format written by `record-demo` or by
`ocep_poet::dump::dump_to_file`.

`serve` runs the monitor as a network daemon speaking the OCWP binary
protocol (docs/WIRE.md): producers stream events with `send`, consumers
follow verdicts with `tail`, and `stats --addr` queries a live server.
The daemon exits on a client `--shutdown`, writing checkpoints to the
`--checkpoint` directory and reporting with `check`-style exit codes
(1 match, 2 degraded). `--port-file` records the bound address, which
is how scripts discover an ephemeral `--addr 127.0.0.1:0` port.
`--checkpoint-every N` additionally checkpoints every N ingested
events, not only on graceful drain.

`serve --wal DIR` makes serving crash-safe (docs/DURABILITY.md): every
admitted delivery is appended to a hash-chained segmented log before it
reaches the monitors, fsynced per `--durability` (none|batch|strict;
default batch = group commit). On restart the daemon verifies the log,
truncates a torn tail at the first bad record, replays from the newest
log-anchored checkpoint, and resumes named `send` sessions at their
durable offset so clients never re-send. `--history-gc` bounds resident
leaf-history memory by truncating watermark-dominated prefixes,
recording each watermark in the log. `tail --from LSN` replays the
retained verdict backlog from a log offset; `replay` matches a pattern
file — even one the server never ran — over a log after the fact.

`ingest` turns an external recording into an admissible event stream
via the `crates/adapters` readers (docs/ADAPTERS.md): `otlp` reads
JSON-lines span exports, `mpi` reads point-to-point MPI traces, and
`session` reads replayable agent-session recordings. Causality is
synthesized from the recording's own structure (parent/link edges,
send/recv matching, spawn/`from` references) and every event enters
through the same admission guard as live traffic. Offline, each
`--pattern FILE` becomes a monitor named by the file's stem; with
`--addr` the events stream to a running daemon exactly like `send`
(same resume, batch, and exit-code behaviour). A malformed recording
is a line-diagnosed usage error (exit 3), never a panic.

`serve --shards N` partitions the monitors across N engine shards
(docs/SHARDING.md): each shard runs on its own thread with its own
admission-guard replica, durable log (`wal-shard-{i}` under `--wal`),
and checkpoints, and verdicts are re-merged into the single-engine
order — every observable output is bit-identical to `--shards 0`.
`register` adds or removes (`--unregister`) patterns for a tenant on a
live daemon; the server monitors each as `{tenant}/{name}`, and
`tail --tenant T` scopes a subscription to that namespace.
";

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            std::process::exit(3);
        }
    }
}

fn run() -> Result<i32, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("validate") => validate(args.get(1).ok_or("missing pattern file")?).map(|()| 0),
        Some("check") => check(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]).map(|()| 0),
        Some("checkpoint") => checkpoint_cmd(&args[1..]).map(|()| 0),
        Some("record-demo") => record_demo(&args[1..]).map(|()| 0),
        Some("info") => info(args.get(1).ok_or("missing dump file")?).map(|()| 0),
        Some("show") => show(&args[1..]).map(|()| 0),
        Some("analyze") => analyze_cmd(&args[1..]).map(|()| 0),
        Some("slice") => slice_cmd(&args[1..]).map(|()| 0),
        Some("fuzz") => fuzz_cmd(&args[1..]),
        Some("sim") => sim_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("register") => register_cmd(&args[1..]),
        Some("send") => send_cmd(&args[1..]),
        Some("ingest") => ingest_cmd(&args[1..]),
        Some("tail") => tail_cmd(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("--help" | "-h") => {
            print!("{USAGE}");
            Ok(0)
        }
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("missing command".into()),
    }
}

fn load_pattern(path: &str) -> Result<Pattern, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read pattern file '{path}': {e}"))?;
    Pattern::parse(&src).map_err(|e| e.to_string())
}

fn validate(path: &str) -> Result<(), String> {
    let p = load_pattern(path)?;
    println!("pattern: {}", p.program().pattern);
    println!("\nevents ({}):", p.n_leaves());
    for leaf in p.leaves() {
        let term = if p.terminating_leaves().contains(&leaf.id()) {
            "  [terminating]"
        } else {
            ""
        };
        println!(
            "  {}  (class {}){}",
            leaf.display_name(),
            leaf.class_name(),
            term
        );
    }
    if !p.var_names().is_empty() {
        println!("\nattribute variables: {}", p.var_names().join(", "));
    }
    println!("\nconstraints:");
    for c in p.constraints() {
        let name =
            |l: ocep_repro::pattern::LeafId| p.leaves()[l.as_usize()].display_name().to_owned();
        match c {
            Constraint::Before { from, to } => {
                println!("  {} -> {}", name(*from), name(*to));
            }
            Constraint::Concurrent { a, b } => {
                println!("  {} || {}", name(*a), name(*b));
            }
            Constraint::Partner { send, recv } => {
                println!("  {} <> {}", name(*send), name(*recv));
            }
            Constraint::Lim { from, to } => {
                println!("  {} ~> {}", name(*from), name(*to));
            }
            Constraint::WeakPrecede { from, to } => {
                let f: Vec<_> = from.iter().map(|l| name(*l)).collect();
                let t: Vec<_> = to.iter().map(|l| name(*l)).collect();
                println!("  {{{}}} -> {{{}}} (weak)", f.join(","), t.join(","));
            }
            Constraint::Entangled { left, right } => {
                let l: Vec<_> = left.iter().map(|x| name(*x)).collect();
                let r: Vec<_> = right.iter().map(|x| name(*x)).collect();
                println!("  {{{}}} <-> {{{}}}", l.join(","), r.join(","));
            }
        }
    }
    println!("\nok: pattern is valid");
    Ok(())
}

/// The observability level requested by `--obs` / `--metrics`
/// (`--metrics` implies full collection when no level was named), and
/// the export path, if any.
fn obs_flags(args: &[String]) -> Result<(ObsLevel, Option<String>), String> {
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let mut obs = match flag_val("--obs") {
        Some(s) => ObsLevel::from_name(s)
            .ok_or_else(|| format!("bad --obs '{s}' (expected off|counters|full)"))?,
        None => ObsLevel::Off,
    };
    let metrics_path = flag_val("--metrics").cloned();
    if metrics_path.is_some() && !obs.enabled() {
        obs = ObsLevel::Full;
    }
    if obs.enabled() {
        // Process-wide vector-clock op counters ride along with any
        // enabled level (they are gated separately because they are
        // global, not per-monitor).
        ocep_repro::vclock::ops::enable(true);
    }
    Ok((obs, metrics_path))
}

/// Writes a metrics snapshot to `path`: the std-only JSON rendering when
/// the path ends in `.json`, the Prometheus text format otherwise.
fn write_metrics(path: &str, snapshot: &MetricsSnapshot) -> Result<(), String> {
    let body = if path.ends_with(".json") {
        format!(
            "{}\n",
            ocep_repro::bench::metrics_json::snapshot_to_json(snapshot)
        )
    } else {
        snapshot.to_prometheus()
    };
    std::fs::write(path, body).map_err(|e| format!("cannot write metrics to '{path}': {e}"))?;
    eprintln!("metrics written to {path}");
    Ok(())
}

/// Parses the shared monitor flags (`--per-arrival`, `--no-dedup`,
/// `--guard`, `--guard-capacity`, `--overflow`, `--obs`, `--metrics`)
/// into a [`MonitorConfig`].
fn monitor_config(args: &[String]) -> Result<MonitorConfig, String> {
    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let (obs, _) = obs_flags(args)?;
    let mut guard_cfg = GuardConfig::default();
    let mut want_guard = args.iter().any(|a| a == "--guard");
    if let Some(cap) = flag_val("--guard-capacity") {
        guard_cfg.capacity = cap
            .parse()
            .map_err(|_| format!("bad --guard-capacity '{cap}'"))?;
        want_guard = true;
    }
    if let Some(policy) = flag_val("--overflow") {
        guard_cfg.overflow = OverflowPolicy::from_name(policy).ok_or_else(|| {
            format!("bad --overflow '{policy}' (expected reject|drop-oldest|flush-degraded)")
        })?;
        want_guard = true;
    }
    Ok(MonitorConfig {
        dedup: !args.iter().any(|a| a == "--no-dedup"),
        policy: if args.iter().any(|a| a == "--per-arrival") {
            SubsetPolicy::PerArrival
        } else {
            SubsetPolicy::Representative
        },
        guard: want_guard.then_some(guard_cfg),
        obs,
        ..MonitorConfig::default()
    })
}

/// Positional (non-flag) arguments; flags that take a value are skipped
/// together with it.
fn positionals(args: &[String]) -> Vec<&String> {
    const VALUED: &[&str] = &[
        "--guard-capacity",
        "--overflow",
        "--resume",
        "--events",
        "--seed",
        "--seeds",
        "--cases",
        "--clients",
        "--tails",
        "--crashes",
        "--limit",
        "--dump-dir",
        "--replay",
        "--obs",
        "--metrics",
        "--addr",
        "--traces",
        "--port-file",
        "--window",
        "--slow-policy",
        "--checkpoint",
        "--checkpoint-every",
        "--batch",
        "--name",
        "--wal",
        "--durability",
        "--from",
        "--shards",
        "--tenant",
        "--pattern",
    ];
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if VALUED.contains(&a.as_str()) {
            skip = true;
        } else if !a.starts_with("--") {
            out.push(a);
        }
    }
    out
}

fn check(args: &[String]) -> Result<i32, String> {
    let show_stats = args.iter().any(|a| a == "--stats");
    let (_, metrics_path) = obs_flags(args)?;
    let resume = args
        .iter()
        .position(|a| a == "--resume")
        .and_then(|i| args.get(i + 1));
    let pos = positionals(args);

    let (mut monitor, dump_path, skip) = if let Some(ckpt_path) = resume {
        let dump_path = *pos.first().ok_or("missing dump file")?;
        let bytes = std::fs::read(ckpt_path)
            .map_err(|e| format!("cannot read checkpoint '{ckpt_path}': {e}"))?;
        let (monitor, _src) = Monitor::restore(&bytes)
            .map_err(|e| format!("cannot restore checkpoint '{ckpt_path}': {e}"))?;
        let skip = monitor.stats().events as usize;
        println!(
            "resumed from {ckpt_path}: {} events already observed, {} matches found",
            skip,
            monitor.stats().matches_found
        );
        (monitor, dump_path, skip)
    } else {
        let pattern_path = *pos.first().ok_or("missing pattern file")?;
        let dump_path = *pos.get(1).ok_or("missing dump file")?;
        let pattern = load_pattern(pattern_path)?;
        let config = monitor_config(args)?;
        let server = dump::reload_from_file(dump_path)
            .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
        let monitor = Monitor::with_config(pattern, server.n_traces(), config);
        (monitor, dump_path, 0)
    };

    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let mut reported = 0usize;
    for e in server.store().iter_arrival().skip(skip) {
        for m in monitor.observe(e) {
            reported += 1;
            println!("match: {m}");
        }
    }
    for m in monitor.flush_guard() {
        reported += 1;
        println!("match (degraded flush): {m}");
    }
    println!(
        "\n{} events, {} matches found, {} reported",
        monitor.stats().events,
        monitor.stats().matches_found,
        reported
    );
    if show_stats {
        println!("stats: {}", monitor.stats());
        println!(
            "history: {} events stored, {} suppressed by dedup",
            monitor.history_size(),
            monitor.suppressed()
        );
    }
    if let Some(path) = &metrics_path {
        write_metrics(path, &monitor.metrics())?;
    }
    let degraded = monitor.ingest_degraded() || monitor.stats().degraded_arrivals > 0;
    if degraded {
        let ingest = monitor.stats().ingest;
        eprintln!(
            "warning: ingestion degraded ({} quarantined, {} overflow-rejected, \
             {} overflow-dropped, {} degraded flushes, {} degraded arrivals) — \
             verdicts may be incomplete",
            ingest.quarantined(),
            ingest.overflow_rejected,
            ingest.overflow_dropped,
            ingest.degraded_flushes,
            monitor.stats().degraded_arrivals
        );
        for fault in monitor.take_ingest_faults() {
            eprintln!("  fault: {fault}");
        }
        return Ok(2);
    }
    Ok(if monitor.stats().matches_found > 0 {
        1
    } else {
        0
    })
}

/// `ocep stats` — observability front door. With a pattern and a dump,
/// runs the monitor at full (or `--obs`-selected) collection and
/// pretty-prints the metrics snapshot; with a single checkpoint file,
/// prints the metrics embedded in it.
fn stats_cmd(args: &[String]) -> Result<(), String> {
    // `stats --addr HOST:PORT` queries a live `ocep serve` daemon.
    let addr_flag = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1));
    if let Some(addr) = addr_flag {
        let mut tail = ocep_repro::net::Tail::connect(addr, "ocep-stats")
            .map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
        let (s, _) = tail
            .stats()
            .map_err(|e| format!("stats request to '{addr}' failed: {e}"))?;
        println!(
            "server {addr}:\n  admitted      {}\n  quarantined   {}\n  duplicates    {}\n  \
             matches       {}\n  connections   {}\n  data frames   {}\n  degraded      {}",
            s.admitted, s.quarantined, s.duplicates, s.matches, s.connections, s.frames, s.degraded
        );
        return Ok(());
    }
    let pos = positionals(args);
    if pos.len() == 1 {
        let path = pos[0];
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read checkpoint '{path}': {e}"))?;
        let (monitor, _src) = Monitor::restore(&bytes)
            .map_err(|e| format!("cannot restore checkpoint '{path}': {e}"))?;
        match monitor.obs_metrics() {
            Some(m) => println!(
                "checkpoint metrics (collected at obs level {}):\n\n{}",
                m.level(),
                monitor.metrics().render_text()
            ),
            None => {
                println!("checkpoint holds no metrics (collected at obs level off);");
                println!("counters only:\n\n{}", monitor.metrics().render_text());
            }
        }
        return Ok(());
    }

    let pattern_path = *pos.first().ok_or("missing pattern file (or checkpoint)")?;
    let dump_path = *pos.get(1).ok_or("missing dump file")?;
    let pattern = load_pattern(pattern_path)?;
    let mut config = monitor_config(args)?;
    if !config.obs.enabled() {
        config.obs = ObsLevel::Full;
        ocep_repro::vclock::ops::enable(true);
    }
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let mut monitor = Monitor::with_config(pattern, server.n_traces(), config);
    for e in server.store().iter_arrival() {
        let _ = monitor.observe(e);
    }
    let _ = monitor.flush_guard();
    let snapshot = monitor.metrics();
    print!("{}", snapshot.render_text());
    if let (_, Some(path)) = obs_flags(args)? {
        write_metrics(&path, &snapshot)?;
    }
    Ok(())
}

/// `ocep checkpoint` — run a monitor over (a prefix of) a dump and
/// serialize its full matching state for `check --resume`.
fn checkpoint_cmd(args: &[String]) -> Result<(), String> {
    let pos = positionals(args);
    let pattern_path = *pos.first().ok_or("missing pattern file")?;
    let dump_path = *pos.get(1).ok_or("missing dump file")?;
    let out_path = *pos.get(2).ok_or("missing output checkpoint file")?;
    let events_limit: Option<usize> = args
        .iter()
        .position(|a| a == "--events")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().map_err(|_| format!("bad --events '{s}'")))
        .transpose()?;

    let src = std::fs::read_to_string(pattern_path)
        .map_err(|e| format!("cannot read pattern file '{pattern_path}': {e}"))?;
    let pattern = Pattern::parse(&src).map_err(|e| e.to_string())?;
    let config = monitor_config(args)?;
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let mut monitor = Monitor::with_config(pattern, server.n_traces(), config);
    let mut observed = 0usize;
    for e in server.store().iter_arrival() {
        if events_limit.is_some_and(|n| observed >= n) {
            break;
        }
        let _ = monitor.observe(e);
        observed += 1;
    }
    let bytes = monitor.checkpoint(&src);
    std::fs::write(out_path, &bytes).map_err(|e| format!("cannot write '{out_path}': {e}"))?;
    println!(
        "checkpointed after {observed} of {} events: {} matches found, {} history \
         events, {} bytes -> {out_path}",
        server.store().len(),
        monitor.stats().matches_found,
        monitor.history_size(),
        bytes.len()
    );
    println!("resume with: ocep check --resume {out_path} {dump_path}");
    Ok(())
}

fn record_demo(args: &[String]) -> Result<(), String> {
    let which = args.first().ok_or("missing workload name")?;
    let out = args.get(1).ok_or("missing output file")?;
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);

    let generated = match which.as_str() {
        "deadlock" => random_walk::generate(&random_walk::Params {
            seed,
            deadlock_prob: 0.05,
            ..random_walk::Params::default()
        }),
        "race" => message_race::generate(&message_race::Params {
            seed,
            ..message_race::Params::default()
        }),
        "atomicity" => atomicity::generate(&atomicity::Params {
            seed,
            bug_prob: 0.05,
            ..atomicity::Params::default()
        }),
        "ordering" => replicated_service::generate(&replicated_service::Params {
            seed,
            bug_prob: 0.05,
            ..replicated_service::Params::default()
        }),
        other => return Err(format!("unknown workload '{other}'")),
    };
    dump::dump_to_file(generated.poet.store(), out)
        .map_err(|e| format!("cannot write '{out}': {e}"))?;
    let pattern_path = format!("{out}.pattern");
    std::fs::write(&pattern_path, &generated.pattern_src)
        .map_err(|e| format!("cannot write '{pattern_path}': {e}"))?;
    println!(
        "wrote {} events over {} traces to {out}\n\
         ({} violations injected; matching pattern written to {pattern_path})",
        generated.poet.store().len(),
        generated.n_traces,
        generated.truth.len()
    );
    println!("try: ocep check {pattern_path} {out} --stats");
    Ok(())
}

/// Renders a Fig 3-style process-time diagram: one column per trace,
/// one row per event in linearization order, with `o--->` send markers
/// and `>` receive markers labelled by type.
fn show(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing dump file")?;
    let limit: usize = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let server =
        dump::reload_from_file(path).map_err(|e| format!("cannot reload '{path}': {e}"))?;
    let store = server.store();
    let n = store.n_traces();
    let col = 14usize;

    let mut header = String::from("        ");
    for tr in 0..n {
        header.push_str(&format!("{:^col$}", format!("T{tr}")));
    }
    println!("{header}");
    println!("        {}", "-".repeat(col * n));

    for (row, e) in store.iter_arrival().enumerate() {
        if row >= limit {
            println!(
                "        ... ({} more events; raise with --limit)",
                store.len() - limit
            );
            break;
        }
        let mut line = format!("{:>6}  ", row + 1);
        for tr in 0..n {
            if e.trace().as_usize() == tr {
                let marker = match e.kind() {
                    ocep_repro::poet::EventKind::Send => format!("{}>", e.ty()),
                    ocep_repro::poet::EventKind::Receive => format!(">{}", e.ty()),
                    ocep_repro::poet::EventKind::Unary => e.ty().to_owned(),
                };
                let mut cell = marker;
                cell.truncate(col - 1);
                line.push_str(&format!("{cell:^col$}"));
            } else {
                line.push_str(&format!("{:^col$}", "|"));
            }
        }
        if let Some(p) = e.partner() {
            line.push_str(&format!("  (from {p})"));
        }
        println!("{line}");
    }
    Ok(())
}

/// Offline exhaustive statistics (the post-mortem companion of §II).
fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let pattern = load_pattern(args.first().ok_or("missing pattern file")?)?;
    let dump_path = args.get(1).ok_or("missing dump file")?;
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let report = ocep_repro::analysis::analyze(&pattern, server.store());
    print!("{report}");
    let involved = report.involved_traces();
    if !involved.is_empty() {
        let names: Vec<String> = involved.iter().map(ToString::to_string).collect();
        println!("involved traces: {}", names.join(","));
        println!("tip: ocep slice {dump_path} <out-file> {}", names.join(","));
    }
    Ok(())
}

/// Projects a dump onto selected traces (post-mortem §II workflow).
fn slice_cmd(args: &[String]) -> Result<(), String> {
    let dump_path = args.first().ok_or("missing dump file")?;
    let out_path = args.get(1).ok_or("missing output file")?;
    let spec = args.get(2).ok_or("missing trace list (e.g. T0,T3)")?;
    let keep: Vec<ocep_repro::vclock::TraceId> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .strip_prefix('T')
                .and_then(|d| d.parse::<u32>().ok())
                .map(ocep_repro::vclock::TraceId::new)
                .ok_or_else(|| format!("bad trace name '{s}' (expected T<n>)"))
        })
        .collect::<Result<_, _>>()?;
    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    for &t in &keep {
        if t.as_usize() >= server.n_traces() {
            return Err(format!("trace {t} is outside the dump"));
        }
    }
    let sliced = ocep_repro::analysis::slice(server.store(), &keep);
    dump::dump_to_file(sliced.store(), out_path)
        .map_err(|e| format!("cannot write '{out_path}': {e}"))?;
    println!(
        "sliced {} of {} events onto {} traces -> {out_path}",
        sliced.store().len(),
        server.store().len(),
        keep.len()
    );
    Ok(())
}

/// Differential conformance fuzzing (`ocep fuzz`).
fn fuzz_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::conformance as conf;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };

    if let Some(dir) = flag_val("--replay") {
        let outcome = conf::replay_dump(std::path::Path::new(dir))
            .map_err(|e| format!("cannot replay '{dir}': {e}"))?;
        match &outcome.result {
            Err(m) => println!("replay: mismatch reproduced: {m}"),
            Ok(o) => println!(
                "replay: all invariants hold (truth={}, reported={}, detected={})",
                o.truth, o.reported, o.detected
            ),
        }
        if let Some(expected) = outcome.expected {
            println!("dump recorded invariant: {expected}");
        }
        if outcome.reproduced() {
            println!("verdict: REPRODUCED");
            return Ok(0);
        }
        println!("verdict: NOT reproduced");
        return Ok(1);
    }

    let seed: u64 = flag_val("--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(0);
    let smoke = args.iter().any(|a| a == "--smoke");

    if args.iter().any(|a| a == "--faults") {
        let cases: usize = if smoke {
            400
        } else {
            flag_val("--cases")
                .map(|s| s.parse().map_err(|_| format!("bad --cases '{s}'")))
                .transpose()?
                .unwrap_or(200)
        };
        let cfg = conf::FaultFuzzConfig {
            seed,
            cases,
            max_failures: 5,
        };
        println!("fault-injection fuzzing: seed={seed} cases={cases}");
        let report = conf::run_fault_fuzz(&cfg, |i, result| {
            if let Err(m) = result {
                eprintln!("case {i}: MISMATCH {m}");
            } else if (i + 1) % 100 == 0 {
                eprintln!("  ... {} cases checked", i + 1);
            }
        });
        println!(
            "done: {} cases ({} degraded), {} with a match; injected {} duplicates, \
             {} reorders, {} drops, {} corrupt events; {} failures",
            report.cases_run,
            report.degraded_cases,
            report.detected,
            report.injected.duplicates,
            report.injected.reorders,
            report.injected.drops,
            report.injected.corrupt,
            report.failures.len()
        );
        for f in &report.failures {
            println!(
                "failure at case {} (case seed {:#x}, plan {}): {}",
                f.case_index, f.case_seed, f.plan, f.mismatch
            );
        }
        if report.failures.is_empty() {
            println!("guarded ingestion is transparent; all accounting exact");
            return Ok(0);
        }
        return Ok(1);
    }

    let cases: usize = if smoke {
        2000
    } else {
        flag_val("--cases")
            .map(|s| s.parse().map_err(|_| format!("bad --cases '{s}'")))
            .transpose()?
            .unwrap_or(500)
    };
    let dump_dir = flag_val("--dump-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| Some(std::path::PathBuf::from("fuzz-failures")));
    let (obs, metrics_path) = obs_flags(args)?;

    let cfg = conf::FuzzConfig {
        seed,
        cases,
        dump_dir,
        max_failures: 5,
        obs,
    };
    println!("fuzzing: seed={seed} cases={cases}");
    let mut checked = 0usize;
    let report = conf::run_fuzz(&cfg, |i, result| {
        checked += 1;
        if let Err(m) = result {
            eprintln!("case {i}: MISMATCH {m}");
        } else if (i + 1) % 100 == 0 {
            eprintln!("  ... {} cases checked", i + 1);
        }
    });
    println!(
        "done: {} cases, {} with a match ({} oracle assignments total), {} failures",
        report.cases_run,
        report.detected,
        report.truth_total,
        report.failures.len()
    );
    for f in &report.failures {
        println!(
            "failure at case {} (case seed {:#x}): {}",
            f.case_index, f.case_seed, f.mismatch
        );
        println!(
            "  shrunk to {} traces / {} events, pattern:\n    {}",
            f.shrunk.n_traces,
            f.shrunk.actions.len(),
            f.shrunk.pattern_src.replace('\n', "\n    ")
        );
        match &f.dump {
            Some(dir) => println!(
                "  dump: {} (re-run: ocep fuzz --replay {})",
                dir.display(),
                dir.display()
            ),
            None => println!("  dump: <not written>"),
        }
    }
    if let (Some(path), Some(metrics)) = (&metrics_path, &report.metrics) {
        write_metrics(path, metrics)?;
    }
    if report.failures.is_empty() {
        println!("all invariants hold");
        Ok(0)
    } else {
        Ok(1)
    }
}

fn sim_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::sim;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let parse = |name: &str, default: usize| -> Result<usize, String> {
        flag_val(name)
            .map(|s| s.parse().map_err(|_| format!("bad {name} '{s}'")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };

    if let Some(dir) = flag_val("--replay") {
        let replay = sim::replay_dump(std::path::Path::new(dir))
            .map_err(|e| format!("cannot replay '{dir}': {e}"))?;
        println!(
            "replay: seed={:#x} clients={} tails={} events={} crashes={} faults={:?}",
            replay.config.seed,
            replay.config.clients,
            replay.config.tails,
            replay.config.events,
            replay.config.crashes,
            replay.config.faults,
        );
        match &replay.outcome.mismatch {
            Some(m) => println!("replay: mismatch reproduced: {m}"),
            None => println!("replay: run agreed with its oracle"),
        }
        if replay.reproduced {
            println!("verdict: REPRODUCED");
            return Ok(0);
        }
        println!("verdict: NOT reproduced");
        return Ok(1);
    }

    let base_seed: u64 = flag_val("--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(0);
    let seeds = parse("--seeds", 1)?.max(1);
    let faults = if args.iter().any(|a| a == "--faults") {
        sim::FaultToggles::all()
    } else {
        sim::FaultToggles::default()
    };
    let template = sim::SimConfig {
        seed: base_seed,
        clients: parse("--clients", 4)?,
        tails: parse("--tails", 2)?,
        events: parse("--events", 96)?,
        faults,
        crashes: parse("--crashes", 0)?,
        sabotage: args.iter().any(|a| a == "--sabotage"),
        wal: args.iter().any(|a| a == "--wal"),
        wal_sabotage: args.iter().any(|a| a == "--wal-sabotage"),
        shards: parse("--shards", 0)?,
    };
    let dump_dir = flag_val("--dump-dir").map(std::path::PathBuf::from);

    println!(
        "simulating: seeds {base_seed}..{} clients={} tails={} events={} crashes={} faults={}",
        base_seed + seeds as u64,
        template.clients,
        template.tails,
        template.events,
        template.crashes,
        if template.faults.any() { "on" } else { "off" },
    );
    let mut failures = 0usize;
    for i in 0..seeds as u64 {
        let config = sim::SimConfig {
            seed: base_seed + i,
            ..template.clone()
        };
        let out = sim::run_sim(&config);
        let again = sim::run_sim(&config);
        if out.digest != again.digest {
            return Err(format!(
                "seed {:#x}: NOT bit-reproducible ({:#018x} vs {:#018x}) — \
                 the simulator itself is broken",
                config.seed, out.digest, again.digest
            ));
        }
        match &out.mismatch {
            None => println!(
                "seed {:#x}: ok digest={:#018x} steps={} verdicts={} crashes={} \
                 injected[corrupt={} dup={} reorder={} partition={} reconnect={} stall={}]",
                config.seed,
                out.digest,
                out.steps,
                out.fingerprint.verdicts.len(),
                out.crashes,
                out.injected.corrupted,
                out.injected.duplicated,
                out.injected.reordered,
                out.injected.partitions,
                out.injected.reconnects,
                out.injected.stalls,
            ),
            Some(m) => {
                failures += 1;
                println!("seed {:#x}: MISMATCH {m}", config.seed);
                let shrunk = sim::shrink_config(&config);
                println!(
                    "  shrunk to clients={} tails={} events={} crashes={} faults={:?}",
                    shrunk.clients, shrunk.tails, shrunk.events, shrunk.crashes, shrunk.faults
                );
                if let Some(dir) = &dump_dir {
                    let failure = sim::SimFailure {
                        config: shrunk,
                        mismatch: m.clone(),
                    };
                    let dump = sim::write_dump(dir, &failure)
                        .map_err(|e| format!("cannot write dump under '{}': {e}", dir.display()))?;
                    println!(
                        "  dump: {} (re-run: ocep sim --replay {})",
                        dump.display(),
                        dump.display()
                    );
                }
            }
        }
    }
    if failures == 0 {
        println!("all {seeds} seed(s) bit-reproducible and oracle-exact");
        Ok(0)
    } else {
        println!("{failures}/{seeds} seed(s) diverged from the oracle");
        Ok(1)
    }
}

fn info(path: &str) -> Result<(), String> {
    let server =
        dump::reload_from_file(path).map_err(|e| format!("cannot reload '{path}': {e}"))?;
    let store = server.store();
    println!("dump: {path}");
    println!("traces: {}", store.n_traces());
    println!("events: {}", store.len());
    let mut by_type: std::collections::BTreeMap<String, usize> = Default::default();
    for e in store.iter_arrival() {
        *by_type.entry(e.ty().to_owned()).or_default() += 1;
    }
    println!("event types:");
    for (ty, count) in by_type {
        println!("  {ty:<24} {count}");
    }
    Ok(())
}

// ------------------------------------------------------------ networking

/// `ocep serve` — run the monitor set as an OCWP daemon. Blocks until a
/// producer sends `Shutdown`, then reports with `check`-style exit
/// codes.
fn serve_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::net::{ServeConfig, Server};
    use ocep_repro::ocep::MonitorSet;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let pos = positionals(args);
    let pattern_path = *pos.first().ok_or("missing pattern file")?;
    let src = std::fs::read_to_string(pattern_path)
        .map_err(|e| format!("cannot read pattern file '{pattern_path}': {e}"))?;
    let pattern = Pattern::parse(&src).map_err(|e| e.to_string())?;
    let n_traces: usize = flag_val("--traces")
        .ok_or("serve needs --traces N (the trace count producers must announce)")?
        .parse()
        .map_err(|_| "bad --traces value".to_owned())?;
    let name = std::path::Path::new(pattern_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("pattern")
        .to_owned();

    let mut mconfig = monitor_config(args)?;
    // Admission runs once at the set level in front of every monitor;
    // the per-monitor guard slot stays empty.
    let guard = mconfig.guard.take().unwrap_or_default();
    let mut set = MonitorSet::new(n_traces);
    set.add_with_config(&name, pattern, mconfig);
    set.enable_guard(guard);

    let mut sconfig = ServeConfig::default();
    if let Some(w) = flag_val("--window") {
        sconfig.window = w.parse().map_err(|_| format!("bad --window '{w}'"))?;
    }
    if let Some(policy) = flag_val("--slow-policy") {
        sconfig.slow_policy = OverflowPolicy::from_name(policy).ok_or_else(|| {
            format!("bad --slow-policy '{policy}' (expected reject|drop-oldest|flush-degraded)")
        })?;
    }
    sconfig.pattern_sources.insert(name.clone(), src);
    if let Some(dir) = flag_val("--checkpoint") {
        sconfig.checkpoint_dir = Some(dir.into());
    }
    if let Some(dir) = flag_val("--wal") {
        sconfig.wal_dir = Some(dir.into());
    }
    if let Some(mode) = flag_val("--durability") {
        sconfig.durability = ocep_repro::wal::Durability::from_name(mode)
            .ok_or_else(|| format!("bad --durability '{mode}' (expected none|batch|strict)"))?;
    }
    if let Some(every) = flag_val("--checkpoint-every") {
        sconfig.checkpoint_every = every
            .parse()
            .map_err(|_| format!("bad --checkpoint-every '{every}'"))?;
    }
    sconfig.history_gc = args.iter().any(|a| a == "--history-gc");
    if let Some(n) = flag_val("--shards") {
        sconfig.shards = n.parse().map_err(|_| format!("bad --shards '{n}'"))?;
    }

    let addr = flag_val("--addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7070".into());
    let server =
        Server::bind(&addr, set, sconfig).map_err(|e| format!("cannot bind '{addr}': {e}"))?;
    let actual = server.addr().to_string();
    eprintln!("serving '{name}' ({n_traces} traces) on {actual}");
    if let Some(port_file) = flag_val("--port-file") {
        std::fs::write(port_file, format!("{actual}\n"))
            .map_err(|e| format!("cannot write port file '{port_file}': {e}"))?;
    }

    let report = server.join();
    if report.recovered_events > 0 {
        eprintln!(
            "recovered {} durable events from the log (last lsn {})",
            report.recovered_events, report.wal_last_lsn
        );
    }
    for (monitor, m) in &report.verdicts {
        println!("match[{monitor}]: {m}");
    }
    println!(
        "\n{} events admitted, {} matches reported, {} connections, {} frames",
        report.ingest.admitted,
        report.verdicts.len(),
        report.stats.connections,
        report.stats.frames,
    );
    for path in &report.checkpoints {
        eprintln!("checkpoint written to {}", path.display());
    }
    if let (_, Some(path)) = obs_flags(args)? {
        write_metrics(&path, &report.metrics)?;
    }
    if report.ingest.is_degraded() {
        eprintln!(
            "warning: ingestion degraded ({} quarantined, {} overflow-rejected, \
             {} overflow-dropped, {} degraded flushes) — verdicts may be incomplete",
            report.ingest.quarantined(),
            report.ingest.overflow_rejected,
            report.ingest.overflow_dropped,
            report.ingest.degraded_flushes,
        );
        return Ok(2);
    }
    Ok(if report.verdicts.is_empty() { 0 } else { 1 })
}

/// `ocep register` — add or remove (`--unregister`) tenant patterns on
/// a running daemon. Pattern names are the files' stems; the server
/// monitors each as `{tenant}/{name}`.
fn register_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::net::Client;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let pos = positionals(args);
    let addr = *pos.first().ok_or("missing server address")?;
    let tenant = *pos.get(1).ok_or("missing tenant")?;
    let files = &pos[2..];
    if files.is_empty() {
        return Err("missing pattern file(s)".into());
    }
    let n_traces: usize = flag_val("--traces")
        .ok_or("register needs --traces N (the trace count the server monitors)")?
        .parse()
        .map_err(|_| "bad --traces value".to_owned())?;
    let stem = |f: &str| -> String {
        std::path::Path::new(f)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(f)
            .to_owned()
    };
    let mut client = Client::connect(addr, n_traces, &format!("{tenant}-register"))
        .map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    let live = if args.iter().any(|a| a == "--unregister") {
        let names: Vec<String> = files.iter().map(|f| stem(f)).collect();
        client
            .unregister(tenant, &names)
            .map_err(|e| format!("unregister failed: {e}"))?
    } else {
        let mut patterns = Vec::new();
        for f in files {
            let src = std::fs::read_to_string(f)
                .map_err(|e| format!("cannot read pattern file '{f}': {e}"))?;
            patterns.push((stem(f), src));
        }
        client
            .register(tenant, &patterns)
            .map_err(|e| format!("register failed: {e}"))?
    };
    let faults = client.take_faults();
    for (code, detail) in &faults {
        eprintln!("rejected [{code}]: {detail}");
    }
    println!("tenant {tenant}: {live} live pattern(s)");
    Ok(if faults.is_empty() { 0 } else { 3 })
}

/// `ocep send` — stream a recorded dump to a running daemon as an OCWP
/// producer. Mirrors `check` exit codes using the server's report.
fn send_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::net::Client;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let pos = positionals(args);
    let addr = *pos.first().ok_or("missing server address")?;
    let dump_path = *pos.get(1).ok_or("missing dump file")?;
    let batch: usize = match flag_val("--batch") {
        Some(b) => b.parse().map_err(|_| format!("bad --batch '{b}'"))?,
        None => 64,
    };
    let name = flag_val("--name").map_or("ocep-send", String::as_str);

    let server = dump::reload_from_file(dump_path)
        .map_err(|e| format!("cannot reload '{dump_path}': {e}"))?;
    let all_events: Vec<_> = server.store().iter_arrival().cloned().collect();
    let mut client = Client::connect(addr, server.n_traces(), name)
        .map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    // A durable-log server tells a named session how much of its stream
    // already survived a crash; re-sending that prefix would be wasted
    // wire bytes (the guard would dedup it all anyway).
    let skip = usize::try_from(client.resume_from())
        .unwrap_or(usize::MAX)
        .min(all_events.len());
    if skip > 0 {
        eprintln!("session '{name}' resumed: {skip} events already durable at {addr}, skipping");
    }
    let events = &all_events[skip..];
    let stream = |client: &mut Client| -> Result<(), ocep_repro::net::WireError> {
        if batch <= 1 {
            for e in events {
                client.send_event(e)?;
            }
        } else {
            for chunk in events.chunks(batch) {
                client.send_batch(chunk)?;
            }
        }
        client.flush()
    };
    stream(&mut client).map_err(|e| format!("stream to '{addr}' failed: {e}"))?;

    let shutdown = args.iter().any(|a| a == "--shutdown");
    let stats = if shutdown {
        client
            .shutdown()
            .map_err(|e| format!("shutdown handshake failed: {e}"))?
    } else {
        let s = client
            .stats()
            .map_err(|e| format!("stats request failed: {e}"))?;
        for (code, detail) in client.take_faults() {
            eprintln!("fault[{code}]: {detail}");
        }
        s
    };
    println!(
        "sent {} events to {addr}; server: {} admitted, {} quarantined, {} duplicates, \
         {} matches{}",
        events.len(),
        stats.admitted,
        stats.quarantined,
        stats.duplicates,
        stats.matches,
        if shutdown { " (server shut down)" } else { "" },
    );
    if stats.degraded {
        eprintln!("warning: server ingestion degraded — verdicts may be incomplete");
        return Ok(2);
    }
    Ok(if stats.matches > 0 { 1 } else { 0 })
}

/// `ocep ingest` — turn an external recording into an admissible event
/// stream via `crates/adapters`, then either match `--pattern` files
/// over it offline (one monitor per file, named by its stem) or stream
/// it to a running daemon with `--addr`, mirroring `send`.
fn ingest_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::adapters;
    use ocep_repro::ocep::MonitorSet;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let pos = positionals(args);
    let format = *pos.first().ok_or("missing recording format")?;
    let file = *pos.get(1).ok_or("missing recording file")?;
    let adapter = adapters::by_name(format).ok_or_else(|| {
        format!(
            "unknown recording format '{format}' (expected {})",
            adapters::FORMATS.join("|")
        )
    })?;
    let input = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read recording '{file}': {e}"))?;
    let out = adapter
        .parse_str(&input)
        .map_err(|e| format!("{file}: {e}"))?;
    let a = out.stats;
    eprintln!(
        "ingested {file} ({format}): {} records -> {} events across {} traces \
         ({} message edges, {} synthesized)",
        a.records, a.events, out.n_traces, a.edges, a.synthesized,
    );
    let batch: usize = match flag_val("--batch") {
        Some(b) => b.parse().map_err(|_| format!("bad --batch '{b}'"))?,
        None => 256,
    };

    if let Some(addr) = flag_val("--addr") {
        use ocep_repro::net::Client;
        let name = flag_val("--name").map_or("ocep-ingest", String::as_str);
        let mut client = Client::connect(addr, out.n_traces, name)
            .map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
        let skip = usize::try_from(client.resume_from())
            .unwrap_or(usize::MAX)
            .min(out.events.len());
        if skip > 0 {
            eprintln!(
                "session '{name}' resumed: {skip} events already durable at {addr}, skipping"
            );
        }
        let events = &out.events[skip..];
        let stream = |client: &mut Client| -> Result<(), ocep_repro::net::WireError> {
            for chunk in events.chunks(batch.max(1)) {
                client.send_batch(chunk)?;
            }
            client.flush()
        };
        stream(&mut client).map_err(|e| format!("stream to '{addr}' failed: {e}"))?;
        let shutdown = args.iter().any(|a| a == "--shutdown");
        let stats = if shutdown {
            client
                .shutdown()
                .map_err(|e| format!("shutdown handshake failed: {e}"))?
        } else {
            let s = client
                .stats()
                .map_err(|e| format!("stats request failed: {e}"))?;
            for (code, detail) in client.take_faults() {
                eprintln!("fault[{code}]: {detail}");
            }
            s
        };
        println!(
            "sent {} events to {addr}; server: {} admitted, {} quarantined, {} duplicates, \
             {} matches{}",
            events.len(),
            stats.admitted,
            stats.quarantined,
            stats.duplicates,
            stats.matches,
            if shutdown { " (server shut down)" } else { "" },
        );
        if stats.degraded {
            eprintln!("warning: server ingestion degraded — verdicts may be incomplete");
            return Ok(2);
        }
        return Ok(if stats.matches > 0 { 1 } else { 0 });
    }

    // Offline: one monitor per --pattern file. With none, `ingest` is a
    // pure validation pass — parse, synthesize clocks, admit, report.
    let patterns: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(_, val)| *val == "--pattern")
        .filter_map(|(i, _)| args.get(i + 1))
        .collect();
    let mut mconfig = monitor_config(args)?;
    let guard = mconfig.guard.take().unwrap_or_default();
    let mut set = MonitorSet::new(out.n_traces);
    for p in &patterns {
        let pattern = load_pattern(p)?;
        let name = std::path::Path::new(p.as_str())
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("pattern")
            .to_owned();
        set.add_with_config(&name, pattern, mconfig);
    }
    set.enable_guard(guard);

    let mut reported = 0usize;
    for chunk in out.events.chunks(batch.max(1)) {
        for (monitor, m) in set.observe_raw_batch(chunk) {
            println!("match[{monitor}]: {m}");
            reported += 1;
        }
    }
    for (monitor, m) in set.flush_guard() {
        println!("match[{monitor}]: {m}");
        reported += 1;
    }
    let istats = set.ingest_stats();
    println!(
        "\n{} events admitted, {reported} matches, {} monitor(s)",
        istats.admitted,
        patterns.len(),
    );
    if istats.is_degraded() {
        eprintln!(
            "warning: ingestion degraded ({} quarantined, {} overflow-rejected, \
             {} overflow-dropped, {} degraded flushes) — verdicts may be incomplete",
            istats.quarantined(),
            istats.overflow_rejected,
            istats.overflow_dropped,
            istats.degraded_flushes,
        );
        return Ok(2);
    }
    Ok(if reported > 0 { 1 } else { 0 })
}

/// `ocep tail` — subscribe to a daemon's verdict stream. `--once` exits
/// after the first match; otherwise runs until the server shuts down.
fn tail_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::net::{Frame, Tail, WireError};

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let pos = positionals(args);
    let addr = *pos.first().ok_or("missing server address")?;
    let once = args.iter().any(|a| a == "--once");
    let name = flag_val("--name").map_or("ocep-tail", String::as_str);
    let from: Option<u64> = match flag_val("--from") {
        Some(f) => Some(f.parse().map_err(|_| format!("bad --from '{f}'"))?),
        None => None,
    };

    let mut tail = match flag_val("--tenant") {
        Some(tenant) => Tail::connect_tenant(addr, name, tenant, from),
        None => Tail::connect_from(addr, name, from),
    }
    .map_err(|e| format!("cannot connect to '{addr}': {e}"))?;
    // Readiness marker: scripts (and our own tests) wait for this line
    // before streaming events, so no verdict can race the subscription.
    eprintln!("subscribed to {addr}");
    let mut seen = 0usize;
    loop {
        match tail.next() {
            Ok(Frame::Verdict(v)) => {
                let cells: Vec<String> = v
                    .bindings
                    .iter()
                    .map(|(t, i)| format!("T{t}@{i}"))
                    .collect();
                println!("match[{}]: {}", v.monitor, cells.join(" "));
                seen += 1;
                if once {
                    break;
                }
            }
            Ok(Frame::VerdictAt { lsn, verdict: v }) => {
                // Backlog replayed from the durable log: same line shape
                // as a live verdict, annotated with its log position.
                let cells: Vec<String> = v
                    .bindings
                    .iter()
                    .map(|(t, i)| format!("T{t}@{i}"))
                    .collect();
                println!("match[{}]@{}: {}", v.monitor, lsn, cells.join(" "));
                seen += 1;
                if once {
                    break;
                }
            }
            Ok(Frame::Fault { code, detail }) => eprintln!("fault[{code}]: {detail}"),
            Ok(Frame::StatsReport(s)) => {
                eprintln!(
                    "server shut down: {} admitted, {} matches",
                    s.admitted, s.matches
                );
                break;
            }
            Ok(_) => {}
            Err(WireError::Closed) => break,
            // The read timeout just means no verdict arrived yet; keep
            // following the stream.
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(format!("tail stream from '{addr}' failed: {e}")),
        }
    }
    Ok(if seen > 0 { 1 } else { 0 })
}

/// `ocep replay` — run a pattern over a durable event log after the
/// fact. The pattern need not be the one the server was running when
/// the log was written: the log records raw admitted deliveries, so any
/// pattern can be compiled against history. Reads the log read-only
/// (tolerating a torn tail, which is reported on stderr) and feeds
/// every delivery through the same admission-guard path as `serve`.
fn replay_cmd(args: &[String]) -> Result<i32, String> {
    use ocep_repro::net::engine::{decode_deliver, decode_watermark};
    use ocep_repro::ocep::MonitorSet;
    use ocep_repro::wal;

    let flag_val = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let pos = positionals(args);
    let pattern_path = *pos.first().ok_or("missing pattern file")?;
    let dir = *pos.get(1).ok_or("missing log directory")?;
    let pattern = load_pattern(pattern_path)?;
    let name = std::path::Path::new(pattern_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("pattern")
        .to_owned();

    let recovery = wal::scan(std::path::Path::new(dir))
        .map_err(|e| format!("cannot read log '{dir}': {e}"))?;
    if let Some(torn) = &recovery.torn {
        eprintln!("warning: {torn} — replaying the intact prefix only");
    }

    // The log stores raw events, so the trace count can be read off the
    // first delivery's clock; `--traces` overrides (e.g. for an empty log).
    let mut n_traces: Option<usize> = match flag_val("--traces") {
        Some(t) => Some(t.parse().map_err(|_| format!("bad --traces '{t}'"))?),
        None => None,
    };
    if n_traces.is_none() {
        for rec in &recovery.records {
            if rec.rtype == wal::REC_DELIVER {
                let (_, e) = decode_deliver(&rec.payload)
                    .map_err(|e| format!("log record {} undecodable: {e}", rec.lsn))?;
                n_traces = Some(e.clock().len());
                break;
            }
        }
    }
    let n_traces = n_traces.ok_or("log holds no deliveries; pass --traces N")?;

    let mut mconfig = monitor_config(args)?;
    let guard = mconfig.guard.take().unwrap_or_default();
    let mut set = MonitorSet::new(n_traces);
    set.add_with_config(&name, pattern, mconfig);
    set.enable_guard(guard);

    let mut reported = 0usize;
    let mut delivered = 0u64;
    for rec in &recovery.records {
        let verdicts = match rec.rtype {
            wal::REC_DELIVER => {
                let (_, e) = decode_deliver(&rec.payload)
                    .map_err(|e| format!("log record {} undecodable: {e}", rec.lsn))?;
                delivered += 1;
                set.observe_raw(&e)
            }
            wal::REC_FLUSH => set.flush_guard(),
            wal::REC_WATERMARK => {
                // Replaying the server's GC decisions keeps replay memory
                // bounded by the same watermark rule; verdicts are
                // unaffected (the guard admits in the same order).
                let (keep, watermark) = decode_watermark(&rec.payload)
                    .map_err(|e| format!("log record {} undecodable: {e}", rec.lsn))?;
                set.gc_histories(&watermark, keep);
                Vec::new()
            }
            // Checkpoints anchor *serve* restarts; a from-scratch replay
            // recomputes everything, so they carry no new information.
            _ => Vec::new(),
        };
        for (monitor, m) in verdicts {
            println!("match[{monitor}]: {m}");
            reported += 1;
        }
    }
    for (monitor, m) in set.flush_guard() {
        println!("match[{monitor}]: {m}");
        reported += 1;
    }
    let stats = set.ingest_stats();
    println!(
        "\nreplayed {} deliveries ({} records, {} segments) from '{dir}': \
         {} admitted, {reported} matches",
        delivered,
        recovery.records.len(),
        recovery.segments,
        stats.admitted,
    );
    Ok(if reported > 0 { 1 } else { 0 })
}
