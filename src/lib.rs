//! # OCEP — Online Causal-Event-Pattern Matching
//!
//! Umbrella crate for the reproduction of *"Towards an Efficient Online
//! Causal-Event-Pattern-Matching Framework"* (ICDCS 2013). It re-exports
//! the public API of every workspace crate so examples and downstream
//! users need a single dependency.
//!
//! * [`vclock`] — vector clocks and the causality algebra (§III).
//! * [`poet`] — the POET-style partial-order event tracer (§V-A).
//! * [`simulator`] — deterministic workload simulator (§V-B/C).
//! * [`pattern`] — the causal pattern language and pattern tree (§III/IV-A).
//! * [`ocep`] — the online matching engine itself (§IV).
//! * [`adapters`] — real-stream ingestion adapters (`ocep ingest`):
//!   OTLP-style span recordings, MPI traces, and agent-session
//!   recordings mapped onto traces/events with synthesized Fidge
//!   clocks.
//! * [`baselines`] — sliding-window / naive / dependency-graph baselines.
//! * [`analysis`] — post-mortem companion: trace slicing, offline stats.
//! * [`conformance`] — differential fuzzing harness (`ocep fuzz`):
//!   seeded pattern/execution generators, oracle cross-checks,
//!   shrinking, replayable failure dumps.
//! * [`sim`] — deterministic whole-system simulator (`ocep sim`,
//!   VOPR-style): drives the real serving engine over simulated
//!   transports in virtual time under seeded faults and crash/restart,
//!   with a journal-replay oracle demanding bit-identical conclusions.
//! * [`bench`] — the evaluation harness (§V figures) and the std-only
//!   JSON serializer backing the metrics exporters.
//!
//! # Quickstart
//!
//! ```
//! use ocep_repro::pattern::Pattern;
//! use ocep_repro::ocep::Monitor;
//! use ocep_repro::poet::{EventKind, PoetServer};
//! use ocep_repro::vclock::TraceId;
//!
//! // A two-trace computation: trace 0 sends, trace 1 receives, and we
//! // watch for the pattern "a Ping send happens before a Pong event".
//! let pattern = Pattern::parse(
//!     r#"
//!     Ping := [*, ping, *];
//!     Pong := [*, pong, *];
//!     pattern := Ping -> Pong;
//!     "#,
//! )
//! .expect("pattern parses");
//!
//! let mut poet = PoetServer::new(2);
//! let mut monitor = Monitor::new(pattern, 2);
//!
//! let ping = poet.record(TraceId::new(0), EventKind::Send, "ping", "");
//! let _recv = poet.record_receive(TraceId::new(1), ping.id(), "deliver", "");
//! let pong = poet.record(TraceId::new(1), EventKind::Unary, "pong", "");
//!
//! let mut matches = Vec::new();
//! for ev in poet.linearization() {
//!     matches.extend(monitor.observe(&ev));
//! }
//! assert_eq!(matches.len(), 1);
//! assert!(matches[0].binding_for("Ping").unwrap().id() == ping.id());
//! assert!(matches[0].binding_for("Pong").unwrap().id() == pong.id());
//! ```

#![forbid(unsafe_code)]

pub use ocep_adapters as adapters;
pub use ocep_analysis as analysis;
pub use ocep_baselines as baselines;
pub use ocep_bench as bench;
pub use ocep_conformance as conformance;
pub use ocep_core as ocep;
pub use ocep_net as net;
pub use ocep_pattern as pattern;
pub use ocep_poet as poet;
pub use ocep_sim as sim;
pub use ocep_simulator as simulator;
pub use ocep_vclock as vclock;
pub use ocep_wal as wal;
