//! §V-C2: online message-race detection with the monitor running as a
//! *client* of the tracer on its own thread, exactly like the paper's
//! architecture (OCEP connects to POET and receives events in a
//! linearization of the partial order).
//!
//! Run with:
//! ```text
//! cargo run --release --example race_detector
//! ```

use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::Pattern;
use ocep_repro::poet::PoetServer;
use ocep_repro::simulator::workloads::message_race;
use ocep_repro::vclock::TraceId;

fn main() {
    // Generate the §V-C2 benchmark program: every process but one sends
    // concurrently to process 0, which accepts with a wildcard receive.
    let params = message_race::Params {
        n_processes: 8,
        messages_per_sender: 25,
        seed: 99,
    };
    let generated = message_race::generate(&params);
    println!(
        "workload: {} senders -> 1 ANY_SOURCE receiver, {} events, \
         {} racing pairs in the ground truth\n",
        params.n_processes - 1,
        generated.poet.store().len(),
        generated.truth.len()
    );

    // Re-serve the recorded computation through a live server so the
    // monitor can consume it from a subscription on another thread.
    let mut server = PoetServer::new(generated.n_traces);
    let subscription = server.subscribe();
    let n_traces = generated.n_traces;
    let pattern_src = generated.pattern_src.clone();

    let monitor_thread = std::thread::spawn(move || {
        let pattern = Pattern::parse(&pattern_src).expect("valid pattern");
        let mut monitor = Monitor::with_config(
            pattern,
            n_traces,
            MonitorConfig {
                policy: SubsetPolicy::Representative,
                ..MonitorConfig::default()
            },
        );
        let mut reports = Vec::new();
        for event in subscription {
            for m in monitor.observe(&event) {
                let s1 = m.binding_for("$s1").expect("bound");
                let s2 = m.binding_for("$s2").expect("bound");
                reports.push(format!(
                    "race: sends {} ({}) || {} ({}) into {}",
                    s1.id(),
                    s1.trace(),
                    s2.id(),
                    s2.trace(),
                    m.binding_for("R1").expect("bound").trace()
                ));
            }
        }
        (reports, *monitor.stats())
    });

    // Replay the recorded actions through the live server.
    for event in generated.poet.store().iter_arrival() {
        match event.partner() {
            Some(sender) => {
                server.record_receive(event.trace(), sender, event.ty(), event.text());
            }
            None => {
                server.record(event.trace(), event.kind(), event.ty(), event.text());
            }
        }
    }
    drop(server); // close the stream

    let (reports, stats) = monitor_thread.join().expect("monitor thread");
    for r in &reports {
        println!("{r}");
    }
    println!("\nrepresentative reports: {}", reports.len());
    println!("total racing matches:   {}", stats.matches_found);
    println!("monitor stats:          {stats}");

    // Every sender that races is represented within the bounded subset.
    let k = 4; // pattern leaves
    assert!(reports.len() <= k * n_traces);
    let mut racing: Vec<TraceId> = generated
        .truth
        .iter()
        .flat_map(|v| v.traces.iter().copied())
        .collect();
    racing.sort_unstable();
    racing.dedup();
    println!("distinct racing senders: {}", racing.len());
}
