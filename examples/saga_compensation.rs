//! Saga-compensation-missing: a distributed order saga where a failed
//! debit must be compensated (`order_cancelled`) before anything else
//! happens to the order — but a buggy coordinator occasionally lets the
//! confirmation path run anyway.
//!
//! The curated pattern is *positive*: it fires when a `debit_failed`
//! span causally precedes `order_confirmed` for the same order (`$o`).
//! A failure that was properly compensated never confirms, so it never
//! matches. The input is the committed OTLP span export
//! `examples/fixtures/saga_spans.jsonl`, read through the `otlp`
//! ingestion adapter and cross-checked against its pinned-seed
//! generator for ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release --example saga_compensation
//! ```

use ocep_repro::adapters::testgen::fixtures;
use ocep_repro::adapters::{self, Adapter as _};
use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::Pattern;

fn fixture(rel: &str) -> String {
    let path = format!("{}/examples/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn main() {
    let text = fixture("saga_spans.jsonl");
    let expected = fixtures::saga();
    assert_eq!(
        text, expected.text,
        "committed fixture matches its generator"
    );

    let out = adapters::otlp::OtlpAdapter
        .parse_str(&text)
        .expect("committed fixture parses");
    println!(
        "ingested saga_spans.jsonl: {} spans -> {} events on {} services ({}); \
         {} failed debits were never compensated\n",
        out.stats.records,
        out.events.len(),
        out.n_traces,
        out.trace_names.join(", "),
        expected.truth
    );
    let pattern_src = fixture("saga_compensation.pat");
    println!("pattern under watch:\n{pattern_src}\n");
    let pattern = Pattern::parse(&pattern_src).expect("committed pattern parses");

    let mut monitor = Monitor::with_config(
        pattern,
        out.n_traces,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );

    let mut detected = 0;
    for event in &out.events {
        for m in monitor.observe(event) {
            detected += 1;
            let order = m.binding_for("Confirm").expect("bound").text().to_owned();
            println!(
                "MISSING COMPENSATION: {order} confirmed despite a failed debit \
                 — order_cancelled never ran"
            );
        }
    }

    println!("\nuncompensated failures injected: {}", expected.truth);
    println!("detections:                      {detected}");
    println!("monitor stats: {}", monitor.stats());
    assert_eq!(
        detected, expected.truth,
        "exactly the uncompensated failures must be detected"
    );
}
