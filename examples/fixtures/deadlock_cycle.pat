S0 := [$p0, mpi_block_send, $p1];
S1 := [$p1, mpi_block_send, $p2];
S2 := [$p2, mpi_block_send, $p0];
S0 $s0;
S1 $s1;
S2 $s2;
pattern := $s0 || $s1 && $s0 || $s2 && $s1 || $s2;