Fail    := [*, debit_failed, $o];
Confirm := [*, order_confirmed, $o];
pattern := Fail -> Confirm;
