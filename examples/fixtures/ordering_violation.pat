Synch    := [$l, synch_leader, $f];
Snapshot := [$l, take_snapshot, $f];
Update   := [$l, make_update, *];
Receive  := [*, recv_snapshot, $f];
Snapshot $diff;
Update $write;
pattern := (Synch -> $diff) && ($diff -> $write) && ($write -> Receive);