Spawn := [$a, spawn, $b];
Write := [$a, kv_put, $k];
Read  := [$b, kv_get, $k];
Read $r;
pattern := (Spawn -> $r) && (Write || $r);
