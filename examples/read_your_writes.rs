//! Read-your-writes breach across an agent-session hand-off: a parent
//! session writes a key, spawns a worker, and the worker reads the key
//! — but a buggy parent occasionally writes *after* the hand-off, so
//! the worker's read is concurrent with the write it was supposed to
//! observe.
//!
//! The curated pattern chains the spawn's target trace to the reader's
//! process position through `$b` (the same variable trick the MPI
//! deadlock patterns use for send destinations) and correlates the key
//! through `$k`; it fires exactly when the hand-off reached the child
//! (`Spawn -> Read`) but the write did not (`Write || Read`). The input
//! is the committed session recording
//! `examples/fixtures/session_handoff.jsonl`, read through the
//! `session` ingestion adapter and cross-checked against its
//! pinned-seed generator for ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release --example read_your_writes
//! ```

use ocep_repro::adapters::testgen::fixtures;
use ocep_repro::adapters::{self, Adapter as _};
use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::Pattern;

fn fixture(rel: &str) -> String {
    let path = format!("{}/examples/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn main() {
    let text = fixture("session_handoff.jsonl");
    let expected = fixtures::session_handoff();
    assert_eq!(
        text, expected.text,
        "committed fixture matches its generator"
    );

    let out = adapters::session::SessionAdapter
        .parse_str(&text)
        .expect("committed fixture parses");
    println!(
        "ingested session_handoff.jsonl: {} records -> {} events on {} sessions; \
         {} hand-offs breached read-your-writes\n",
        out.stats.records,
        out.events.len(),
        out.n_traces,
        expected.truth
    );
    let pattern_src = fixture("read_your_writes.pat");
    println!("pattern under watch:\n{pattern_src}\n");
    let pattern = Pattern::parse(&pattern_src).expect("committed pattern parses");

    let mut monitor = Monitor::with_config(
        pattern,
        out.n_traces,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );

    let mut detected = 0;
    for event in &out.events {
        for m in monitor.observe(event) {
            detected += 1;
            let reader = m.binding_for("$r").expect("bound").trace();
            let key = m.binding_for("$r").expect("bound").text().to_owned();
            let worker = out.trace_names[reader.as_usize()].clone();
            println!(
                "STALE READ: {worker} read '{key}' concurrently with the parent's \
                 write — the hand-off did not carry it"
            );
        }
    }

    println!("\nbreaches injected: {}", expected.truth);
    println!("detections:        {detected}");
    println!("monitor stats: {}", monitor.stats());
    assert_eq!(
        detected, expected.truth,
        "exactly the injected breaches must be detected"
    );
}
