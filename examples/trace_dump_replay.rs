//! §V-B methodology: record a computation once, *dump* the collected
//! trace-event data to a file, then *reload* it through the same
//! interface used for live collection and monitor the replay — the
//! paper's evaluation pipeline end to end.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_dump_replay
//! ```

use ocep_repro::ocep::Monitor;
use ocep_repro::poet::dump;
use ocep_repro::simulator::workloads::atomicity::{self, Params};

fn main() {
    // 1. Record: the §V-C3 μC++-style workload — a semaphore-protected
    //    method where 1 % of acquires silently fail.
    let params = Params {
        n_threads: 6,
        rounds_per_thread: 60,
        bug_prob: 0.01,
        seed: 4,
    };
    let generated = atomicity::generate(&params);
    println!(
        "recorded {} events from {} threads (+1 semaphore trace), \
         {} unprotected entries injected",
        generated.poet.store().len(),
        params.n_threads,
        generated.truth.len()
    );

    // 2. Dump to a file.
    let path = std::env::temp_dir().join("ocep-atomicity.poet");
    dump::dump_to_file(generated.poet.store(), &path).expect("dump succeeds");
    let size = std::fs::metadata(&path).expect("file exists").len();
    println!("dumped to {} ({size} bytes)", path.display());

    // 3. Reload: the saved events are replayed through a fresh server via
    //    the same ingest interface; vector timestamps are re-derived.
    let reloaded = dump::reload_from_file(&path).expect("reload succeeds");
    assert!(
        reloaded.store().content_eq(generated.poet.store()),
        "reload must reproduce the computation exactly"
    );
    println!(
        "reloaded {} events, timestamps re-derived",
        reloaded.store().len()
    );

    // 4. Monitor the replayed stream.
    let mut monitor = Monitor::new(generated.pattern(), generated.n_traces);
    let mut detections = 0;
    for event in reloaded.store().iter_arrival() {
        for m in monitor.observe(event) {
            detections += 1;
            println!(
                "ATOMICITY VIOLATION: {} || {}",
                m.binding_for("E1").expect("bound").id(),
                m.binding_for("E2").expect("bound").id()
            );
        }
    }
    println!("\ninjected: {}", generated.truth.len());
    println!("reported: {detections} (representative subset)");
    println!("found:    {}", monitor.stats().matches_found);
    assert!(monitor.stats().matches_found > 0 || generated.truth.is_empty());

    std::fs::remove_file(&path).ok();
}
