//! The §III-D motivating example: ZooKeeper bug #962, where a leader was
//! not blocked from making an update after taking a snapshot for a
//! restarting follower — so the follower occasionally received stale
//! service data.
//!
//! This example simulates a leader with many followers (1 % of synch
//! rounds hit the bug), monitors the §III-D pattern online, and prints
//! every stale-snapshot delivery with the victim follower isolated by
//! the pattern's variable binding.
//!
//! Run with:
//! ```text
//! cargo run --release --example zookeeper_ordering_bug
//! ```

use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::simulator::workloads::replicated_service::{self, Params};

fn main() {
    let params = Params {
        n_followers: 20,
        synchs_per_follower: 40,
        bug_prob: 0.01,
        seed: 2013,
    };
    println!(
        "simulating a replicated service: 1 leader, {} followers, {} synch rounds each",
        params.n_followers, params.synchs_per_follower
    );
    let generated = replicated_service::generate(&params);
    println!(
        "recorded {} events; {} rounds hit the injected bug\n",
        generated.poet.store().len(),
        generated.truth.len()
    );
    println!("pattern under watch:\n{}\n", generated.pattern_src);

    let mut monitor = Monitor::with_config(
        generated.pattern(),
        generated.n_traces,
        MonitorConfig {
            // Alert on every buggy round, not just the first per victim.
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );

    let mut detected = 0;
    for event in generated.poet.store().iter_arrival() {
        for m in monitor.observe(event) {
            detected += 1;
            let victim = m.binding_for("Receive").expect("bound").trace();
            let token = m.binding_for("Receive").expect("bound").text().to_owned();
            let update = m.binding_for("$write").expect("bound").text().to_owned();
            println!(
                "STALE SNAPSHOT: follower {victim} (round {token}) missed '{update}' \
                 — update committed after its snapshot was taken"
            );
        }
    }

    println!("\ninjected bugs: {}", generated.truth.len());
    println!("detections:    {detected}");
    println!("monitor stats: {}", monitor.stats());
    assert!(
        detected >= generated.truth.len(),
        "every injected bug must be detected"
    );
}
