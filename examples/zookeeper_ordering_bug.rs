//! The §III-D motivating example: ZooKeeper bug #962, where a leader was
//! not blocked from making an update after taking a snapshot for a
//! restarting follower — so the follower occasionally received stale
//! service data.
//!
//! Here the bug is hunted in an OTLP-style span export: the committed
//! recording `examples/fixtures/zookeeper_spans.jsonl` is read back
//! through the `otlp` ingestion adapter (service -> trace, parent edges
//! -> happens-before), exactly as `ocep ingest otlp` would read a real
//! trace export. The recording is pinned-seed generated, so the example
//! cross-checks it against its generator to recover the ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release --example zookeeper_ordering_bug
//! ```

use ocep_repro::adapters::testgen::fixtures;
use ocep_repro::adapters::{self, Adapter as _};
use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::Pattern;

fn fixture(rel: &str) -> String {
    let path = format!("{}/examples/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn main() {
    let text = fixture("zookeeper_spans.jsonl");
    let expected = fixtures::zookeeper();
    assert_eq!(
        text, expected.text,
        "committed fixture matches its generator"
    );

    let out = adapters::otlp::OtlpAdapter
        .parse_str(&text)
        .expect("committed fixture parses");
    println!(
        "ingested zookeeper_spans.jsonl: {} spans -> {} events on {} services \
         ({}); {} synch rounds hit the injected bug\n",
        out.stats.records,
        out.events.len(),
        out.n_traces,
        out.trace_names.join(", "),
        expected.truth
    );
    let pattern_src = fixture("ordering_violation.pat");
    println!("pattern under watch:\n{pattern_src}\n");
    let pattern = Pattern::parse(&pattern_src).expect("committed pattern parses");

    let mut monitor = Monitor::with_config(
        pattern,
        out.n_traces,
        MonitorConfig {
            // Alert on every buggy round, not just the first per victim.
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );

    let mut detected = 0;
    for event in &out.events {
        for m in monitor.observe(event) {
            detected += 1;
            let victim = m.binding_for("Receive").expect("bound").trace();
            let token = m.binding_for("Receive").expect("bound").text().to_owned();
            let update = m.binding_for("$write").expect("bound").text().to_owned();
            println!(
                "STALE SNAPSHOT: follower {victim} (round {token}) missed '{update}' \
                 — update committed after its snapshot was taken"
            );
        }
    }

    println!("\ninjected bugs: {}", expected.truth);
    println!("detections:    {detected}");
    println!("monitor stats: {}", monitor.stats());
    assert_eq!(
        detected, expected.truth,
        "exactly the injected bugs must be detected"
    );
}
