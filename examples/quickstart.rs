//! Quickstart: define a causal event-pattern, record a tiny distributed
//! computation, and watch OCEP report matches online.
//!
//! The scenario is the paper's introduction example: a traffic-light
//! system where lights in only one direction may be green — expressed as
//! the *unsafe* pattern "two green events happen concurrently".
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use ocep_repro::ocep::Monitor;
use ocep_repro::pattern::Pattern;
use ocep_repro::poet::{EventKind, PoetServer};
use ocep_repro::vclock::TraceId;

fn main() {
    // 1. The pattern: each class is [process, type, text]; `||` is
    //    causal concurrency. A match means the system *could* have both
    //    lights green at once — a safety violation.
    let pattern = Pattern::parse(
        r#"
        North := [T0, green, *];
        East  := [T1, green, *];
        pattern := North || East;
        "#,
    )
    .expect("pattern is well-formed");

    // 2. The tracer (our POET substrate) assigns vector timestamps; the
    //    monitored application records plain events.
    let mut poet = PoetServer::new(2);
    let mut monitor = Monitor::new(pattern, 2);

    let north = TraceId::new(0);
    let east = TraceId::new(1);

    // Correct handoff: north goes red and *tells* east before it goes
    // green — the green events are causally ordered, no match.
    poet.record(north, EventKind::Unary, "green", "cycle-1");
    let handoff = poet.record(north, EventKind::Send, "red", "handoff");
    poet.record_receive(east, handoff.id(), "red", "handoff");
    poet.record(east, EventKind::Unary, "green", "cycle-1");

    // Faulty controller: east goes green again without waiting for the
    // handoff — concurrent greens.
    poet.record(north, EventKind::Unary, "green", "cycle-2");
    poet.record(east, EventKind::Unary, "green", "cycle-2");

    // 3. Drive the monitor with the linearized stream.
    let mut violations = 0;
    for event in poet.linearization() {
        for m in monitor.observe(&event) {
            violations += 1;
            println!("UNSAFE: concurrent greens detected: {m}");
            println!(
                "        north event {} || east event {}",
                m.binding_for("North").expect("bound").id(),
                m.binding_for("East").expect("bound").id(),
            );
        }
    }

    println!("\nevents observed:  {}", monitor.stats().events);
    println!("searches run:     {}", monitor.stats().searches);
    println!("violations found: {violations}");
    assert_eq!(violations, 1, "exactly the faulty cycle must match");
}
