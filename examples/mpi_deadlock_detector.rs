//! §V-C1: detecting blocking-send deadlock cycles in an MPI-style
//! parallel random-walk application, and comparing the causal-pattern
//! approach with a classic wait-for dependency-graph detector running on
//! the same event stream.
//!
//! The event stream is no simulation artifact: it is the committed
//! recording `examples/fixtures/mpi_deadlock.trace`, read back through
//! the `mpi` ingestion adapter exactly as `ocep ingest mpi` would read
//! a real trace file. The recording is pinned-seed generated, so the
//! example cross-checks it against its generator to recover the ground
//! truth (how many deadlock episodes were injected).
//!
//! Run with:
//! ```text
//! cargo run --release --example mpi_deadlock_detector
//! ```

use ocep_repro::adapters::testgen::fixtures;
use ocep_repro::adapters::{self, Adapter as _};
use ocep_repro::baselines::DepGraphDetector;
use ocep_repro::ocep::Monitor;
use ocep_repro::pattern::Pattern;

fn fixture(rel: &str) -> String {
    let path = format!("{}/examples/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn main() {
    let text = fixture("mpi_deadlock.trace");
    let expected = fixtures::mpi_deadlock();
    assert_eq!(
        text, expected.text,
        "committed fixture matches its generator"
    );

    let out = adapters::mpi::MpiAdapter
        .parse_str(&text)
        .expect("committed fixture parses");
    println!(
        "ingested mpi_deadlock.trace: {} records -> {} events on {} ranks; \
         {} deadlock episodes injected\n",
        out.stats.records,
        out.events.len(),
        out.n_traces,
        expected.truth
    );
    let pattern_src = fixture("deadlock_cycle.pat");
    println!("cycle pattern:\n{pattern_src}\n");
    let pattern = Pattern::parse(&pattern_src).expect("committed pattern parses");

    // OCEP: the causal pattern of pairwise-concurrent blocked sends whose
    // destinations chain into a cycle.
    let mut monitor = Monitor::new(pattern, out.n_traces);
    // Baseline: incremental wait-for-graph cycle search.
    let mut depgraph = DepGraphDetector::new(out.n_traces);

    let mut ocep_detections = 0;
    let mut graph_detections = 0;
    for event in &out.events {
        for m in monitor.observe(event) {
            ocep_detections += 1;
            let members: Vec<String> = m.events().iter().map(|e| e.trace().to_string()).collect();
            println!("OCEP     : deadlock cycle {}", members.join(" -> "));
        }
        if let Some(cycle) = depgraph.observe(event) {
            graph_detections += 1;
            let members: Vec<String> = cycle.iter().map(ToString::to_string).collect();
            println!("depgraph : deadlock cycle {}", members.join(" -> "));
        }
    }

    println!("\nepisodes injected:      {}", expected.truth);
    println!("OCEP subset reports:    {ocep_detections}");
    println!("OCEP matches found:     {}", monitor.stats().matches_found);
    println!("depgraph cycles found:  {graph_detections}");
    println!(
        "note: OCEP reports a bounded representative subset (one report per \
         new (event, trace) cell); matches_found counts every detection."
    );
    assert!(monitor.stats().matches_found >= expected.truth as u64);
    assert!(graph_detections >= expected.truth);
}
