//! §V-C1: detecting blocking-send deadlock cycles in an MPI-style
//! parallel random-walk application, and comparing the causal-pattern
//! approach with a classic wait-for dependency-graph detector running on
//! the same event stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example mpi_deadlock_detector -- [cycle_len]
//! ```

use ocep_repro::baselines::DepGraphDetector;
use ocep_repro::ocep::Monitor;
use ocep_repro::simulator::workloads::random_walk::{self, Params};

fn main() {
    let cycle_len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let params = Params {
        n_processes: 12,
        rounds: 400,
        walk_steps: 2,
        cycle_len,
        deadlock_prob: 0.02,
        seed: 7,
    };
    println!(
        "simulating a parallel random walk on {} processes with injected \
         length-{} blocking-send cycles",
        params.n_processes, params.cycle_len
    );
    let generated = random_walk::generate(&params);
    println!(
        "recorded {} events; {} deadlock episodes injected\n",
        generated.poet.store().len(),
        generated.truth.len()
    );
    println!("cycle pattern:\n{}\n", generated.pattern_src);

    // OCEP: the causal pattern of pairwise-concurrent blocked sends whose
    // destinations chain into a cycle.
    let mut monitor = Monitor::new(generated.pattern(), generated.n_traces);
    // Baseline: incremental wait-for-graph cycle search.
    let mut depgraph = DepGraphDetector::new(generated.n_traces);

    let mut ocep_detections = 0;
    let mut graph_detections = 0;
    for event in generated.poet.store().iter_arrival() {
        for m in monitor.observe(event) {
            ocep_detections += 1;
            let members: Vec<String> = m.events().iter().map(|e| e.trace().to_string()).collect();
            println!("OCEP     : deadlock cycle {}", members.join(" -> "));
        }
        if let Some(cycle) = depgraph.observe(event) {
            graph_detections += 1;
            let members: Vec<String> = cycle.iter().map(ToString::to_string).collect();
            println!("depgraph : deadlock cycle {}", members.join(" -> "));
        }
    }

    println!("\nepisodes injected:      {}", generated.truth.len());
    println!("OCEP subset reports:    {ocep_detections}");
    println!("OCEP matches found:     {}", monitor.stats().matches_found);
    println!("depgraph cycles found:  {graph_detections}");
    println!(
        "note: OCEP reports a bounded representative subset (one report per \
         new (event, trace) cell); matches_found counts every detection."
    );
    assert!(monitor.stats().matches_found >= generated.truth.len() as u64);
    assert_eq!(graph_detections, generated.truth.len() as u64 as usize);
}
