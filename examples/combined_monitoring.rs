//! Watching several causal patterns over one event stream with
//! [`MonitorSet`] — the way a deployment runs all its safety checks at
//! once. The stream is the replicated-service workload; alongside the
//! §III-D ordering-bug pattern we watch an auditing pattern (every
//! update eventually reaches some follower) and a protocol pattern
//! (snapshots are only taken after a synch request).
//!
//! Run with:
//! ```text
//! cargo run --release --example combined_monitoring
//! ```

use ocep_repro::ocep::{MonitorConfig, MonitorSet, SubsetPolicy};
use ocep_repro::pattern::Pattern;
use ocep_repro::simulator::workloads::replicated_service::{self, Params};

fn main() {
    let params = Params {
        n_followers: 8,
        synchs_per_follower: 20,
        bug_prob: 0.03,
        seed: 11,
    };
    let generated = replicated_service::generate(&params);
    println!(
        "stream: {} events from 1 leader + {} followers\n",
        generated.poet.store().len(),
        params.n_followers
    );

    let mut set = MonitorSet::new(generated.n_traces);
    // 1. The §III-D safety violation (stale snapshot).
    set.add_with_config(
        "stale-snapshot",
        generated.pattern(),
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    // 2. Audit: an update causally reaching a follower's applied state.
    set.add(
        "update-propagation",
        Pattern::parse(
            "U := [T0, make_update, *]; A := [*, apply_snapshot, *]; \
             pattern := U -> A;",
        )
        .expect("valid pattern"),
    );
    // 3. Protocol sanity: a snapshot follows some synch request.
    set.add(
        "snapshot-after-synch",
        Pattern::parse(
            "Q := [*, synch_request, *]; S := [T0, take_snapshot, *]; \
             pattern := Q -> S;",
        )
        .expect("valid pattern"),
    );

    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for event in generated.poet.store().iter_arrival() {
        for (name, m) in set.observe(event) {
            *counts.entry(name.clone()).or_default() += 1;
            if name == "stale-snapshot" {
                println!(
                    "VIOLATION [{}]: follower {} got a stale snapshot",
                    name,
                    m.binding_for("Receive").expect("bound").trace()
                );
            }
        }
    }

    println!("\nreports per pattern:");
    for (name, count) in &counts {
        println!("  {name:<22} {count}");
    }
    println!("\nper-pattern work:");
    for (name, monitor) in set.iter() {
        println!(
            "  {name:<22} searches={:<6} found={:<5} history={}",
            monitor.stats().searches,
            monitor.stats().matches_found,
            monitor.history_size()
        );
    }
    println!("\ntotal: {}", set.total_stats());
    assert_eq!(
        counts.get("stale-snapshot").copied().unwrap_or(0),
        generated.truth.len(),
        "every injected ordering bug must alert"
    );
}
