//! End-to-end integration: workload simulation → POET → OCEP monitor,
//! checking the §V-D completeness and false-positive metrics for every
//! case study of the paper.

use ocep_repro::baselines::ExhaustiveMatcher;
use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::poet::Event;
use ocep_repro::simulator::workloads::{
    atomicity, message_race, random_walk, replicated_service, Generated,
};
use ocep_repro::vclock::TraceId;

/// Feeds the full recorded computation through a monitor.
fn run_monitor(g: &Generated, policy: SubsetPolicy) -> (Monitor, Vec<ocep_repro::ocep::Match>) {
    let mut monitor = Monitor::with_config(
        g.pattern(),
        g.n_traces,
        MonitorConfig {
            policy,
            ..MonitorConfig::default()
        },
    );
    let mut reported = Vec::new();
    for e in g.poet.store().iter_arrival() {
        reported.extend(monitor.observe(e));
    }
    (monitor, reported)
}

#[test]
fn deadlock_every_episode_detected_no_false_positives() {
    let g = random_walk::generate(&random_walk::Params {
        n_processes: 8,
        rounds: 120,
        walk_steps: 1,
        cycle_len: 3,
        deadlock_prob: 0.05,
        seed: 11,
    });
    assert!(!g.truth.is_empty(), "want at least one episode");
    let (monitor, reported) = run_monitor(&g, SubsetPolicy::Representative);

    // Completeness: every participant trace of every episode is covered
    // by some blocked-send leaf in the subset.
    for v in &g.truth {
        for &trace in &v.traces {
            let covered = (0..3).any(|i| monitor.covers(&format!("S{i}"), trace));
            assert!(covered, "episode participant {trace} not covered");
        }
    }
    // Soundness: every reported match is a genuine concurrent cycle.
    for m in &reported {
        let events: Vec<&Event> = m.events().iter().collect();
        for i in 0..events.len() {
            assert_eq!(events[i].ty(), "mpi_block_send");
            for j in i + 1..events.len() {
                assert!(
                    events[i].stamp().concurrent_with(events[j].stamp()),
                    "non-concurrent blocked sends reported"
                );
            }
        }
        // Destinations chain into a cycle.
        for i in 0..3 {
            let next = m.events()[(i + 1) % 3].trace().to_string();
            assert_eq!(m.events()[i].text(), next);
        }
    }
    assert!(monitor.stats().matches_found >= g.truth.len() as u64);
}

#[test]
fn race_detection_matches_ground_truth_cells() {
    let g = message_race::generate(&message_race::Params {
        n_processes: 6,
        messages_per_sender: 12,
        seed: 13,
    });
    assert!(!g.truth.is_empty());
    let (monitor, reported) = run_monitor(&g, SubsetPolicy::Representative);

    // Every sender that participates in a race is covered by a send leaf.
    let mut racing_senders: Vec<TraceId> = g
        .truth
        .iter()
        .flat_map(|v| v.traces.iter().copied())
        .collect();
    racing_senders.sort_unstable();
    racing_senders.dedup();
    for s in racing_senders {
        assert!(
            monitor.covers("S1", s) || monitor.covers("S2", s),
            "racing sender {s} not represented"
        );
    }
    // Soundness: reported races really are concurrent sends partnered
    // with receives on one process.
    for m in &reported {
        let s1 = m.binding_for("$s1").unwrap();
        let s2 = m.binding_for("$s2").unwrap();
        let r1 = m.binding_for("R1").unwrap();
        let r2 = m.binding_for("R2").unwrap();
        assert!(s1.stamp().concurrent_with(s2.stamp()));
        assert_eq!(r1.partner(), Some(s1.id()));
        assert_eq!(r2.partner(), Some(s2.id()));
        assert_eq!(r1.trace(), r2.trace());
    }
}

#[test]
fn atomicity_violations_all_caught() {
    let g = atomicity::generate(&atomicity::Params {
        n_threads: 5,
        rounds_per_thread: 30,
        bug_prob: 0.08,
        seed: 17,
    });
    assert!(!g.truth.is_empty());
    let (monitor, reported) = run_monitor(&g, SubsetPolicy::Representative);

    for v in &g.truth {
        let victim = v.traces[0];
        assert!(
            monitor.covers("E1", victim) || monitor.covers("E2", victim),
            "unprotected entry on {victim} not represented"
        );
    }
    for m in &reported {
        let e1 = m.binding_for("E1").unwrap();
        let e2 = m.binding_for("E2").unwrap();
        assert!(e1.stamp().concurrent_with(e2.stamp()));
        assert_eq!(e1.ty(), "enter_method");
        assert_eq!(e2.ty(), "enter_method");
    }
    // A clean run reports nothing at all.
    let clean = atomicity::generate(&atomicity::Params {
        n_threads: 5,
        rounds_per_thread: 30,
        bug_prob: 0.0,
        seed: 17,
    });
    let (clean_monitor, clean_reported) = run_monitor(&clean, SubsetPolicy::PerArrival);
    assert!(clean_reported.is_empty(), "false positives in a clean run");
    assert_eq!(clean_monitor.stats().matches_found, 0);
}

#[test]
fn ordering_bug_isolates_each_victim() {
    let g = replicated_service::generate(&replicated_service::Params {
        n_followers: 6,
        synchs_per_follower: 15,
        bug_prob: 0.08,
        seed: 19,
    });
    assert!(!g.truth.is_empty());
    let (monitor, reported) = run_monitor(&g, SubsetPolicy::Representative);

    for v in &g.truth {
        let victim = v.traces[1];
        assert!(
            monitor.covers("Receive", victim),
            "stale snapshot delivered to {victim} not represented"
        );
    }
    // Soundness: the matched update really falls between the matched
    // snapshot and the victim's receive, within one token round.
    for m in &reported {
        let snap = m.binding_for("$diff").unwrap();
        let upd = m.binding_for("$write").unwrap();
        let recv = m.binding_for("Receive").unwrap();
        let synch = m.binding_for("Synch").unwrap();
        assert!(synch.stamp().happens_before(snap.stamp()));
        assert!(snap.stamp().happens_before(upd.stamp()));
        assert!(upd.stamp().happens_before(recv.stamp()));
        assert_eq!(snap.text(), recv.text(), "round tokens must agree");
    }
    // Clean run: zero matches.
    let clean = replicated_service::generate(&replicated_service::Params {
        n_followers: 6,
        synchs_per_follower: 15,
        bug_prob: 0.0,
        seed: 19,
    });
    let (cm, cr) = run_monitor(&clean, SubsetPolicy::PerArrival);
    assert!(cr.is_empty());
    assert_eq!(cm.stats().matches_found, 0);
}

#[test]
fn monitor_agrees_with_exhaustive_oracle_on_small_workloads() {
    // Small instances of each workload: monitor-found cells are exactly a
    // subset of oracle cells, and detection agrees.
    let gens = vec![
        random_walk::generate(&random_walk::Params {
            n_processes: 5,
            rounds: 30,
            walk_steps: 1,
            cycle_len: 2,
            deadlock_prob: 0.1,
            seed: 23,
        }),
        message_race::generate(&message_race::Params {
            n_processes: 4,
            messages_per_sender: 4,
            seed: 23,
        }),
        atomicity::generate(&atomicity::Params {
            n_threads: 3,
            rounds_per_thread: 6,
            bug_prob: 0.15,
            seed: 23,
        }),
        replicated_service::generate(&replicated_service::Params {
            n_followers: 3,
            synchs_per_follower: 4,
            bug_prob: 0.2,
            seed: 23,
        }),
    ];
    for g in gens {
        let all: Vec<Event> = g.poet.store().iter_arrival().cloned().collect();
        let pattern = g.pattern();
        let oracle = ExhaustiveMatcher::new(&pattern).matches(&all);
        let (monitor, _) = run_monitor(&g, SubsetPolicy::Representative);
        assert_eq!(
            oracle.is_empty(),
            monitor.stats().matches_found == 0,
            "detection disagrees with oracle for {}",
            g.pattern_src
        );
        // Every covered cell appears in some oracle match (class level).
        let leaves = pattern.leaves();
        for leaf in leaves {
            for t in 0..g.n_traces {
                let t = TraceId::new(t as u32);
                if monitor.covers(leaf.display_name(), t) {
                    let ok = oracle.iter().any(|m| {
                        m.iter()
                            .zip(leaves)
                            .any(|(e, l)| l.class_name() == leaf.class_name() && e.trace() == t)
                    });
                    assert!(ok, "cell ({}, {t}) not in oracle", leaf.display_name());
                }
            }
        }
    }
}

#[test]
fn dump_reload_preserves_monitoring_results() {
    let g = replicated_service::generate(&replicated_service::Params {
        n_followers: 4,
        synchs_per_follower: 8,
        bug_prob: 0.1,
        seed: 29,
    });
    let bytes = ocep_repro::poet::dump::dump(g.poet.store());
    let reloaded = ocep_repro::poet::dump::reload(&bytes).unwrap();
    assert!(reloaded.store().content_eq(g.poet.store()));

    let run = |store: &ocep_repro::poet::TraceStore| {
        let mut m = Monitor::new(g.pattern(), g.n_traces);
        for e in store.iter_arrival() {
            let _ = m.observe(e);
        }
        m.stats().matches_found
    };
    assert_eq!(run(g.poet.store()), run(reloaded.store()));
}

#[test]
fn sliding_window_omits_what_ocep_represents() {
    // Fig 3 at workload scale: the n² window misses old-but-matching
    // events that the representative subset still covers.
    let g = message_race::generate(&message_race::Params {
        n_processes: 5,
        messages_per_sender: 20,
        seed: 31,
    });
    let (monitor, _) = run_monitor(&g, SubsetPolicy::Representative);
    let mut window =
        ocep_repro::baselines::SlidingWindowMatcher::paper_sized(g.pattern(), g.n_traces);
    let mut window_cells: std::collections::HashSet<(usize, TraceId)> =
        std::collections::HashSet::new();
    for e in g.poet.store().iter_arrival() {
        for m in window.observe(e) {
            for (i, ev) in m.iter().enumerate() {
                window_cells.insert((i, ev.trace()));
            }
        }
    }
    // OCEP covers at least every cell the window covers...
    let pattern = g.pattern();
    for (i, t) in &window_cells {
        assert!(
            monitor.covers(pattern.leaves()[*i].display_name(), *t),
            "OCEP missed a cell the window found"
        );
    }
    // ...and the run must show the window's omission is possible: OCEP's
    // total knowledge (matches found) exceeds what fits in the window at
    // any instant. (A weak but deterministic form of the Fig 3 claim.)
    assert!(monitor.stats().matches_found > 0);
}

#[test]
fn per_event_cost_is_bounded_for_non_matching_events() {
    // Category-i events (§V-B) must not trigger searches at all.
    let g = random_walk::generate(&random_walk::Params {
        n_processes: 6,
        rounds: 50,
        walk_steps: 3,
        cycle_len: 3,
        deadlock_prob: 0.0,
        seed: 37,
    });
    let (monitor, _) = run_monitor(&g, SubsetPolicy::Representative);
    assert_eq!(
        monitor.stats().searches,
        0,
        "no blocked sends were generated, so no event matches the pattern"
    );
}
