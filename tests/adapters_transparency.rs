//! Adapter transparency: ingesting a recording offline and streaming
//! the same recording into a live loopback `serve` daemon must reach
//! **bit-identical** conclusions — verdict sequence, representative
//! subset, and ingest statistics.
//!
//! This is the `check_net_transparency` differential pointed at the
//! ingestion adapters instead of generated conformance cases: every
//! pinned-seed fixture recording is parsed once, then fingerprinted
//! through in-process `observe_raw` delivery and through a real OCWP
//! loopback server at several frame sizes (per-event, small batches,
//! and the `ocep ingest` CLI default of 256).

use ocep_repro::adapters::testgen::{fixtures, Recording};
use ocep_repro::conformance::{in_process_fingerprint, loopback_fingerprint};
use ocep_repro::simulator::workloads::{random_walk, replicated_service};

fn check(label: &str, format: &str, rec: &Recording, pattern_src: &str) {
    let out = rec.parse(format);
    let local = in_process_fingerprint(pattern_src, out.n_traces, &out.events)
        .unwrap_or_else(|m| panic!("{label}: {m:?}"));
    for batch in [1usize, 16, 256] {
        let remote = loopback_fingerprint(pattern_src, out.n_traces, &out.events, batch)
            .unwrap_or_else(|m| panic!("{label} (batch {batch}): {m:?}"));
        if let Some(divergence) = local.diff(&remote) {
            panic!("{label} (batch {batch}): offline vs served diverged: {divergence}");
        }
    }
    assert!(
        !local.verdicts.is_empty(),
        "{label}: transparency check is vacuous without verdicts"
    );
    assert_eq!(
        local.ingest.admitted,
        out.events.len() as u64,
        "{label}: a valid linearization admits every event"
    );
}

#[test]
fn mpi_fixture_is_transparent_across_transports() {
    check(
        "mpi_deadlock.trace",
        "mpi",
        &fixtures::mpi_deadlock(),
        &random_walk::cycle_pattern(fixtures::CYCLE_LEN),
    );
}

#[test]
fn otlp_fixtures_are_transparent_across_transports() {
    check(
        "zookeeper_spans.jsonl",
        "otlp",
        &fixtures::zookeeper(),
        &replicated_service::ordering_pattern(),
    );
    check(
        "saga_spans.jsonl",
        "otlp",
        &fixtures::saga(),
        fixtures::SAGA_PATTERN,
    );
}

#[test]
fn session_fixture_is_transparent_across_transports() {
    check(
        "session_handoff.jsonl",
        "session",
        &fixtures::session_handoff(),
        fixtures::RYW_PATTERN,
    );
}
