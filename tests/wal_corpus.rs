//! Durable-log corruption corpus (tier-1).
//!
//! Each case under `tests/corpus/wal/` is a log directory snapshot with
//! one deliberate fault — a torn tail or a structural corruption — as
//! files named `<case>__<segment>.bin`. The committed bytes are pinned
//! against a deterministic generator (same discipline as the wire
//! corpus), and every case must:
//!
//! * fail `verify` (strict scan) with a `Corrupt` error naming the
//!   exact segment and byte offset — never a panic;
//! * behave correctly under recovery (`Wal::open`, repair scan): a torn
//!   tail in the final segment is truncated and serving continues with
//!   the intact prefix, while structural faults (bad magic, a broken
//!   chain mid-log, a stale generation) stay hard errors.

use ocep_repro::wal::{
    self, Durability, ScanMode, Wal, WalError, WalOptions, HEADER_LEN, RECORD_OVERHEAD,
};
use std::path::{Path, PathBuf};

/// Payload used for every generated record: 16 bytes, so one record
/// occupies `RECORD_OVERHEAD + 16 = 37` bytes.
fn payload(i: usize) -> Vec<u8> {
    format!("deliver-{i:08}").into_bytes()
}

const REC_BYTES: u64 = RECORD_OVERHEAD + 16;

fn opts(segment_bytes: u64) -> WalOptions {
    WalOptions {
        durability: Durability::None,
        segment_bytes,
        ..WalOptions::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ocep-wal-corpus-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes `records` deliver records through the real writer and returns
/// the resulting segment files as sorted `(name, bytes)` pairs.
fn written_segments(records: usize, segment_bytes: u64) -> Vec<(String, Vec<u8>)> {
    let dir = scratch_dir("gen");
    let (mut w, _) = Wal::open(&dir, opts(segment_bytes)).unwrap();
    for i in 0..records {
        w.append(wal::REC_DELIVER, &payload(i)).unwrap();
    }
    w.sync().unwrap();
    drop(w);
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// What the strict scan must say about a case.
struct Expect {
    /// Segment the diagnostic must name.
    segment: &'static str,
    /// Byte offset the diagnostic must carry.
    offset: u64,
    /// True when recovery (repair mode) must also reject the directory;
    /// false when the fault is a final-segment torn tail recovery heals.
    hard: bool,
    /// Intact records recovery salvages (torn-tail cases only).
    survivors: usize,
}

const SEG0: &str = "wal-00000000000000000000.seg";
const SEG1: &str = "wal-00000000000000000001.seg";

/// Segment files of one generated log, as sorted `(name, bytes)` pairs.
type Segments = Vec<(String, Vec<u8>)>;

fn cases() -> Vec<(&'static str, Segments, Expect)> {
    let mut out = Vec::new();

    // 1. A record cut mid-payload at the end of the last segment: the
    //    classic torn tail a crash during append leaves behind.
    {
        let mut segs = written_segments(4, 1 << 20);
        let keep = HEADER_LEN + 3 * REC_BYTES + 20; // 20 of record 4's 37 bytes
        segs[0].1.truncate(keep as usize);
        out.push((
            "truncated-record",
            segs,
            Expect {
                segment: SEG0,
                offset: HEADER_LEN + 3 * REC_BYTES,
                hard: false,
                survivors: 3,
            },
        ));
    }

    // 2. One flipped bit in a stored record hash in a *non-final*
    //    segment: a broken chain mid-log is never repairable.
    {
        let mut segs = written_segments(3, 64); // 37-byte records → 1 per segment
        assert_eq!(segs.len(), 3, "rotation layout drifted");
        let hash_at = (HEADER_LEN + REC_BYTES - 8) as usize;
        segs[0].1[hash_at] ^= 0x01;
        out.push((
            "bitflip-chain",
            segs,
            Expect {
                segment: SEG0,
                offset: HEADER_LEN,
                hard: true,
                survivors: 0,
            },
        ));
    }

    // 3. Wrong magic: the file is not a log segment at all.
    {
        let mut segs = written_segments(2, 1 << 20);
        segs[0].1[0..4].copy_from_slice(b"XWAL");
        out.push((
            "bad-magic",
            segs,
            Expect {
                segment: SEG0,
                offset: 0,
                hard: true,
                survivors: 0,
            },
        ));
    }

    // 4. A zero-filled tail (preallocated blocks never written): parses
    //    as record type 0 at the first zero byte.
    {
        let mut segs = written_segments(2, 1 << 20);
        let tear_at = segs[0].1.len() as u64;
        segs[0].1.extend_from_slice(&[0u8; 64]);
        out.push((
            "zero-fill-tail",
            segs,
            Expect {
                segment: SEG0,
                offset: tear_at,
                hard: false,
                survivors: 2,
            },
        ));
    }

    // 5. A later segment stamped with an *older* generation than its
    //    predecessor: an overlapping stale writer, never trustworthy.
    {
        let mut segs = written_segments(2, 64);
        assert_eq!(segs.len(), 2, "rotation layout drifted");
        segs[1].1[8..16].copy_from_slice(&0u64.to_le_bytes());
        out.push((
            "stale-generation",
            segs,
            Expect {
                segment: SEG1,
                offset: 8,
                hard: true,
                survivors: 0,
            },
        ));
    }

    out
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/wal")
}

fn corpus_files() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for (case, segs, _) in cases() {
        for (name, bytes) in segs {
            out.push((format!("{case}__{name}.bin"), bytes));
        }
    }
    out.sort();
    out
}

/// Rebuilds the committed corpus. Run with
/// `cargo test --test wal_corpus -- --ignored regenerate` after a log
/// format change, and review the diff.
#[test]
#[ignore = "regenerates tests/corpus/wal/; run explicitly"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in corpus_files() {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

#[test]
fn committed_corpus_matches_generator() {
    let want = corpus_files();
    let mut have: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/wal exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    have.sort();
    assert_eq!(
        have.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        want.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "corpus file set drifted; rerun regenerate_corpus"
    );
    for ((name, h), (_, w)) in have.iter().zip(&want) {
        assert_eq!(
            h, w,
            "{name} drifted from the generator; rerun regenerate_corpus"
        );
    }
}

/// Copies one case's committed files into a fresh directory under their
/// real segment names.
fn materialize(case: &str) -> PathBuf {
    let dir = scratch_dir(case);
    let mut copied = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus/wal exists") {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(seg) = name
            .strip_prefix(case)
            .and_then(|r| r.strip_prefix("__"))
            .and_then(|r| r.strip_suffix(".bin"))
        {
            std::fs::copy(entry.path(), dir.join(seg)).unwrap();
            copied += 1;
        }
    }
    assert!(copied > 0, "case {case} has no committed files");
    dir
}

#[test]
fn strict_verify_rejects_every_case_at_the_right_offset() {
    for (case, _, expect) in cases() {
        let dir = materialize(case);
        let err = wal::verify(&dir).expect_err(&format!("{case} passed strict verify"));
        match &err {
            WalError::Corrupt {
                segment,
                offset,
                detail,
            } => {
                assert_eq!(segment, expect.segment, "{case}: wrong segment blamed");
                assert_eq!(*offset, expect.offset, "{case}: wrong offset ({detail})");
                assert!(!detail.is_empty(), "{case}: empty diagnostic");
            }
            other => panic!("{case}: expected Corrupt, got {other}"),
        }
        // The Display form must let an operator find the fault.
        let msg = err.to_string();
        assert!(
            msg.contains(expect.segment) && msg.contains(&expect.offset.to_string()),
            "{case}: diagnostic lacks segment/offset: {msg}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_repairs_torn_tails_and_rejects_structural_faults() {
    for (case, _, expect) in cases() {
        let dir = materialize(case);
        // Read-only tolerant scan first: never mutates, never panics.
        let tolerated = wal::scan_dir(&dir, ScanMode::Tolerate);
        match wal::Wal::open(&dir, opts(1 << 20)) {
            Ok((mut w, recovery)) => {
                assert!(!expect.hard, "{case}: recovery accepted a structural fault");
                assert_eq!(
                    recovery.records.len(),
                    expect.survivors,
                    "{case}: wrong salvage count"
                );
                let torn = recovery.torn.expect("torn tail reported");
                assert_eq!(torn.offset, expect.offset, "{case}: torn offset");
                let t = tolerated.expect("tolerate agrees with repair");
                assert_eq!(t.records.len(), expect.survivors);
                // The repaired log must be appendable and then clean.
                w.append(wal::REC_FLUSH, &[]).unwrap();
                w.sync().unwrap();
                drop(w);
                wal::verify(&dir).expect("repaired log passes strict verify");
            }
            Err(WalError::Corrupt { segment, .. }) => {
                assert!(expect.hard, "{case}: recovery rejected a repairable tail");
                assert_eq!(segment, expect.segment, "{case}: wrong segment blamed");
                assert!(tolerated.is_err(), "{case}: tolerate accepted a hard fault");
            }
            Err(other) => panic!("{case}: unexpected error class: {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
