//! Regression-seed corpus replay (tier-1).
//!
//! `tests/corpus/seeds.txt` pins `master_seed,case_index` pairs: every
//! line is regenerated through the conformance generators and pushed
//! through the full differential check on plain `cargo test`. Dump
//! directories under `tests/corpus/dumps/` (shrunk historical
//! failures) are replayed the same way and must stay fixed.

use ocep_repro::conformance as conf;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn pinned_seed_corpus_passes_the_differential_check() {
    let text = std::fs::read_to_string(corpus_dir().join("seeds.txt"))
        .expect("tests/corpus/seeds.txt exists");
    let mut checked = 0usize;
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (seed, index) = line
            .split_once(',')
            .unwrap_or_else(|| panic!("seeds.txt:{}: expected `seed,case`", line_no + 1));
        let seed: u64 = seed.trim().parse().expect("numeric master seed");
        let index: usize = index.trim().parse().expect("numeric case index");
        let (case, cfg) = conf::nth_case(seed, index);
        if let Err(mismatch) = conf::check_case(&case, &cfg) {
            panic!(
                "corpus case (seed {seed}, index {index}) regressed: {mismatch}\n\
                 replay with: ocep fuzz --seed {seed} --cases {}",
                index + 1
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "corpus shrank to {checked} cases");
}

#[test]
fn committed_failure_dumps_stay_fixed() {
    let dumps = corpus_dir().join("dumps");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dumps).expect("tests/corpus/dumps exists") {
        let dir = entry.expect("readable dir entry").path();
        if !dir.is_dir() {
            continue;
        }
        let outcome = conf::replay_dump(&dir).expect("dump loads");
        assert!(
            outcome.result.is_ok(),
            "historical failure dump {} regressed: {:?}",
            dir.display(),
            outcome.result.err()
        );
        checked += 1;
    }
    assert!(checked >= 1, "no dump fixtures found");
}
