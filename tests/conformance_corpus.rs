//! Regression-seed corpus replay (tier-1).
//!
//! `tests/corpus/seeds.txt` pins `master_seed,case_index` pairs: every
//! line is regenerated through the conformance generators and pushed
//! through the full differential check on plain `cargo test`. Dump
//! directories under `tests/corpus/dumps/` (shrunk historical
//! failures) are replayed the same way and must stay fixed.

use ocep_repro::conformance as conf;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn pinned_seed_corpus_passes_the_differential_check() {
    let text = std::fs::read_to_string(corpus_dir().join("seeds.txt"))
        .expect("tests/corpus/seeds.txt exists");
    let mut checked = 0usize;
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (seed, index) = line
            .split_once(',')
            .unwrap_or_else(|| panic!("seeds.txt:{}: expected `seed,case`", line_no + 1));
        let seed: u64 = seed.trim().parse().expect("numeric master seed");
        let index: usize = index.trim().parse().expect("numeric case index");
        let (case, cfg) = conf::nth_case(seed, index);
        if let Err(mismatch) = conf::check_case(&case, &cfg) {
            panic!(
                "corpus case (seed {seed}, index {index}) regressed: {mismatch}\n\
                 replay with: ocep fuzz --seed {seed} --cases {}",
                index + 1
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "corpus shrank to {checked} cases");
}

#[test]
fn committed_failure_dumps_stay_fixed() {
    let dumps = corpus_dir().join("dumps");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dumps).expect("tests/corpus/dumps exists") {
        let dir = entry.expect("readable dir entry").path();
        if !dir.is_dir() {
            continue;
        }
        let outcome = conf::replay_dump(&dir).expect("dump loads");
        assert!(
            outcome.result.is_ok(),
            "historical failure dump {} regressed: {:?}",
            dir.display(),
            outcome.result.err()
        );
        checked += 1;
    }
    assert!(checked >= 1, "no dump fixtures found");
}

/// Parses a `seed,index` corpus file, skipping comments and blanks.
fn parse_seed_lines(name: &str) -> Vec<(u64, usize)> {
    let path = corpus_dir().join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{} exists: {e}", path.display()));
    let mut out = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (seed, index) = line
            .split_once(',')
            .unwrap_or_else(|| panic!("{name}:{}: expected `seed,case`", line_no + 1));
        out.push((
            seed.trim().parse().expect("numeric master seed"),
            index.trim().parse().expect("numeric case index"),
        ));
    }
    out
}

#[test]
fn pinned_fault_corpus_stays_transparent() {
    let entries = parse_seed_lines("fault-seeds.txt");
    assert!(
        entries.len() >= 10,
        "fault corpus shrank to {} cases",
        entries.len()
    );
    for (seed, index) in entries {
        let (case, cfg, plan) = conf::nth_fault_case(seed, index);
        if let Err(mismatch) = conf::check_fault_case(&case, &cfg, &plan) {
            panic!(
                "fault corpus case (seed {seed}, index {index}, plan {plan}) regressed: \
                 {mismatch}\nreplay with: ocep fuzz --faults --seed {seed} --cases {}",
                index + 1
            );
        }
    }
}

#[test]
fn pinned_fault_corpus_survives_checkpoint_restart() {
    for (seed, index) in parse_seed_lines("fault-seeds.txt") {
        let (case, cfg, _) = conf::nth_fault_case(seed, index);
        let cut = case.actions.len() / 2;
        if let Err(mismatch) = conf::check_checkpoint_restart(&case, &cfg, cut) {
            panic!(
                "checkpoint restart (seed {seed}, index {index}, cut {cut}) regressed: \
                 {mismatch}"
            );
        }
    }
}

/// Explicit fault-plan fixtures: `tests/corpus/fault-plans/<name>/meta.txt`
/// pins a case index *and* a hand-written plan (not the derived one), so
/// a historical fault storm stays reproduced verbatim.
#[test]
fn committed_fault_plan_fixtures_stay_fixed() {
    let root = corpus_dir().join("fault-plans");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&root).expect("tests/corpus/fault-plans exists") {
        let dir = entry.expect("readable dir entry").path();
        if !dir.is_dir() {
            continue;
        }
        let meta = std::fs::read_to_string(dir.join("meta.txt")).expect("meta.txt loads");
        let field = |key: &str| {
            meta.lines()
                .filter_map(|l| l.split_once('='))
                .find(|(k, _)| k.trim() == key)
                .map(|(_, v)| v.trim().to_owned())
                .unwrap_or_else(|| panic!("{}: missing `{key}`", dir.display()))
        };
        let master: u64 = field("master_seed").parse().expect("numeric master_seed");
        let index: usize = field("case_index").parse().expect("numeric case_index");
        let plan = conf::FaultPlan {
            seed: field("fault_seed").parse().expect("numeric fault_seed"),
            duplicate_p: field("duplicate_p").parse().expect("numeric duplicate_p"),
            reorder_window: field("reorder_window").parse().expect("numeric window"),
            reorder: conf::ReorderMode::from_name(&field("reorder_mode"))
                .expect("valid reorder_mode"),
            drop_p: field("drop_p").parse().expect("numeric drop_p"),
            corrupt_clock_p: field("corrupt_clock_p").parse().expect("numeric corrupt_p"),
        };
        let (case, cfg, _) = conf::nth_fault_case(master, index);
        let outcome = conf::check_fault_case(&case, &cfg, &plan)
            .unwrap_or_else(|m| panic!("fault-plan fixture {} regressed: {m}", dir.display()));
        assert!(
            outcome.injected.corrupt > 0 && outcome.injected.duplicates > 0,
            "fixture {} no longer injects faults: {:?}",
            dir.display(),
            outcome.injected
        );
        checked += 1;
    }
    assert!(checked >= 1, "no fault-plan fixtures found");
}
