//! Metrics-transparency and exactness suite (tier-1).
//!
//! The observability layer must be a pure observer: collecting metrics
//! can never change what the engine matches, stores, or checkpoints, and
//! the counters it exports must equal what an independent recount of the
//! run produces. Both properties are pinned over seeded conformance
//! cases so they run on plain `cargo test`.

use ocep_repro::conformance as conf;
use ocep_repro::ocep::{strip_metrics, Match, Monitor, MonitorConfig, ObsLevel, SubsetPolicy};
use ocep_repro::pattern::Pattern;
use ocep_repro::poet::Event;

/// The pinned seed grid: 2 master seeds × 100 indices = 200 cases, the
/// same generator the fuzz corpus uses (`conf::nth_case`).
const MASTERS: [u64; 2] = [0, 7];
const CASES_PER_MASTER: usize = 100;

struct RunResult {
    /// Every reported match, rendered (bindings included).
    matches: Vec<String>,
    /// The representative subset's bindings after the run.
    subset: Vec<String>,
    /// Final work counters.
    stats: ocep_repro::ocep::MonitorStats,
    /// Checkpoint bytes at end of run.
    checkpoint: Vec<u8>,
}

fn run_case(case: &conf::Case, dedup: bool, parallelism: usize, obs: ObsLevel) -> RunResult {
    let pattern = Pattern::parse(&case.pattern_src).expect("generated pattern parses");
    let poet = case.build();
    let mut monitor = Monitor::with_config(
        pattern,
        case.n_traces,
        MonitorConfig {
            dedup,
            policy: SubsetPolicy::PerArrival,
            parallelism,
            obs,
            ..MonitorConfig::default()
        },
    );
    let mut matches = Vec::new();
    for e in poet.store().iter_arrival() {
        for m in monitor.observe(e) {
            matches.push(m.to_string());
        }
    }
    let subset = monitor
        .subset()
        .iter()
        .map(|m: &&Match| m.to_string())
        .collect();
    let stats = *monitor.stats();
    let checkpoint = monitor.checkpoint(&case.pattern_src);
    RunResult {
        matches,
        subset,
        stats,
        checkpoint,
    }
}

/// Satellite 1 — metrics transparency. Every pinned case runs twice,
/// `Off` vs `Full`; verdicts, subsets, work counters, and (metrics-
/// stripped) checkpoint bytes must be bit-identical. The only permitted
/// difference is the metrics section itself.
#[test]
fn full_observability_is_bit_transparent() {
    let mut with_matches = 0usize;
    for master in MASTERS {
        for i in 0..CASES_PER_MASTER {
            let (case, cfg) = conf::nth_case(master, i);
            let off = run_case(&case, cfg.dedup, 1, ObsLevel::Off);
            let full = run_case(&case, cfg.dedup, 1, ObsLevel::Full);
            let ctx = format!("seed {master} case {i}");
            assert_eq!(off.matches, full.matches, "{ctx}: verdicts diverged");
            assert_eq!(off.subset, full.subset, "{ctx}: subsets diverged");
            assert_eq!(off.stats, full.stats, "{ctx}: work counters diverged");
            assert_eq!(
                strip_metrics(&full.checkpoint).expect("full checkpoint strips"),
                off.checkpoint,
                "{ctx}: stripped checkpoint bytes diverged"
            );
            if !off.matches.is_empty() {
                with_matches += 1;
            }
        }
    }
    assert!(
        with_matches >= 20,
        "only {with_matches} pinned cases exercised a match"
    );
}

/// `Counters` must be transparent too (it skips the timers but still
/// collects introspection through the search and the worker channel).
#[test]
fn counters_observability_is_transparent_under_the_pool() {
    for master in MASTERS {
        for i in (0..CASES_PER_MASTER).step_by(5) {
            let (case, cfg) = conf::nth_case(master, i);
            let off = run_case(&case, cfg.dedup, 3, ObsLevel::Off);
            let counters = run_case(&case, cfg.dedup, 3, ObsLevel::Counters);
            let ctx = format!("seed {master} case {i}");
            assert_eq!(off.matches, counters.matches, "{ctx}: verdicts diverged");
            assert_eq!(off.stats, counters.stats, "{ctx}: counters diverged");
        }
    }
}

/// Satellite 2 — exactness. The registry's exported counters must equal
/// an independent recount of the run: every arrival, stored event,
/// search, and reported match counted once, never lost or doubled —
/// including under the worker pool. At parallelism 1 the counters must
/// also equal a separate metrics-off oracle replay; under the pool the
/// recount is taken from the same run's `observe` returns, because
/// level-1 partitioning may legitimately surface different duplicates
/// when dedup is on (the caller-side tally is still independent of the
/// registry).
#[test]
fn exported_counters_match_a_sequential_recount() {
    for master in MASTERS {
        for i in (0..CASES_PER_MASTER).step_by(4) {
            let (case, cfg) = conf::nth_case(master, i);
            let parse = || Pattern::parse(&case.pattern_src).expect("pattern parses");
            let poet = case.build();
            let events: Vec<Event> = poet.store().iter_arrival().cloned().collect();

            // Independent recount: feed the stream sequentially and tally
            // at the call site, without trusting any internal counter.
            let mut recount_reported = 0u64;
            let mut oracle = Monitor::with_config(
                parse(),
                case.n_traces,
                MonitorConfig {
                    dedup: cfg.dedup,
                    policy: SubsetPolicy::PerArrival,
                    parallelism: 1,
                    obs: ObsLevel::Off,
                    ..MonitorConfig::default()
                },
            );
            for e in &events {
                recount_reported += oracle.observe(e).len() as u64;
            }
            let oracle_stats = *oracle.stats();

            for parallelism in [1usize, 3] {
                let mut monitor = Monitor::with_config(
                    parse(),
                    case.n_traces,
                    MonitorConfig {
                        dedup: cfg.dedup,
                        policy: SubsetPolicy::PerArrival,
                        parallelism,
                        obs: ObsLevel::Full,
                        ..MonitorConfig::default()
                    },
                );
                // Recount the timing sample alongside the run: arrival
                // N (1-based) is timed iff N % OBS_TIMING_SAMPLE == 1,
                // and a timed arrival contributes one search-stage
                // sample per search it triggers.
                let sample = ocep_repro::ocep::OBS_TIMING_SAMPLE;
                let mut seen = 0u64;
                let mut sampled_arrivals = 0u64;
                let mut sampled_searches = 0u64;
                for (idx, e) in events.iter().enumerate() {
                    let before = monitor.stats().searches;
                    seen += monitor.observe(e).len() as u64;
                    if (idx as u64 + 1) % sample == 1 {
                        sampled_arrivals += 1;
                        sampled_searches += monitor.stats().searches - before;
                    }
                }
                let own_stats = *monitor.stats();
                let snap = monitor.metrics();
                let ctx = format!("seed {master} case {i} parallelism {parallelism}");
                let value = |name: &str| {
                    snap.value(name)
                        .unwrap_or_else(|| panic!("{ctx}: missing counter {name}"))
                };
                // Independent of the registry in every configuration: the
                // caller counted arrivals and reported matches itself.
                assert_eq!(value("ocep_events_total"), events.len() as u64, "{ctx}");
                assert_eq!(value("ocep_matches_reported_total"), seen, "{ctx}");
                if parallelism == 1 {
                    // Sequential runs must agree with the metrics-off
                    // oracle replay exactly — the registry may not drift
                    // from what an unobserved monitor counts.
                    assert_eq!(seen, recount_reported, "{ctx}: reported matches diverged");
                    assert_eq!(value("ocep_stored_total"), oracle_stats.stored, "{ctx}");
                    assert_eq!(value("ocep_searches_total"), oracle_stats.searches, "{ctx}");
                    assert_eq!(
                        value("ocep_matches_found_total"),
                        oracle_stats.matches_found,
                        "{ctx}"
                    );
                } else {
                    // Under the pool the partitioning may surface
                    // different duplicates, but the exported counters
                    // must still equal this run's own totals — nothing
                    // lost or doubled across worker threads.
                    assert_eq!(value("ocep_stored_total"), own_stats.stored, "{ctx}");
                    assert_eq!(value("ocep_searches_total"), own_stats.searches, "{ctx}");
                    assert_eq!(
                        value("ocep_matches_found_total"),
                        own_stats.matches_found,
                        "{ctx}"
                    );
                }
                // The arrival ring records every arrival (bounded).
                let m = monitor.obs_metrics().expect("Full keeps a registry");
                assert_eq!(
                    m.recent().len() as u64,
                    (events.len() as u64).min(ocep_repro::ocep::obs::RECENT_CAP as u64),
                    "{ctx}: ring length"
                );
                // Stage histograms are consistent with the declared
                // 1-in-8 timing sample: one end-to-end sample per timed
                // arrival, one search-stage sample per search a timed
                // arrival triggered.
                assert_eq!(
                    m.arrival_hist().count(),
                    sampled_arrivals,
                    "{ctx}: arrival samples"
                );
                assert_eq!(
                    m.stage_hist(ocep_repro::ocep::Stage::Search).count(),
                    sampled_searches,
                    "{ctx}: search stage samples"
                );
            }
        }
    }
}

/// The fuzz driver's aggregate snapshot sums per-case snapshots: its
/// event counter equals the sum of events over all checked monitors, and
/// enabling collection never flips a verdict.
#[test]
fn fuzz_report_metrics_aggregate_consistently() {
    let base = conf::FuzzConfig {
        seed: 3,
        cases: 25,
        dump_dir: None,
        max_failures: 0,
        ..conf::FuzzConfig::default()
    };
    let off = conf::run_fuzz(&base, |_, _| {});
    let full = conf::run_fuzz(
        &conf::FuzzConfig {
            obs: ObsLevel::Full,
            ..base
        },
        |_, _| {},
    );
    assert!(off.metrics.is_none());
    assert_eq!(off.cases_run, full.cases_run);
    assert_eq!(off.detected, full.detected);
    assert_eq!(off.truth_total, full.truth_total);
    assert!(off.failures.is_empty() && full.failures.is_empty());
    let snap = full.metrics.expect("Full run aggregates metrics");
    let events = snap.value("ocep_events_total").expect("events counter");
    assert!(events > 0, "aggregate should have seen events");
    // The Prometheus export of the aggregate is well-formed enough to
    // contain every family exactly once.
    let text = snap.to_prometheus();
    let help_lines = text
        .lines()
        .filter(|l| l.starts_with("# HELP ocep_events_total "))
        .count();
    assert_eq!(help_lines, 1);
}
