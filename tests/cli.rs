//! Integration tests for the `ocep` command-line tool: the full
//! record → validate → check pipeline through the real binary.

use std::process::Command;

mod common;

fn ocep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ocep"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ocep-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn record_info_validate_check_pipeline() {
    let dump = tmp("pipeline.poet");
    let out = ocep()
        .args([
            "record-demo",
            "ordering",
            dump.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("violations injected"), "{stdout}");

    let info = ocep()
        .args(["info", dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(info.status.success());
    let info_out = String::from_utf8_lossy(&info.stdout);
    assert!(info_out.contains("recv_snapshot"), "{info_out}");

    let pattern = format!("{}.pattern", dump.display());
    let validate = ocep().args(["validate", &pattern]).output().unwrap();
    assert!(validate.status.success());
    let v_out = String::from_utf8_lossy(&validate.stdout);
    assert!(v_out.contains("[terminating]"), "{v_out}");
    assert!(v_out.contains("pattern is valid"), "{v_out}");

    let check = ocep()
        .args(["check", &pattern, dump.to_str().unwrap(), "--stats"])
        .output()
        .unwrap();
    // A found violation is exit code 1 (0 is reserved for "no match").
    assert_eq!(check.status.code(), Some(1));
    let c_out = String::from_utf8_lossy(&check.stdout);
    assert!(c_out.contains("matches found"), "{c_out}");
    assert!(
        c_out.contains("match: {"),
        "violations must be reported: {c_out}"
    );
}

#[test]
fn check_exit_codes_separate_clean_and_violation() {
    let dump = tmp("exit-codes.poet");
    ocep()
        .args([
            "record-demo",
            "ordering",
            dump.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    // A pattern that cannot match anything in the dump: exit 0.
    let nomatch = tmp("exit-codes-nomatch.pattern");
    std::fs::write(
        &nomatch,
        "A := [*, no_such_type, *]; B := [*, also_missing, *]; pattern := A -> B;",
    )
    .unwrap();
    let clean = ocep()
        .args([
            "check",
            nomatch.to_str().unwrap(),
            dump.to_str().unwrap(),
            "--guard",
        ])
        .output()
        .unwrap();
    assert_eq!(
        clean.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    // The bundled pattern finds the injected violations: exit 1, with or
    // without the admission guard (clean dumps pass through it untouched).
    let pattern = format!("{}.pattern", dump.display());
    for extra in [&[][..], &["--guard"][..]] {
        let hit = ocep()
            .args(["check", &pattern, dump.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        assert_eq!(hit.status.code(), Some(1), "extra flags: {extra:?}");
    }
    // Usage and I/O errors are exit 3.
    let err = ocep()
        .args(["check", &pattern, "/nonexistent.poet"])
        .output()
        .unwrap();
    assert_eq!(err.status.code(), Some(3));
    let bad_flag = ocep()
        .args([
            "check",
            &pattern,
            dump.to_str().unwrap(),
            "--overflow",
            "panic",
        ])
        .output()
        .unwrap();
    assert_eq!(bad_flag.status.code(), Some(3));
}

#[test]
fn checkpoint_then_resume_reaches_the_same_verdicts() {
    let dump = tmp("ckpt.poet");
    ocep()
        .args([
            "record-demo",
            "ordering",
            dump.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    let pattern = format!("{}.pattern", dump.display());

    let full = ocep()
        .args(["check", &pattern, dump.to_str().unwrap()])
        .output()
        .unwrap();
    let full_out = String::from_utf8_lossy(&full.stdout);
    // Final "<N> events, <M> matches found" totals (the per-run
    // "reported" tally legitimately differs: matches reported before the
    // checkpoint cut are not re-reported after resume).
    let summary = |s: &str| {
        s.lines()
            .rev()
            .find(|l| l.ends_with("reported"))
            .and_then(|l| l.rsplit_once(','))
            .map(|(totals, _)| totals.to_owned())
            .unwrap()
    };

    let ckpt = tmp("ckpt.bin");
    let cp = ocep()
        .args([
            "checkpoint",
            &pattern,
            dump.to_str().unwrap(),
            ckpt.to_str().unwrap(),
            "--events",
            "100",
            "--guard",
        ])
        .output()
        .unwrap();
    assert_eq!(
        cp.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&cp.stderr)
    );
    assert!(String::from_utf8_lossy(&cp.stdout).contains("checkpointed after 100"));

    let resumed = ocep()
        .args([
            "check",
            "--resume",
            ckpt.to_str().unwrap(),
            dump.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(resumed.status.code(), full.status.code());
    let r_out = String::from_utf8_lossy(&resumed.stdout);
    assert!(r_out.contains("resumed from"), "{r_out}");
    assert_eq!(
        summary(&full_out),
        summary(&r_out),
        "resumed run must converge to the uninterrupted totals"
    );

    // A truncated checkpoint is a clean error (exit 3), not a panic.
    let bytes = std::fs::read(&ckpt).unwrap();
    let broken = tmp("ckpt-broken.bin");
    std::fs::write(&broken, &bytes[..bytes.len() / 2]).unwrap();
    let bad = ocep()
        .args([
            "check",
            "--resume",
            broken.to_str().unwrap(),
            dump.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("cannot restore"));
}

#[test]
fn fault_fuzz_smoke_is_clean() {
    let out = ocep()
        .args(["fuzz", "--faults", "--cases", "20"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("guarded ingestion is transparent"), "{text}");
}

#[test]
fn check_per_arrival_reports_each_violation() {
    let dump = tmp("per-arrival.poet");
    ocep()
        .args([
            "record-demo",
            "atomicity",
            dump.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    let pattern = format!("{}.pattern", dump.display());
    let rep = ocep()
        .args(["check", &pattern, dump.to_str().unwrap()])
        .output()
        .unwrap();
    let per = ocep()
        .args(["check", &pattern, dump.to_str().unwrap(), "--per-arrival"])
        .output()
        .unwrap();
    let count = |out: &std::process::Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.starts_with("match:"))
            .count()
    };
    assert!(count(&per) >= count(&rep));
}

#[test]
fn helpful_errors_for_bad_input() {
    let out = ocep()
        .args(["validate", "/nonexistent.pattern"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let bad = tmp("bad.pattern");
    std::fs::write(&bad, "pattern := ;").unwrap();
    let out = ocep()
        .args(["validate", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = ocep().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = ocep().output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn custom_pattern_over_demo_dump() {
    // A user-authored pattern (not the bundled one) over a demo dump:
    // find any update that reaches a follower.
    let dump = tmp("custom.poet");
    ocep()
        .args(["record-demo", "ordering", dump.to_str().unwrap()])
        .output()
        .unwrap();
    let pattern = tmp("custom.pattern");
    std::fs::write(
        &pattern,
        "U := [T0, make_update, *]; R := [*, recv_snapshot, *]; pattern := U -> R;",
    )
    .unwrap();
    let out = ocep()
        .args(["check", pattern.to_str().unwrap(), dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "a found match exits 1: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("match: {"), "{stdout}");
}

#[test]
fn show_renders_a_process_time_diagram() {
    let dump = tmp("show.poet");
    ocep()
        .args(["record-demo", "deadlock", dump.to_str().unwrap()])
        .output()
        .unwrap();
    let out = ocep()
        .args(["show", dump.to_str().unwrap(), "--limit", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("T0"), "{text}");
    assert!(text.contains("more events"), "{text}");
    assert!(text.lines().count() >= 7, "{text}");
}

#[test]
fn analyze_and_slice_post_mortem_workflow() {
    // The §II workflow: detect online, then slice the recording down to
    // the involved traces for focused offline analysis.
    let dump = tmp("pm.poet");
    ocep()
        .args([
            "record-demo",
            "ordering",
            dump.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    let pattern = format!("{}.pattern", dump.display());

    let analyze = ocep()
        .args(["analyze", &pattern, dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(analyze.status.success());
    let a_out = String::from_utf8_lossy(&analyze.stdout);
    assert!(a_out.contains("total matches:"), "{a_out}");
    assert!(a_out.contains("involved traces: "), "{a_out}");

    // Slice to the leader plus one victim named in the report.
    let involved = a_out
        .lines()
        .find(|l| l.starts_with("involved traces: "))
        .unwrap()
        .trim_start_matches("involved traces: ")
        .to_owned();
    let sliced = tmp("pm-slice.poet");
    let out = ocep()
        .args([
            "slice",
            dump.to_str().unwrap(),
            sliced.to_str().unwrap(),
            &involved,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The sliced dump still contains every match (all involved traces kept).
    let re_analyze = ocep()
        .args(["analyze", &pattern, sliced.to_str().unwrap()])
        .output()
        .unwrap();
    let r_out = String::from_utf8_lossy(&re_analyze.stdout);
    let total = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("total matches:"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap()
    };
    assert_eq!(total(&a_out), total(&r_out), "slice lost matches: {r_out}");

    // Bad trace list errors cleanly.
    let bad = ocep()
        .args([
            "slice",
            dump.to_str().unwrap(),
            sliced.to_str().unwrap(),
            "X9",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}

#[test]
fn check_exports_metrics_in_both_formats() {
    let dump = tmp("metrics.poet");
    let out = ocep()
        .args([
            "record-demo",
            "deadlock",
            dump.to_str().unwrap(),
            "--seed",
            "11",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let pattern = format!("{}.pattern", dump.display());

    // Prometheus text export (any non-.json path).
    let prom = tmp("metrics.prom");
    let check = ocep()
        .args([
            "check",
            &pattern,
            dump.to_str().unwrap(),
            "--metrics",
            prom.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        check.status.code() == Some(0) || check.status.code() == Some(1),
        "{}",
        String::from_utf8_lossy(&check.stderr)
    );
    let stderr = String::from_utf8_lossy(&check.stderr);
    assert!(stderr.contains("metrics written to"), "{stderr}");
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(text.contains("# HELP ocep_events_total"), "{text}");
    assert!(text.contains("# TYPE ocep_events_total counter"), "{text}");
    assert!(text.contains("# TYPE ocep_arrival_ns histogram"), "{text}");
    // Every HELP line is unique (no family emitted twice).
    let mut helps: Vec<&str> = text.lines().filter(|l| l.starts_with("# HELP ")).collect();
    let total = helps.len();
    helps.sort_unstable();
    helps.dedup();
    assert_eq!(total, helps.len(), "duplicate metric families: {text}");

    // JSON export (path ends in .json) parses as a single object.
    let json = tmp("metrics.json");
    let check = ocep()
        .args([
            "check",
            &pattern,
            dump.to_str().unwrap(),
            "--metrics",
            json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(check.status.code() == Some(0) || check.status.code() == Some(1));
    let body = std::fs::read_to_string(&json).unwrap();
    assert!(
        body.starts_with('{') && body.trim_end().ends_with('}'),
        "{body}"
    );
    assert!(body.contains("\"ocep_events_total\""), "{body}");
    assert!(body.contains("\"families\""), "{body}");
}

#[test]
fn stats_subcommand_replays_and_reads_checkpoints() {
    let dump = tmp("stats.poet");
    let out = ocep()
        .args([
            "record-demo",
            "deadlock",
            dump.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let pattern = format!("{}.pattern", dump.display());

    // Replay mode: full observability is forced on, timing histograms
    // show up in the human rendering.
    let stats = ocep()
        .args(["stats", &pattern, dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        stats.status.success(),
        "{}",
        String::from_utf8_lossy(&stats.stderr)
    );
    let s_out = String::from_utf8_lossy(&stats.stdout);
    assert!(s_out.contains("ocep_events_total"), "{s_out}");
    assert!(s_out.contains("ocep_arrival_ns"), "{s_out}");

    // Checkpoints taken with observability embed the registry; `stats`
    // on the file reports the level it was collected at.
    let ckpt = tmp("stats.ckpt");
    let cp = ocep()
        .args([
            "checkpoint",
            &pattern,
            dump.to_str().unwrap(),
            ckpt.to_str().unwrap(),
            "--obs",
            "full",
        ])
        .output()
        .unwrap();
    assert!(
        cp.status.success(),
        "{}",
        String::from_utf8_lossy(&cp.stderr)
    );
    let from_ckpt = ocep()
        .args(["stats", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(from_ckpt.status.success());
    let c_out = String::from_utf8_lossy(&from_ckpt.stdout);
    assert!(c_out.contains("collected at obs level full"), "{c_out}");
    assert!(c_out.contains("ocep_events_total"), "{c_out}");

    // A metrics-free checkpoint still renders the work counters.
    let plain = tmp("stats-plain.ckpt");
    let cp = ocep()
        .args([
            "checkpoint",
            &pattern,
            dump.to_str().unwrap(),
            plain.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(cp.status.success());
    let from_plain = ocep()
        .args(["stats", plain.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(from_plain.status.success());
    let p_out = String::from_utf8_lossy(&from_plain.stdout);
    assert!(p_out.contains("holds no metrics"), "{p_out}");
    assert!(p_out.contains("ocep_events_total"), "{p_out}");
}

#[test]
fn fuzz_exports_aggregate_metrics() {
    let path = tmp("fuzz-metrics.prom");
    let out = ocep()
        .args([
            "fuzz",
            "--seed",
            "2",
            "--cases",
            "10",
            "--metrics",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("ocep_events_total"), "{text}");
    assert!(text.contains("# TYPE ocep_stage_ns histogram"), "{text}");
}

// ------------------------------------------------------------ networking

/// Polls a `--port-file` until the daemon writes its bound address.
fn wait_port(path: &std::path::Path) -> String {
    common::wait_for(
        &format!("daemon address in {}", path.display()),
        std::time::Duration::from_secs(10),
        std::time::Duration::from_millis(10),
        || match std::fs::read_to_string(path) {
            Ok(s) if !s.trim().is_empty() => Ok(s.trim().to_owned()),
            Ok(_) => Err("port file exists but is still empty".to_owned()),
            Err(e) => Err(format!("port file unreadable: {e}")),
        },
    )
}

/// Records the deadlock demo dump + pattern under distinct names.
fn demo_dump(stem: &str) -> (std::path::PathBuf, String) {
    let dump = tmp(&format!("{stem}.poet"));
    let out = ocep()
        .args([
            "record-demo",
            "deadlock",
            dump.to_str().unwrap(),
            "--seed",
            "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let pattern = format!("{}.pattern", dump.display());
    (dump, pattern)
}

#[test]
fn serve_send_shutdown_round_trip_reports_matches() {
    let (dump, pattern) = demo_dump("net-roundtrip");
    let port_file = tmp("net-roundtrip.port");
    let ckpt_dir = tmp("net-roundtrip-ckpts");
    let metrics = tmp("net-roundtrip.prom");
    let _ = std::fs::remove_file(&port_file);
    let serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--checkpoint",
            ckpt_dir.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    let send_out = String::from_utf8_lossy(&send.stdout);
    // The deadlock demo contains violations: exit 1, like `check`.
    assert_eq!(send.status.code(), Some(1), "{send_out}");
    assert!(send_out.contains("admitted"), "{send_out}");
    assert!(send_out.contains("server shut down"), "{send_out}");

    let out = serve.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("match["), "{stdout}");
    assert!(stdout.contains("events admitted"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint written"), "{stderr}");
    assert!(ckpt_dir.read_dir().unwrap().next().is_some());
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("ocep_net_connections_total"), "{prom}");
    assert!(prom.contains("ocep_net_frames_total"), "{prom}");
}

#[test]
fn tail_once_sees_a_verdict() {
    let (dump, pattern) = demo_dump("net-tail");
    let port_file = tmp("net-tail.port");
    let _ = std::fs::remove_file(&port_file);
    let mut serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    let mut tail = ocep()
        .args(["tail", &addr, "--once"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Wait for the tail's readiness line so no verdict can race the
    // subscription (bounded, unlike a fixed sleep).
    {
        use std::io::BufRead;
        let stderr = tail.stderr.take().unwrap();
        let mut lines = std::io::BufReader::new(stderr).lines();
        common::wait_for(
            "the tail's 'subscribed to' readiness line",
            std::time::Duration::from_secs(10),
            std::time::Duration::from_millis(1),
            || match lines.next() {
                Some(Ok(line)) if line.contains("subscribed to") => Ok(()),
                Some(Ok(line)) => Err(format!("tail stderr said {line:?} instead")),
                Some(Err(e)) => Err(format!("tail stderr read failed: {e}")),
                None => panic!("tail stderr closed before reporting a subscription"),
            },
        );
    }

    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1));

    let tail_out = tail.wait_with_output().unwrap();
    // --once exits 1 after printing the first verdict.
    assert_eq!(tail_out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&tail_out.stdout);
    assert!(stdout.contains("match["), "{stdout}");

    serve.wait().unwrap();
}

#[test]
fn stats_addr_queries_a_live_server() {
    let (_dump, pattern) = demo_dump("net-stats");
    let port_file = tmp("net-stats.port");
    let _ = std::fs::remove_file(&port_file);
    let mut serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    let stats = ocep().args(["stats", "--addr", &addr]).output().unwrap();
    assert_eq!(stats.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stdout.contains("admitted      0"), "{stdout}");
    assert!(stdout.contains("matches       0"), "{stdout}");

    // Clean shutdown via the client library.
    let client = ocep_repro::net::Client::connect(&addr, 10, "cleanup").unwrap();
    client.shutdown().unwrap();
    serve.wait().unwrap();
}

#[test]
fn send_rejects_trace_count_mismatch() {
    let (dump, pattern) = demo_dump("net-mismatch");
    let port_file = tmp("net-mismatch.port");
    let _ = std::fs::remove_file(&port_file);
    let mut serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "3",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    // The demo dump announces 10 traces; the server expects 3 — the
    // handshake must fail with a usage-style error, not hang or crash.
    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&send.stderr);
    assert!(stderr.contains("error:"), "{stderr}");

    let client = ocep_repro::net::Client::connect(&addr, 3, "cleanup").unwrap();
    client.shutdown().unwrap();
    serve.wait().unwrap();
}

#[test]
fn serve_without_matches_exits_zero() {
    let (dump, _pattern) = demo_dump("net-clean");
    let pattern = tmp("net-clean-nomatch.ocep");
    std::fs::write(&pattern, "Z := [*, no_such_event_type, *]; pattern := Z;").unwrap();
    let port_file = tmp("net-clean.port");
    let _ = std::fs::remove_file(&port_file);
    let serve = ocep()
        .args([
            "serve",
            pattern.to_str().unwrap(),
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(0));

    let out = serve.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn crash_during_checkpoint_leaves_a_rejected_torn_file() {
    let (dump, pattern) = demo_dump("net-torn");
    let port_file = tmp("net-torn.port");
    let ckpt_dir = tmp("net-torn-ckpts");
    let _ = std::fs::remove_file(&port_file);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--checkpoint",
            ckpt_dir.to_str().unwrap(),
        ])
        // Crash-injection hook: the daemon dies between the OCKP header
        // and the body, exactly as a power cut mid-write would.
        .env("OCEP_TEST_PARTIAL_CHECKPOINT", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    // The daemon dies before acknowledging the shutdown, so the
    // producer sees a transport error, not a clean stats report.
    assert_eq!(send.status.code(), Some(3), "{send:?}");

    let out = serve.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(121), "hook exit code");

    // The torn file exists (header only) and restore must reject it
    // with a clean error — never a panic, never silent acceptance.
    let torn = ckpt_dir
        .read_dir()
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "ockp"))
        .expect("the crash left a checkpoint file behind");
    assert_eq!(std::fs::metadata(&torn).unwrap().len(), 6, "torn prefix");
    let resume = ocep()
        .args([
            "check",
            "--resume",
            torn.to_str().unwrap(),
            dump.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(resume.status.code(), Some(3), "{resume:?}");
    let stderr = String::from_utf8_lossy(&resume.stderr);
    assert!(stderr.contains("cannot restore checkpoint"), "{stderr}");
}

// ------------------------------------------------------- durable log

/// The `match[...]` lines of a serve/replay stdout, in order.
fn match_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.starts_with("match["))
        .map(str::to_owned)
        .collect()
}

/// SIGKILL mid-stream, restart from the same log directory, re-send the
/// same named session: the recovered daemon must reach bit-identical
/// verdicts to an uninterrupted run, and the resuming client must not
/// re-send a single event.
#[test]
fn wal_serve_survives_sigkill_with_no_resends() {
    let (dump, pattern) = demo_dump("net-wal-crash");

    // Baseline: the same workload served without any crash.
    let port_file = tmp("net-wal-base.port");
    let _ = std::fs::remove_file(&port_file);
    let serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);
    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1));
    let base = serve.wait_with_output().unwrap();
    let base_out = String::from_utf8_lossy(&base.stdout);
    let base_matches = match_lines(&base_out);
    assert!(!base_matches.is_empty(), "{base_out}");
    // Connection/frame counts legitimately differ across a restart, so
    // pin only the admission and verdict counts from the summary line.
    let admitted_prefix = |out: &str| -> String {
        let line = out
            .lines()
            .find(|l| l.contains("events admitted"))
            .expect("summary line")
            .to_owned();
        let cut = line.find("matches reported").expect("summary shape");
        line[..cut + "matches reported".len()].to_owned()
    };
    let base_admitted = admitted_prefix(&base_out);

    // Crash run: serve with a durable log, stream the whole dump, then
    // SIGKILL the daemon with no chance to drain or checkpoint.
    let wal_dir = tmp("net-wal-crash-log");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let port_file = tmp("net-wal-crash.port");
    let _ = std::fs::remove_file(&port_file);
    let mut victim = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--wal",
            wal_dir.to_str().unwrap(),
            "--durability",
            "batch",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);
    let send = ocep()
        .args([
            "send",
            &addr,
            dump.to_str().unwrap(),
            "--name",
            "crash-session",
        ])
        .output()
        .unwrap();
    // The stats round trip confirms every event was processed (and
    // therefore logged) before the kill.
    assert_eq!(send.status.code(), Some(1), "{send:?}");
    victim.kill().unwrap();
    victim.wait().unwrap();

    // Restart from the log; the same named session must resume past its
    // durable prefix and send nothing.
    let port_file = tmp("net-wal-restart.port");
    let _ = std::fs::remove_file(&port_file);
    let serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--wal",
            wal_dir.to_str().unwrap(),
            "--durability",
            "batch",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);
    let send = ocep()
        .args([
            "send",
            &addr,
            dump.to_str().unwrap(),
            "--name",
            "crash-session",
            "--shutdown",
        ])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1), "{send:?}");
    let send_out = String::from_utf8_lossy(&send.stdout);
    let send_err = String::from_utf8_lossy(&send.stderr);
    assert!(send_out.contains("sent 0 events"), "{send_out}");
    assert!(send_out.contains(" 0 duplicates"), "{send_out}");
    assert!(send_err.contains("resumed"), "{send_err}");

    let out = serve.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("recovered"), "{stderr}");
    // Bit-identical conclusions: same verdicts, same admission count.
    assert_eq!(match_lines(&stdout), base_matches, "{stdout}");
    assert_eq!(
        admitted_prefix(&stdout),
        base_admitted,
        "{stdout}\nvs\n{base_admitted}"
    );
}

#[test]
fn checkpoint_every_writes_periodic_checkpoints() {
    let (dump, pattern) = demo_dump("net-ckpt-every");
    let port_file = tmp("net-ckpt-every.port");
    let ckpt_dir = tmp("net-ckpt-every-ckpts");
    let _ = std::fs::remove_file(&port_file);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--checkpoint",
            ckpt_dir.to_str().unwrap(),
            "--checkpoint-every",
            "8",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    // No shutdown: the checkpoint on disk after this send can only come
    // from the periodic trigger, not the graceful drain.
    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1), "{send:?}");
    assert!(
        ckpt_dir.read_dir().unwrap().next().is_some(),
        "no periodic checkpoint was written"
    );

    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1), "{send:?}");
    serve.wait().unwrap();
}

#[test]
fn replay_reruns_a_pattern_over_the_log() {
    let (dump, pattern) = demo_dump("net-replay");
    let wal_dir = tmp("net-replay-log");
    let port_file = tmp("net-replay.port");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_file(&port_file);
    let serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--wal",
            wal_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);
    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1), "{send:?}");
    let out = serve.wait_with_output().unwrap();
    let serve_matches = match_lines(&String::from_utf8_lossy(&out.stdout));
    assert!(!serve_matches.is_empty());

    // Replaying the same pattern over the log reaches the same verdicts.
    let replay = ocep()
        .args(["replay", &pattern, wal_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(1), "{replay:?}");
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert_eq!(match_lines(&stdout), serve_matches, "{stdout}");
    assert!(stdout.contains("replayed"), "{stdout}");
}

#[test]
fn tail_from_zero_replays_the_verdict_backlog() {
    let (dump, pattern) = demo_dump("net-tail-from");
    let wal_dir = tmp("net-tail-from-log");
    let port_file = tmp("net-tail-from.port");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_file(&port_file);
    let mut serve = ocep()
        .args([
            "serve",
            &pattern,
            "--traces",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--wal",
            wal_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    let addr = wait_port(&port_file);

    // Stream everything first: the verdicts fire with no tail attached.
    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1), "{send:?}");

    // A late subscriber asking from log offset 0 still sees them.
    let tail = ocep()
        .args(["tail", &addr, "--from", "0", "--once"])
        .output()
        .unwrap();
    assert_eq!(tail.status.code(), Some(1), "{tail:?}");
    let stdout = String::from_utf8_lossy(&tail.stdout);
    assert!(stdout.contains("match["), "{stdout}");
    assert!(
        stdout.contains("]@"),
        "backlog verdict lacks its lsn: {stdout}"
    );

    let send = ocep()
        .args(["send", &addr, dump.to_str().unwrap(), "--shutdown"])
        .output()
        .unwrap();
    assert_eq!(send.status.code(), Some(1), "{send:?}");
    serve.wait().unwrap();
}
