//! Helpers shared by the integration-test binaries.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::time::{Duration, Instant};

/// Polls `f` every `poll` until it yields `Some`, for at most
/// `deadline` wall-clock time. Returns `None` only on deadline
/// exhaustion — the bounded replacement for bare `sleep` in tests that
/// wait on another process or thread: it resolves as soon as the
/// condition holds instead of a worst-case fixed pause, and it fails
/// with a real deadline instead of flaking when the machine is slow.
pub fn wait_for<T>(
    deadline: Duration,
    poll: Duration,
    mut f: impl FnMut() -> Option<T>,
) -> Option<T> {
    let start = Instant::now();
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if start.elapsed() >= deadline {
            return None;
        }
        std::thread::sleep(poll);
    }
}
