//! Helpers shared by the integration-test binaries.
#![allow(dead_code)] // each test binary uses a subset of these helpers

use std::time::{Duration, Instant};

/// Polls `f` every `poll` until it yields `Ok`, for at most `deadline`
/// wall-clock time — the bounded replacement for bare `sleep` in tests
/// that wait on another process or thread: it resolves as soon as the
/// condition holds instead of a worst-case fixed pause, and it fails
/// with a real deadline instead of flaking when the machine is slow.
///
/// Each unsatisfied poll returns `Err(state)` describing what was
/// actually observed. On deadline exhaustion the helper panics, naming
/// the awaited condition (`what`) and the **last observed state** — so
/// a CI failure log says what the poll saw (an empty port file, the
/// stderr line that arrived instead, a transport error) rather than a
/// bare "deadline exceeded".
pub fn wait_for<T>(
    what: &str,
    deadline: Duration,
    poll: Duration,
    mut f: impl FnMut() -> Result<T, String>,
) -> T {
    let start = Instant::now();
    loop {
        let state = match f() {
            Ok(v) => return v,
            Err(state) => state,
        };
        if start.elapsed() >= deadline {
            panic!("timed out after {deadline:?} waiting for {what}; last observed: {state}");
        }
        std::thread::sleep(poll);
    }
}
