//! Malformed-frame corpus for the OCWP wire codec (tier-1).
//!
//! `tests/corpus/wire/` holds committed byte files, each a complete
//! length-prefixed frame that the decoder must reject with an
//! offset-carrying diagnostic — never a panic, never an allocation
//! bounded only by attacker-controlled counts. The corpus entries were
//! produced by seeded mutation of valid frames and shrunk by hand to
//! the minimal interesting shape; `regenerate_corpus` (ignored)
//! rebuilds them deterministically from the encoder.
//!
//! A second layer drives the corpus at a **live** loopback server:
//! every malformed frame must come back as a `Fault` reply while the
//! connection stays usable — a valid event sent after the garbage must
//! still be admitted and matched.

use ocep_repro::net::wire::{self, Frame, Mode, MAX_FRAME};
use ocep_repro::net::{Client, ServeConfig, Server, WireError};
use ocep_repro::ocep::ingest::GuardConfig;
use ocep_repro::ocep::MonitorSet;
use ocep_repro::pattern::Pattern;
use ocep_repro::poet::{EventKind, PoetServer};
use ocep_repro::vclock::TraceId;
use ocep_rng::Rng;
use std::io::{Read, Write};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/wire")
}

/// Wraps a frame body in the u32 length prefix (the on-wire form).
fn framed(body: &[u8]) -> Vec<u8> {
    let mut out = (body.len() as u32).to_le_bytes().to_vec();
    out.extend_from_slice(body);
    out
}

/// A deterministic single-record Event frame body to mutate.
fn sample_event_body() -> Vec<u8> {
    let mut poet = PoetServer::new(2);
    let e = poet.record(TraceId::new(0), EventKind::Unary, "door", "open");
    wire::encode_body(&Frame::Event(Box::new(e)))
}

/// The committed corpus, rebuilt from scratch. Each entry is a full
/// length-prefixed frame; names describe the injected defect.
fn build_corpus() -> Vec<(&'static str, Vec<u8>)> {
    let hello = wire::encode_body(&Frame::Hello {
        mode: Mode::Producer,
        n_traces: 2,
        name: "corpus".into(),
    });
    let event = sample_event_body();
    let mut entries: Vec<(&'static str, Vec<u8>)> = Vec::new();

    let mut bad_magic = hello.clone();
    bad_magic[1..5].copy_from_slice(b"XXXX");
    entries.push(("bad_magic.bin", framed(&bad_magic)));

    let mut bad_version = hello.clone();
    bad_version[5] = 99;
    entries.push(("bad_version.bin", framed(&bad_version)));

    entries.push(("unknown_type.bin", framed(&[0xEE])));

    let truncated = &event[..event.len() / 2];
    entries.push(("truncated_event.bin", framed(truncated)));

    let mut trailing = wire::encode_body(&Frame::Flush);
    trailing.extend_from_slice(b"\xde\xad\xbe");
    entries.push(("trailing_garbage.bin", framed(&trailing)));

    entries.push(("zero_length.bin", 0u32.to_le_bytes().to_vec()));

    entries.push((
        "oversize_length.bin",
        ((MAX_FRAME as u32) + 1).to_le_bytes().to_vec(),
    ));

    // The clock tail of the single-record body is
    // [clock_n u32][entry u32][entry u32]; claim a 4-billion-entry
    // clock to probe the allocation bound.
    let mut hostile_clock = event.clone();
    let n_at = hostile_clock.len() - 12;
    hostile_clock[n_at..n_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    entries.push(("hostile_clock_width.bin", framed(&hostile_clock)));

    // Hand-rolled record whose type id points past the string table.
    let mut bad_string = vec![1u8]; // T_EVENT
    bad_string.extend_from_slice(&1u32.to_le_bytes()); // one string
    bad_string.extend_from_slice(&1u32.to_le_bytes());
    bad_string.push(b'a');
    bad_string.extend_from_slice(&1u32.to_le_bytes()); // one record
    bad_string.extend_from_slice(&0u32.to_le_bytes()); // trace
    bad_string.extend_from_slice(&0u32.to_le_bytes()); // index
    bad_string.push(2); // Unary
    bad_string.extend_from_slice(&7u32.to_le_bytes()); // ty id 7: no such string
    bad_string.extend_from_slice(&0u32.to_le_bytes()); // text id
    bad_string.push(0); // no partner
    bad_string.extend_from_slice(&0u32.to_le_bytes()); // empty clock
    entries.push(("bad_string_id.bin", framed(&bad_string)));

    // String table entry that is not UTF-8.
    let mut bad_utf8 = vec![1u8];
    bad_utf8.extend_from_slice(&1u32.to_le_bytes());
    bad_utf8.extend_from_slice(&2u32.to_le_bytes());
    bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
    entries.push(("bad_utf8.bin", framed(&bad_utf8)));

    // Batch claiming a thousand records with zero record bytes.
    let mut overcount = vec![2u8]; // T_EVENT_BATCH
    overcount.extend_from_slice(&0u32.to_le_bytes()); // empty string table
    overcount.extend_from_slice(&1000u32.to_le_bytes());
    entries.push(("batch_overcount.bin", framed(&overcount)));

    // Valid record prefix with a kind byte outside {0,1,2}. The kind
    // byte of the single-record body sits right after the two u32 ids.
    let mut bad_kind = event.clone();
    let kind_at = find_record_start(&event) + 8;
    bad_kind[kind_at] = 7;
    entries.push(("bad_kind.bin", framed(&bad_kind)));

    // Partner flag outside {0,1}: 13 bytes from the record start
    // (trace + index + kind + ty + text).
    let mut bad_pflag = event.clone();
    bad_pflag[kind_at + 9] = 9;
    entries.push(("bad_partner_flag.bin", framed(&bad_pflag)));

    // --- Delta-encoded batches (T_EVENT_BATCH_D): every way the
    // sparse clock tail can lie. ---

    // Delta record with no prior full clock on its trace.
    let mut no_base = vec![1u8]; // cflag: delta
    no_base.extend_from_slice(&1u32.to_le_bytes()); // one change
    no_base.extend_from_slice(&0u32.to_le_bytes()); // column 0
    no_base.extend_from_slice(&1u32.to_le_bytes()); // value 1
    entries.push(("delta_no_base.bin", framed(&delta_batch_body(1, &no_base))));

    // Clock flag outside {0,1}.
    entries.push(("delta_bad_flag.bin", framed(&delta_batch_body(2, &[7]))));

    // Delta claiming 4 billion changed columns with no bytes behind it.
    let mut hostile = vec![1u8];
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    entries.push((
        "delta_hostile_count.bin",
        framed(&delta_batch_body(2, &hostile)),
    ));

    // Delta column past the width of the base clock.
    let mut col_oob = vec![1u8];
    col_oob.extend_from_slice(&1u32.to_le_bytes());
    col_oob.extend_from_slice(&9u32.to_le_bytes()); // column 9, width 2
    col_oob.extend_from_slice(&5u32.to_le_bytes());
    entries.push((
        "delta_column_out_of_range.bin",
        framed(&delta_batch_body(2, &col_oob)),
    ));

    // Delta columns out of ascending order.
    let mut descend = vec![1u8];
    descend.extend_from_slice(&2u32.to_le_bytes());
    descend.extend_from_slice(&1u32.to_le_bytes());
    descend.extend_from_slice(&5u32.to_le_bytes());
    descend.extend_from_slice(&0u32.to_le_bytes());
    descend.extend_from_slice(&6u32.to_le_bytes());
    entries.push((
        "delta_columns_descend.bin",
        framed(&delta_batch_body(2, &descend)),
    ));

    // Delta truncated mid-pair: promises two changes, carries one.
    let mut cut = vec![1u8];
    cut.extend_from_slice(&2u32.to_le_bytes());
    cut.extend_from_slice(&0u32.to_le_bytes());
    cut.extend_from_slice(&3u32.to_le_bytes());
    entries.push(("delta_truncated.bin", framed(&delta_batch_body(2, &cut))));

    // --- Multi-tenant registration frames (T_REGISTER / T_UNREGISTER /
    // T_TAIL_TENANT): every way the tenant header and the pattern table
    // can lie. ---

    // Tenant id carrying the namespace separator: rejected before it
    // could alias another tenant's `{tenant}/{pattern}` monitors.
    let mut bad_tenant = vec![14u8]; // T_REGISTER
    pstr(&mut bad_tenant, "bad/tenant");
    bad_tenant.extend_from_slice(&0u32.to_le_bytes()); // empty table
    bad_tenant.extend_from_slice(&0u32.to_le_bytes()); // no patterns
    entries.push(("register_bad_tenant.bin", framed(&bad_tenant)));

    // Tenant id one byte over the 64-byte shape bound.
    let mut long_tenant = vec![16u8]; // T_TAIL_TENANT
    pstr(&mut long_tenant, &"a".repeat(65));
    entries.push(("tail_tenant_overlong.bin", framed(&long_tenant)));

    // Register record whose source id points past the string table.
    let mut unknown_ref = vec![14u8]; // T_REGISTER
    pstr(&mut unknown_ref, "t0");
    unknown_ref.extend_from_slice(&1u32.to_le_bytes()); // one string
    pstr(&mut unknown_ref, "p");
    unknown_ref.extend_from_slice(&1u32.to_le_bytes()); // one pattern
    unknown_ref.extend_from_slice(&0u32.to_le_bytes()); // name id 0
    unknown_ref.extend_from_slice(&7u32.to_le_bytes()); // src id 7: no such string
    entries.push(("register_unknown_pattern_ref.bin", framed(&unknown_ref)));

    // Unregister entry naming an id beyond the table.
    let mut unknown_unreg = vec![15u8]; // T_UNREGISTER
    pstr(&mut unknown_unreg, "t0");
    unknown_unreg.extend_from_slice(&1u32.to_le_bytes()); // one string
    pstr(&mut unknown_unreg, "p");
    unknown_unreg.extend_from_slice(&1u32.to_le_bytes()); // one name
    unknown_unreg.extend_from_slice(&5u32.to_le_bytes()); // id 5: no such string
    entries.push(("unregister_unknown_pattern_ref.bin", framed(&unknown_unreg)));

    // String table truncated mid-entry: claims two strings, the first
    // promises 9 bytes and the body ends after 3.
    let mut cut_table = vec![14u8]; // T_REGISTER
    pstr(&mut cut_table, "t0");
    cut_table.extend_from_slice(&2u32.to_le_bytes()); // two strings
    cut_table.extend_from_slice(&9u32.to_le_bytes()); // 9 bytes promised...
    cut_table.extend_from_slice(b"abc"); // ...3 delivered
    entries.push(("register_truncated_table.bin", framed(&cut_table)));

    // Register claiming 4 billion patterns with no bytes behind it.
    let mut hostile_reg = vec![14u8]; // T_REGISTER
    pstr(&mut hostile_reg, "t0");
    hostile_reg.extend_from_slice(&0u32.to_le_bytes()); // empty table
    hostile_reg.extend_from_slice(&u32::MAX.to_le_bytes());
    entries.push(("register_hostile_count.bin", framed(&hostile_reg)));

    entries
}

/// Appends a length-prefixed string (the wire codec's `str` shape).
fn pstr(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Hand-rolled delta-batch body (`T_EVENT_BATCH_D` = 10). With
/// `records == 2` the first record carries a full width-2 clock `[1, 0]`
/// on trace 0 (establishing the delta base) and the second record's
/// clock tail is `last_clock_tail` verbatim; with `records == 1` the
/// single record gets `last_clock_tail` directly — no base exists.
fn delta_batch_body(records: u32, last_clock_tail: &[u8]) -> Vec<u8> {
    let mut b = vec![10u8]; // T_EVENT_BATCH_D
    b.extend_from_slice(&1u32.to_le_bytes()); // one string
    b.extend_from_slice(&1u32.to_le_bytes());
    b.push(b'a');
    b.extend_from_slice(&records.to_le_bytes());
    for i in 0..records {
        b.extend_from_slice(&0u32.to_le_bytes()); // trace
        b.extend_from_slice(&(i + 1).to_le_bytes()); // index
        b.push(2); // Unary
        b.extend_from_slice(&0u32.to_le_bytes()); // ty id
        b.extend_from_slice(&0u32.to_le_bytes()); // text id
        b.push(0); // no partner
        if i + 1 < records {
            b.push(0); // full clock [1, 0]
            b.extend_from_slice(&2u32.to_le_bytes());
            b.extend_from_slice(&1u32.to_le_bytes());
            b.extend_from_slice(&0u32.to_le_bytes());
        } else {
            b.extend_from_slice(last_clock_tail);
        }
    }
    b
}

/// Byte offset of the first record in `sample_event_body`'s encoding:
/// type byte, string count, then each length-prefixed string, then the
/// record count.
fn find_record_start(body: &[u8]) -> usize {
    let mut at = 1;
    let n = u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize;
    at += 4;
    for _ in 0..n {
        let len = u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) as usize;
        at += 4 + len;
    }
    at + 4
}

/// Rebuilds the committed corpus. Run with
/// `cargo test --test wire_corpus -- --ignored regenerate` after a
/// wire-format change, and review the diff.
#[test]
#[ignore = "regenerates tests/corpus/wire/; run explicitly"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in build_corpus() {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

fn read_corpus() -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/wire exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn committed_corpus_matches_generator() {
    // The committed bytes and the generator must agree, so a format
    // change cannot silently orphan the corpus.
    let want = build_corpus();
    let have = read_corpus();
    assert_eq!(have.len(), want.len(), "corpus file count drifted");
    for (name, bytes) in &want {
        let found = have.iter().find(|(n, _)| n == name);
        assert_eq!(
            found.map(|(_, b)| b.as_slice()),
            Some(bytes.as_slice()),
            "{name} drifted from the generator; rerun regenerate_corpus"
        );
    }
}

#[test]
fn every_corpus_frame_is_rejected_with_a_diagnostic() {
    for (name, bytes) in read_corpus() {
        let mut cursor = std::io::Cursor::new(bytes.as_slice());
        let err = match wire::read_frame(&mut cursor) {
            Ok(f) => panic!("{name} decoded cleanly to {f:?}"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(!msg.is_empty(), "{name}: empty diagnostic");
        match &err {
            WireError::Format(ocep_repro::poet::PoetError::BadHeader(_)) => {}
            // A zero-length frame has no offset to report: the prefix
            // itself is the defect.
            WireError::Format(_) => assert!(
                msg.contains("byte") || msg.contains("offset") || msg.contains("zero-length"),
                "{name}: format diagnostic lacks a byte offset: {msg}"
            ),
            WireError::Oversize(_) | WireError::Io(_) => {}
            other => panic!("{name}: unexpected error class {other:?}"),
        }
    }
}

#[test]
fn seeded_mutations_never_panic_the_decoder() {
    // Byte-level mutation fuzz: flips, truncations, and extensions of
    // every frame shape. The decoder must return Ok or Err — anything
    // that panics or hangs fails the test harness.
    let mut rng = Rng::seed_from_u64(0x0CE9_317E);
    let seeds: Vec<Vec<u8>> = vec![
        wire::encode_body(&Frame::Hello {
            mode: Mode::Tail,
            n_traces: 3,
            name: "fuzz".into(),
        }),
        sample_event_body(),
        wire::encode_body(&Frame::Flush),
        wire::encode_body(&Frame::Ack { credits: 9 }),
        wire::encode_body(&Frame::Verdict(ocep_repro::net::VerdictFrame {
            monitor: "m".into(),
            bindings: vec![(0, 1), (2, 3)],
        })),
        wire::encode_body(&Frame::Register {
            tenant: "acme".into(),
            patterns: vec![("p0".into(), "A := [*, a, *]; p0 := A;".into())],
        }),
        wire::encode_body(&Frame::Unregister {
            tenant: "acme".into(),
            patterns: vec!["p0".into()],
        }),
        wire::encode_body(&Frame::TailTenant {
            tenant: "acme".into(),
        }),
    ];
    for round in 0..2_000 {
        let base = &seeds[round % seeds.len()];
        let mut body = base.clone();
        match rng.gen_range(0u32..3) {
            0 => {
                let n = rng.gen_range(1usize..4);
                for _ in 0..n {
                    let at = rng.gen_range(0usize..body.len());
                    body[at] = rng.next_u32() as u8;
                }
            }
            1 => body.truncate(rng.gen_range(0usize..body.len())),
            _ => {
                let extra = rng.gen_range(1usize..16);
                for _ in 0..extra {
                    body.push(rng.next_u32() as u8);
                }
            }
        }
        let _ = wire::decode_body(&body);
    }
}

#[test]
fn live_server_quarantines_garbage_and_connection_survives() {
    let pattern = Pattern::parse("A := [*, open, *]; pattern := A;").unwrap();
    let mut set = MonitorSet::new(2);
    set.add("pattern", pattern);
    set.enable_guard(GuardConfig::default());
    let server = Server::bind("127.0.0.1:0", set, ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    let mut poet = PoetServer::new(2);
    let event = poet.record(TraceId::new(0), EventKind::Unary, "open", "door");

    let mut sock = std::net::TcpStream::connect(&addr).unwrap();
    sock.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    wire::write_frame(
        &mut sock,
        &Frame::Hello {
            mode: Mode::Producer,
            n_traces: 2,
            name: "garbage".into(),
        },
    )
    .unwrap();

    // Blast every corpus frame that keeps the connection open (the
    // oversize prefix is specified to hard-close, tested below).
    let mut sent = 0usize;
    for (name, bytes) in read_corpus() {
        if name == "oversize_length.bin" {
            continue;
        }
        sock.write_all(&bytes).unwrap();
        sent += 1;
    }
    // The connection must still work: a valid event after the garbage.
    wire::write_frame(&mut sock, &Frame::Event(Box::new(event))).unwrap();
    wire::write_frame(&mut sock, &Frame::Shutdown).unwrap();
    sock.flush().unwrap();

    let mut faults = 0usize;
    let mut acks = 0u64;
    loop {
        match wire::read_frame(&mut sock) {
            Ok(Frame::Fault { detail, .. }) => {
                assert!(!detail.is_empty());
                faults += 1;
            }
            Ok(Frame::Ack { credits }) => acks += u64::from(credits),
            Ok(Frame::StatsReport(_)) | Err(WireError::Closed) => break,
            Ok(other) => panic!("unexpected reply {other:?}"),
            Err(e) => panic!("reply stream failed: {e}"),
        }
    }
    assert_eq!(faults, sent, "every garbage frame earns exactly one fault");
    assert!(acks >= 1, "the post-garbage event was never credited");

    let report = server.join();
    assert_eq!(
        report.ingest.admitted, 1,
        "the valid event after the garbage must still be admitted"
    );
    assert_eq!(report.verdicts.len(), 1, "and must still produce a match");
    let text = report.metrics.to_prometheus();
    assert!(
        text.contains("ocep_net_decode_faults_total"),
        "decode faults must surface in metrics:\n{text}"
    );
}

#[test]
fn oversize_prefix_hard_closes_but_other_clients_are_unaffected() {
    let pattern = Pattern::parse("A := [*, open, *]; pattern := A;").unwrap();
    let mut set = MonitorSet::new(2);
    set.add("pattern", pattern);
    set.enable_guard(GuardConfig::default());
    let server = Server::bind("127.0.0.1:0", set, ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    // Connection 1: oversize length prefix → Fault then close.
    let mut bad = std::net::TcpStream::connect(&addr).unwrap();
    bad.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    bad.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    match wire::read_frame(&mut bad) {
        Ok(Frame::Fault { .. }) => {}
        other => panic!("expected a fault for the oversize prefix, got {other:?}"),
    }
    // The server must close the connection afterwards.
    let mut rest = Vec::new();
    let _ = bad.read_to_end(&mut rest);
    assert!(rest.is_empty(), "no frames may follow the oversize fault");

    // Connection 2 (after the abuse): normal client still served.
    let mut poet = PoetServer::new(2);
    let event = poet.record(TraceId::new(0), EventKind::Unary, "open", "door");
    let mut client = Client::connect(&addr, 2, "good").unwrap();
    client.send_event(&event).unwrap();
    let stats = client.shutdown().unwrap();
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.matches, 1);

    let report = server.join();
    assert_eq!(report.verdicts.len(), 1);
}
