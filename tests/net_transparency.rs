//! Network-transparency corpus (tier-1).
//!
//! Replays pinned conformance seeds through a loopback OCWP server
//! (`ocep-net`) and demands verdicts, representative subsets, and
//! `IngestStats` bit-identical to in-process `observe_raw` delivery.
//! A TCP hop between POET and the monitor must not change a single
//! conclusion — the wire-level analogue of linearization invariance.

use ocep_repro::conformance as conf;
use std::time::Duration;

mod common;

/// Runs one transparency check, retrying (bounded) only when the
/// loopback *transport* failed — an ephemeral-port bind or connect can
/// transiently fail on loaded CI machines, and that says nothing about
/// the invariant under test. A genuine divergence returns immediately.
fn check_with_retry(case: &conf::Case, batch: usize) -> Result<usize, conf::Mismatch> {
    // Deadline exhaustion panics with the last transport error observed.
    common::wait_for(
        "the loopback transport to accept a transparency run",
        Duration::from_secs(5),
        Duration::from_millis(50),
        || match conf::check_net_transparency(case, batch) {
            Err(m) if m.detail.contains("loopback") => Err(m.to_string()),
            outcome => Ok(outcome),
        },
    )
}

/// Pinned master seed; the cases it generates are the corpus.
const MASTER: u64 = 0x0CE9_2026_0005;
/// Corpus size (each case is checked with one of three framings).
const CASES: usize = 100;

#[test]
fn loopback_delivery_is_bit_identical_on_pinned_seeds() {
    let mut verdicts = 0usize;
    for i in 0..CASES {
        let (case, _) = conf::nth_case(MASTER, i);
        // Rotate framings so single-event, small-batch, and large-batch
        // deliveries are all pinned.
        let batch = match i % 3 {
            0 => 1,
            1 => 8,
            _ => 64,
        };
        match check_with_retry(&case, batch) {
            Ok(n) => verdicts += n,
            Err(m) => panic!(
                "net transparency regressed (master {MASTER:#x}, index {i}, batch {batch}): {m}"
            ),
        }
    }
    assert!(
        verdicts > 0,
        "pinned corpus never produced a verdict; the comparison is vacuous"
    );
}

#[test]
fn regression_seed_corpus_is_net_transparent() {
    // The tier-1 differential corpus (tests/corpus/seeds.txt) must also
    // survive the wire: any seed important enough to pin for the engine
    // is important enough to pin for the transport.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/seeds.txt");
    let text = std::fs::read_to_string(&path).expect("tests/corpus/seeds.txt exists");
    let mut checked = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (seed, index) = line.split_once(',').expect("seed,case lines");
        let seed: u64 = seed.trim().parse().expect("numeric master seed");
        let index: usize = index.trim().parse().expect("numeric case index");
        let (case, _) = conf::nth_case(seed, index);
        if let Err(m) = check_with_retry(&case, 8) {
            panic!("corpus case (seed {seed}, index {index}) is not net-transparent: {m}");
        }
        checked += 1;
    }
    assert!(checked >= 10, "corpus shrank to {checked} cases");
}
