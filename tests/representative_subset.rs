//! Tests of the §IV-B representative-subset semantics: coverage,
//! cardinality bound, freshness, and the Fig 3 scenario proper.

use ocep_repro::baselines::SlidingWindowMatcher;
use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::Pattern;
use ocep_repro::poet::{EventKind, PoetServer};
use ocep_repro::vclock::TraceId;

fn t(i: u32) -> TraceId {
    TraceId::new(i)
}

const AB: &str = "A := [*, a, *]; B := [*, b, *]; pattern := A -> B;";

/// Builds the paper's Fig 3 process-time diagram exactly:
///
/// ```text
/// P1: c11 d12 a13 a14 a15 c17
/// P2: a21 d22 e23 b25
/// P3: d31 e32 a33 a34
/// ```
///
/// with a P1→P2 message after a15 (so a13–a15 all causally precede b25)
/// and a21 preceding b25 in P2's program order. On arrival of b25 the
/// matches for `A -> B` are a13b25, a14b25, a15b25, a21b25 — and the
/// desired representative subset is {a15 b25, a21 b25}.
fn fig3_diagram() -> PoetServer {
    let mut poet = PoetServer::new(3);
    // P1: c11.
    poet.record(t(0), EventKind::Unary, "c", "");
    // P2: a21 — the occurrence the sliding window will forget.
    poet.record(t(1), EventKind::Unary, "a", "21");
    // P1: a13 a14 a15 (distinct texts so all three stay despite §VI
    // dedup; the dedup-equivalence property is tested elsewhere).
    poet.record(t(0), EventKind::Unary, "a", "13");
    poet.record(t(0), EventKind::Unary, "a", "14");
    poet.record(t(0), EventKind::Unary, "a", "15");
    // P1 → P2 message: everything on P1 so far precedes P2's remainder.
    let d16 = poet.record(t(0), EventKind::Send, "d", "");
    poet.record_receive(t(1), d16.id(), "d", "");
    // P3: d31, a33, a34 — concurrent with b25 (no link to P2).
    poet.record(t(2), EventKind::Unary, "d", "");
    poet.record(t(2), EventKind::Unary, "a", "33");
    poet.record(t(2), EventKind::Unary, "a", "34");
    // P2: b25 — the terminating event.
    poet.record(t(1), EventKind::Unary, "b", "");
    // P1: c17.
    poet.record(t(0), EventKind::Unary, "c", "");
    poet
}

#[test]
fn fig3_subset_covers_p1_and_p2_but_window_misses_p2() {
    let poet = fig3_diagram();

    // OCEP.
    let mut monitor = Monitor::new(Pattern::parse(AB).unwrap(), 3);
    let mut reported = Vec::new();
    for e in poet.store().iter_arrival() {
        reported.extend(monitor.observe(e));
    }
    // The desired subset of Fig 3: an A on P1 and the A on P2.
    assert!(monitor.covers("A", t(0)), "a1x b25 missing");
    assert!(
        monitor.covers("A", t(1)),
        "a21 b25 missing (the window's blind spot)"
    );
    // a33/a34 on P3 are concurrent with b25: no match, so no coverage.
    assert!(!monitor.covers("A", t(2)));

    // The freshest representative is kept: a15 (text "15"), not a13.
    let a_on_p1 = reported
        .iter()
        .filter_map(|m| {
            let a = m.binding_for("A").unwrap();
            (a.trace() == t(0)).then(|| a.text().to_owned())
        })
        .next_back()
        .expect("an A on P1 was reported");
    assert_eq!(a_on_p1, "15", "nextMatch picks the latest candidate first");

    // The n² sliding window (9 events) has already evicted a21 by the
    // time b25 arrives.
    let mut window = SlidingWindowMatcher::paper_sized(Pattern::parse(AB).unwrap(), 3);
    let mut window_covers_p2 = false;
    for e in poet.store().iter_arrival() {
        for m in window.observe(e) {
            if m[0].trace() == t(1) {
                window_covers_p2 = true;
            }
        }
    }
    assert!(
        !window_covers_p2,
        "the window should demonstrate the omission"
    );
}

#[test]
fn subset_cardinality_never_exceeds_kn() {
    // Flood with matches: many senders, many rounds.
    let n = 6usize;
    let mut poet = PoetServer::new(n);
    let mut monitor = Monitor::new(Pattern::parse(AB).unwrap(), n);
    let mut reported = 0usize;
    for round in 0..200u32 {
        let src = t(round % (n as u32 - 1) + 1);
        poet.record(src, EventKind::Unary, "a", round.to_string());
        let s = poet.record(src, EventKind::Send, "m", "");
        poet.record_receive(t(0), s.id(), "m", "");
        poet.record(t(0), EventKind::Unary, "b", round.to_string());
    }
    for e in poet.store().iter_arrival() {
        reported += monitor.observe(e).len();
    }
    let k = 2;
    assert!(monitor.subset().len() <= k * n);
    assert!(reported <= k * n);
    // The subset is *fresh*: its B events are from late rounds, not the
    // first ones, because every new match replaces its cells.
    let max_b_round: u32 = monitor
        .subset()
        .iter()
        .map(|m| m.binding_for("B").unwrap().text().parse::<u32>().unwrap())
        .max()
        .unwrap();
    assert!(
        max_b_round >= 190,
        "subset should hold recent matches, got {max_b_round}"
    );
}

#[test]
fn per_arrival_policy_reports_every_completing_event() {
    let mut poet = PoetServer::new(1);
    let mut monitor = Monitor::with_config(
        Pattern::parse(AB).unwrap(),
        1,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            dedup: false,
            node_limit: 0,
            parallelism: 1,
            ..MonitorConfig::default()
        },
    );
    poet.record(t(0), EventKind::Unary, "a", "");
    let mut reports = 0;
    for i in 0..5 {
        poet.record(t(0), EventKind::Unary, "b", i.to_string());
    }
    for e in poet.store().iter_arrival() {
        reports += monitor.observe(e).len();
    }
    assert_eq!(reports, 5, "each b completes a match and must alert");

    // Representative policy on the same stream reports only the first.
    let mut poet = PoetServer::new(1);
    let mut monitor = Monitor::with_config(
        Pattern::parse(AB).unwrap(),
        1,
        MonitorConfig {
            policy: SubsetPolicy::Representative,
            dedup: false,
            node_limit: 0,
            parallelism: 1,
            ..MonitorConfig::default()
        },
    );
    poet.record(t(0), EventKind::Unary, "a", "");
    for i in 0..5 {
        poet.record(t(0), EventKind::Unary, "b", i.to_string());
    }
    let mut reports = 0;
    for e in poet.store().iter_arrival() {
        reports += monitor.observe(e).len();
    }
    assert_eq!(reports, 1);
}

#[test]
fn coverage_expands_monotonically_across_arrivals() {
    let n = 4;
    let mut poet = PoetServer::new(n);
    let mut monitor = Monitor::new(Pattern::parse(AB).unwrap(), n);
    let mut covered_history: Vec<usize> = Vec::new();
    for round in 0..(n as u32 - 1) {
        let src = t(round + 1);
        poet.record(src, EventKind::Unary, "a", "");
        let s = poet.record(src, EventKind::Send, "m", "");
        poet.record_receive(t(0), s.id(), "m", "");
        poet.record(t(0), EventKind::Unary, "b", "");
        for e in poet.linearization() {
            let _ = monitor.observe(&e);
        }
        let covered = (0..n as u32)
            .filter(|&tr| monitor.covers("A", t(tr)))
            .count();
        covered_history.push(covered);
    }
    // Each round brings a new sender trace into the subset.
    assert_eq!(covered_history, vec![1, 2, 3]);
}

#[test]
fn node_limit_bounds_search_work() {
    // A pathological pattern over a dense history, with a tiny budget:
    // the search must abort quickly rather than hang, and the monitor
    // must remain usable afterwards.
    let src = "X := [*, x, *]; Y := [*, x, *]; Z := [*, x, *]; \
               pattern := X || Y && Y || Z && X || Z;";
    let n = 8;
    let mut poet = PoetServer::new(n);
    let mut monitor = Monitor::with_config(
        Pattern::parse(src).unwrap(),
        n,
        MonitorConfig {
            node_limit: 50,
            dedup: false,
            policy: SubsetPolicy::Representative,
            parallelism: 1,
            ..MonitorConfig::default()
        },
    );
    // Dense concurrent 'x' events everywhere.
    for round in 0..40u32 {
        for p in 0..n as u32 {
            poet.record(t(p), EventKind::Send, "x", round.to_string());
        }
    }
    for e in poet.store().iter_arrival() {
        let _ = monitor.observe(e);
    }
    // The limit applies per arrival; the monitor survives and found
    // matches for early arrivals at least.
    assert!(monitor.stats().matches_found > 0);
    assert!(monitor.stats().nodes <= 51 * monitor.stats().searches);
}
