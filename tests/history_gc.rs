//! Bounded-memory history GC transparency (PR 8).
//!
//! With GC enabled, peak resident leaf-history size on a long pinned
//! stream must stay bounded while verdicts remain bit-identical to a
//! GC-off run — the acceptance criterion for the durable-log PR's
//! watermark truncation rule.

use ocep_repro::ocep::{GuardConfig, MonitorSet};
use ocep_repro::pattern::Pattern;
use ocep_repro::poet::{Event, EventKind, PoetServer};
use ocep_repro::vclock::TraceId;

const PATTERN: &str = "A := [*, ping, *]; B := [*, pong, *]; pattern := A -> B;";

/// A long two-trace stream of ping sends / pong receives: every event is
/// a message endpoint, so the §VI dedup never collapses it and GC-off
/// history grows linearly with the stream.
fn pinned_stream(rounds: usize) -> Vec<Event> {
    let mut poet = PoetServer::new(2);
    for i in 0..rounds {
        let from = TraceId::new((i % 2) as u32);
        let to = TraceId::new(((i + 1) % 2) as u32);
        let s = poet.record(from, EventKind::Send, "ping", "m");
        poet.record_receive(to, s.id(), "pong", "m");
    }
    poet.linearization().collect()
}

fn build_set() -> MonitorSet {
    let mut set = MonitorSet::new(2);
    set.add("pings", Pattern::parse(PATTERN).unwrap());
    set.enable_guard(GuardConfig::default());
    set
}

#[test]
fn gc_bounds_history_and_preserves_verdicts() {
    const ROUNDS: usize = 600;
    const GC_EVERY: usize = 100;
    const KEEP_RECENT: usize = 16;

    let events = pinned_stream(ROUNDS);

    let mut plain = build_set();
    let mut plain_verdicts = Vec::new();
    for e in &events {
        for (name, m) in plain.observe_raw(e) {
            plain_verdicts.push(format!("{name}: {m}"));
        }
    }
    let plain_peak: usize = plain.iter().map(|(_, m)| m.history_size()).sum();

    let mut gc = build_set();
    let mut gc_verdicts = Vec::new();
    let mut gc_peak = 0usize;
    let mut released = 0usize;
    for (i, e) in events.iter().enumerate() {
        for (name, m) in gc.observe_raw(e) {
            gc_verdicts.push(format!("{name}: {m}"));
        }
        gc_peak = gc_peak.max(gc.iter().map(|(_, m)| m.history_size()).sum());
        if (i + 1) % GC_EVERY == 0 {
            let watermark = gc.admitted_watermark().expect("guard enabled");
            released += gc.gc_histories(&watermark, KEEP_RECENT);
        }
    }

    assert_eq!(
        gc_verdicts, plain_verdicts,
        "GC must be verdict-transparent on the pinned stream"
    );
    assert!(released > 0, "the stream must actually trigger truncation");
    // GC-off history grows with the stream; GC-on stays near the
    // keep-recent floor plus one GC window.
    assert!(
        plain_peak >= ROUNDS,
        "GC-off history should grow linearly (got {plain_peak})"
    );
    assert!(
        gc_peak <= 2 * (GC_EVERY + 2 * KEEP_RECENT),
        "GC-on peak {gc_peak} should be bounded by the GC window"
    );
    // The resident-size gauge reflects the release.
    let final_gc: usize = gc.iter().map(|(_, m)| m.history_size()).sum();
    let final_plain: usize = plain.iter().map(|(_, m)| m.history_size()).sum();
    assert!(final_gc < final_plain / 4, "{final_gc} vs {final_plain}");
}

#[test]
fn gc_never_truncates_lim_witness_leaves() {
    // X ~> Y: X's history is the "no occurrence causally between"
    // witness set; GC must leave it alone even when covered+dominated.
    let src = "X := [*, ping, *]; Y := [*, pong, *]; pattern := X ~> Y;";
    let mut set = MonitorSet::new(2);
    set.add("lim", Pattern::parse(src).unwrap());
    set.enable_guard(GuardConfig::default());
    let events = pinned_stream(100);
    let mut verdicts_gc = Vec::new();
    for (i, e) in events.iter().enumerate() {
        for (_, m) in set.observe_raw(e) {
            verdicts_gc.push(m.to_string());
        }
        if (i + 1) % 20 == 0 {
            let watermark = set.admitted_watermark().unwrap();
            set.gc_histories(&watermark, 4);
        }
    }
    let mut plain = MonitorSet::new(2);
    plain.add("lim", Pattern::parse(src).unwrap());
    plain.enable_guard(GuardConfig::default());
    let mut verdicts_plain = Vec::new();
    for e in &events {
        for (_, m) in plain.observe_raw(e) {
            verdicts_plain.push(m.to_string());
        }
    }
    assert_eq!(verdicts_gc, verdicts_plain);
}
