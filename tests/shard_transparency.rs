//! Shard-transparency corpus (tier-1).
//!
//! Replays pinned conformance seeds through the N-shard engine core
//! (`ocep-net`'s `ShardGroup`, the machinery behind `ocep serve
//! --shards N`) at shard counts 1, 2, 4, and 8, and demands verdict
//! sequences, representative subsets, `IngestStats`, and per-monitor
//! checkpoint bytes bit-identical to in-process `observe_raw`
//! delivery. The shard count is an implementation detail: splitting
//! the monitor partition across admission-guard replicas and
//! re-merging the verdict fan-in must not change a single conclusion,
//! counter, or byte.
//!
//! The suite also proves its own sharpness: with the misroute
//! sabotage hook armed (one data frame silently skipped on the shard
//! owning the monitor), every verdict-bearing case must FAIL the
//! differential — a routing bug cannot hide from this corpus.

use ocep_repro::conformance as conf;

/// Pinned master seed; the cases it generates are the corpus.
const MASTER: u64 = 0x0CE9_2026_0009;
/// Corpus size (each case runs at every shard count).
const CASES: usize = 100;
/// Every shard count the corpus pins.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// The framing rotation shared with the net-transparency corpus:
/// single-event, small-batch, and large-batch deliveries all stay
/// pinned.
fn batch_of(i: usize) -> usize {
    match i % 3 {
        0 => 1,
        1 => 8,
        _ => 64,
    }
}

#[test]
fn sharded_delivery_is_bit_identical_on_pinned_seeds() {
    let mut verdicts = 0usize;
    for i in 0..CASES {
        let (case, _) = conf::nth_case(MASTER, i);
        let batch = batch_of(i);
        for shards in SHARDS {
            match conf::check_shard_transparency(&case, shards, batch) {
                Ok(n) => verdicts += n,
                Err(m) => panic!(
                    "shard transparency regressed (master {MASTER:#x}, index {i}, \
                     shards {shards}, batch {batch}): {m}"
                ),
            }
        }
    }
    assert!(
        verdicts > 0,
        "pinned corpus never produced a verdict; the comparison is vacuous"
    );
}

#[test]
fn misrouted_frames_fail_every_verdict_bearing_case() {
    // Sharpness proof: deliver each case's whole workload as one frame
    // with the misroute hook armed, so the owning shard misses the
    // entire stream. Any case with at least one verdict must then fail
    // the differential — if it passes, the suite could not catch a
    // routing bug either.
    let mut exercised = 0usize;
    for i in 0..CASES {
        let (case, _) = conf::nth_case(MASTER, i);
        let clean = conf::check_shard_transparency(&case, 2, usize::MAX)
            .unwrap_or_else(|m| panic!("clean run failed (index {i}): {m}"));
        if clean == 0 {
            continue;
        }
        exercised += 1;
        assert!(
            conf::check_shard_transparency_sabotaged(&case, 2, usize::MAX).is_err(),
            "index {i}: a misrouted frame went undetected by the differential"
        );
    }
    assert!(
        exercised >= 10,
        "only {exercised} verdict-bearing cases; the sabotage proof is too weak"
    );
}

#[test]
fn regression_seed_corpus_is_shard_transparent() {
    // Any seed important enough to pin for the engine differential is
    // important enough to pin for the sharded core.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/seeds.txt");
    let text = std::fs::read_to_string(&path).expect("tests/corpus/seeds.txt exists");
    let mut checked = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (seed, index) = line.split_once(',').expect("seed,case lines");
        let seed: u64 = seed.trim().parse().expect("numeric master seed");
        let index: usize = index.trim().parse().expect("numeric case index");
        let (case, _) = conf::nth_case(seed, index);
        if let Err(m) = conf::check_shard_transparency(&case, 4, 8) {
            panic!("corpus case (seed {seed}, index {index}) is not shard-transparent: {m}");
        }
        checked += 1;
    }
    assert!(checked >= 10, "corpus shrank to {checked} cases");
}
