//! Deterministic-simulator corpus (tier-1).
//!
//! Replays every seed pinned in `tests/corpus/sim-seeds.txt` through
//! the whole-system simulator — the real serving engine under scripted
//! clients, all fault classes, and a mid-stream crash/restart — and
//! demands that each run agrees bit-for-bit with its journal-replay
//! oracle. A sample of seeds is run twice to pin bit-reproducibility
//! itself (same seed ⇒ identical digest).
//!
//! `OCEP_SIM_SEEDS=N` sweeps N additional unpinned seeds after the
//! corpus — the nightly depth knob (CI uses 500); it costs nothing
//! when unset.

use ocep_repro::sim::{run_sim, FaultToggles, SimConfig};

/// The chaos configuration every corpus seed is pinned under.
fn corpus_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        clients: 8,
        tails: 2,
        events: 64,
        faults: FaultToggles::all(),
        crashes: 1,
        sabotage: false,
        wal: false,
        wal_sabotage: false,
        shards: 0,
    }
}

/// A `wal <seed>` corpus line: the same chaos run served through the
/// on-disk durable log, with SIGKILL-style crashes recovered by log
/// replay instead of checkpoint restore.
fn wal_corpus_config(seed: u64) -> SimConfig {
    SimConfig {
        crashes: 2,
        wal: true,
        ..corpus_config(seed)
    }
}

/// A `shard <seed>` corpus line: the same chaos run on a sharded
/// engine core (2/4/8 shards, derived from the seed), with each crash
/// cycle killing one shard and rebuilding it from its checkpoint blob
/// mid-stream. The oracle stays the single in-process set, so the
/// fan-in merge order and the restore round-trip are pinned
/// bit-for-bit.
fn shard_corpus_config(seed: u64) -> SimConfig {
    SimConfig {
        crashes: 2,
        shards: 2 << (seed % 3),
        ..corpus_config(seed)
    }
}

fn check_seed(seed: u64, reproducibility: bool) {
    let config = corpus_config(seed);
    let out = run_sim(&config);
    assert!(
        out.mismatch.is_none(),
        "sim corpus seed {seed} diverged from its oracle: {}",
        out.mismatch.unwrap()
    );
    if reproducibility {
        let again = run_sim(&config);
        assert_eq!(
            out.digest, again.digest,
            "sim corpus seed {seed} is not bit-reproducible"
        );
    }
}

#[test]
fn pinned_sim_seeds_stay_oracle_exact() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/sim-seeds.txt");
    let text = std::fs::read_to_string(&path).expect("tests/corpus/sim-seeds.txt exists");
    let mut checked = 0usize;
    let mut crashes = 0usize;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let config = if let Some(rest) = line.strip_prefix("wal ") {
            wal_corpus_config(rest.trim().parse().expect("numeric wal seed"))
        } else if let Some(rest) = line.strip_prefix("shard ") {
            shard_corpus_config(rest.trim().parse().expect("numeric shard seed"))
        } else {
            corpus_config(line.parse().expect("numeric seed per line"))
        };
        let seed = config.seed;
        let out = run_sim(&config);
        assert!(
            out.mismatch.is_none(),
            "sim corpus seed {seed} diverged from its oracle: {}",
            out.mismatch.unwrap()
        );
        crashes += out.crashes;
        // Every 10th pinned seed also pins bit-reproducibility.
        if checked.is_multiple_of(10) {
            let again = run_sim(&config);
            assert_eq!(
                out.digest, again.digest,
                "sim corpus seed {seed} is not bit-reproducible"
            );
        }
        checked += 1;
    }
    assert!(checked >= 50, "corpus shrank to {checked} seeds");
    assert!(
        crashes >= checked / 2,
        "only {crashes} crash/restart cycles across {checked} seeds; \
         the crash path is under-exercised"
    );
}

#[test]
fn extra_seeds_from_env_stay_oracle_exact() {
    // Nightly depth: OCEP_SIM_SEEDS=500 sweeps seeds the corpus does
    // not pin. Unset (the default), this test is free.
    let extra: u64 = std::env::var("OCEP_SIM_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    for i in 0..extra {
        // Offset past the pinned range so the sweep adds coverage.
        check_seed(1_000 + i, i.is_multiple_of(25));
    }
}
