//! Adapter corpus and fixture discipline.
//!
//! Two committed artifact sets back the ingestion adapters:
//!
//! * `tests/corpus/adapters/` — hand-written malformed recordings, one
//!   per diagnostic family (truncation, cyclic references, clock-width
//!   overflow, hostile counts). `MANIFEST.txt` pins each file's format
//!   and expected error kind; every entry must be *rejected* with
//!   exactly that kind, line-diagnosed, and never panic.
//! * `examples/fixtures/` — pinned-seed recordings and their curated
//!   pattern files. Each recording must be byte-identical to its
//!   `testgen` generator at the pinned parameters (the same
//!   cross-check discipline as the wire corpus), and each pattern file
//!   to its canonical source.
//!
//! Regenerate the fixture files after changing a generator with:
//!
//! ```text
//! cargo test --test adapters_corpus -- --ignored regenerate
//! ```

use ocep_repro::adapters::testgen::{fixtures, Recording};
use ocep_repro::adapters::{self, AdapterErrorKind};
use ocep_repro::simulator::workloads::{random_walk, replicated_service};
use std::path::{Path, PathBuf};

fn repo(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(repo(rel))
        .unwrap_or_else(|e| panic!("cannot read {rel}: {e} (run the regenerate test?)"))
}

/// Every committed fixture, its generator, and its on-disk path.
fn fixture_recordings() -> Vec<(&'static str, &'static str, Recording)> {
    vec![
        (
            "mpi",
            "examples/fixtures/mpi_deadlock.trace",
            fixtures::mpi_deadlock(),
        ),
        (
            "otlp",
            "examples/fixtures/zookeeper_spans.jsonl",
            fixtures::zookeeper(),
        ),
        (
            "otlp",
            "examples/fixtures/saga_spans.jsonl",
            fixtures::saga(),
        ),
        (
            "session",
            "examples/fixtures/session_handoff.jsonl",
            fixtures::session_handoff(),
        ),
    ]
}

/// Every committed pattern file and its canonical source text.
fn fixture_patterns() -> Vec<(&'static str, String)> {
    vec![
        (
            "examples/fixtures/deadlock_cycle.pat",
            random_walk::cycle_pattern(fixtures::CYCLE_LEN),
        ),
        (
            "examples/fixtures/ordering_violation.pat",
            replicated_service::ordering_pattern(),
        ),
        (
            "examples/fixtures/saga_compensation.pat",
            fixtures::SAGA_PATTERN.to_owned(),
        ),
        (
            "examples/fixtures/read_your_writes.pat",
            fixtures::RYW_PATTERN.to_owned(),
        ),
    ]
}

#[test]
fn committed_fixtures_match_their_generators() {
    for (format, path, rec) in fixture_recordings() {
        assert_eq!(
            read(path),
            rec.text,
            "{path} diverged from its generator — regenerate and re-commit"
        );
        assert!(rec.truth > 0, "{path}: pinned seed must inject violations");
        let out = rec.parse(format);
        assert_eq!(out.n_traces, rec.n_traces, "{path}");
        assert!(out.events.len() as u64 == out.stats.events, "{path}");
    }
    for (path, canonical) in fixture_patterns() {
        assert_eq!(read(path), canonical, "{path} diverged from its source");
        ocep_repro::pattern::Pattern::parse(&canonical)
            .unwrap_or_else(|e| panic!("{path} does not parse: {e}"));
    }
}

#[test]
fn corpus_recordings_are_rejected_with_the_pinned_kind() {
    let manifest = read("tests/corpus/adapters/MANIFEST.txt");
    let mut checked = 0usize;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let (format, rel, kind) = (
            toks.next().expect("manifest: format"),
            toks.next().expect("manifest: path"),
            toks.next().expect("manifest: expected kind"),
        );
        let adapter = adapters::by_name(format)
            .unwrap_or_else(|| panic!("manifest names unknown format {format}"));
        let input = read(&format!("tests/corpus/adapters/{rel}"));
        let err = adapter
            .parse_str(&input)
            .err()
            .unwrap_or_else(|| panic!("{rel} must be rejected"));
        assert_eq!(err.kind.name(), kind, "{rel}: {err}");
        assert!(err.line >= 1, "{rel}: diagnostics carry a 1-based line");
        let shown = err.to_string();
        assert!(shown.contains("line "), "{rel}: {shown}");
        assert!(shown.contains(kind), "{rel}: {shown}");
        checked += 1;
    }
    assert!(checked >= 12, "corpus shrank to {checked} entries");
    // Every file in the corpus tree must be listed — an unlisted file
    // is a fixture nobody checks.
    for format in adapters::FORMATS {
        let dir = repo(&format!("tests/corpus/adapters/{format}"));
        for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{dir:?}: {e}")) {
            let name = entry.unwrap().file_name();
            let rel = format!("{format}/{}", name.to_string_lossy());
            assert!(
                manifest.contains(&rel),
                "tests/corpus/adapters/{rel} is not in MANIFEST.txt"
            );
        }
    }
}

#[test]
fn hostile_count_families_are_cheap_to_reject() {
    // The clock-width and record-count rejections must come from the
    // *claim*, before any proportional allocation: parsing the hostile
    // header corpus entry must be effectively instant even though it
    // claims four billion ranks.
    let input = read("tests/corpus/adapters/mpi/clock_width.trace");
    let err = adapters::by_name("mpi")
        .unwrap()
        .parse_str(&input)
        .unwrap_err();
    assert_eq!(err.kind, AdapterErrorKind::Limit);
    assert!(err.to_string().contains("clock width"), "{err}");
}

/// Rewrites every generated fixture file from its generator. Run after
/// a deliberate generator change, then re-commit the results:
///
/// ```text
/// cargo test --test adapters_corpus -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes committed fixture files; run explicitly"]
fn regenerate() {
    for (_, path, rec) in fixture_recordings() {
        std::fs::write(repo(path), &rec.text).unwrap();
        eprintln!(
            "wrote {path} ({} bytes, truth {})",
            rec.text.len(),
            rec.truth
        );
    }
    for (path, canonical) in fixture_patterns() {
        std::fs::write(repo(path), &canonical).unwrap();
        eprintln!("wrote {path}");
    }
}
