//! The curated pattern library, pinned.
//!
//! Each committed fixture recording under `examples/fixtures/` is
//! matched against its curated pattern file and the verdict counts are
//! asserted exactly — the same computation the `examples/` binaries
//! narrate, kept honest by CI. The recordings are pinned-seed
//! generated (see `tests/adapters_corpus.rs` for the byte-level
//! cross-check), so exact counts are deterministic.

use ocep_repro::adapters::testgen::fixtures;
use ocep_repro::adapters::{self, AdapterOutput};
use ocep_repro::ocep::{Monitor, MonitorConfig, SubsetPolicy};
use ocep_repro::pattern::Pattern;

fn fixture(rel: &str) -> String {
    let path = format!("{}/examples/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn ingest(format: &str, rel: &str) -> AdapterOutput {
    adapters::by_name(format)
        .expect("known format")
        .parse_str(&fixture(rel))
        .unwrap_or_else(|e| panic!("{rel}: {e}"))
}

/// Runs a per-arrival monitor over a fixture and returns how many
/// matches it reported.
fn detections(out: &AdapterOutput, pattern_rel: &str) -> usize {
    let pattern =
        Pattern::parse(&fixture(pattern_rel)).unwrap_or_else(|e| panic!("{pattern_rel}: {e}"));
    let mut monitor = Monitor::with_config(
        pattern,
        out.n_traces,
        MonitorConfig {
            policy: SubsetPolicy::PerArrival,
            ..MonitorConfig::default()
        },
    );
    out.events.iter().map(|e| monitor.observe(e).len()).sum()
}

#[test]
fn mpi_deadlock_fixture_detects_every_injected_cycle() {
    let out = ingest("mpi", "mpi_deadlock.trace");
    let truth = fixtures::mpi_deadlock().truth;
    let pattern = Pattern::parse(&fixture("deadlock_cycle.pat")).unwrap();
    let mut monitor = Monitor::new(pattern, out.n_traces);
    for e in &out.events {
        monitor.observe(e);
    }
    assert_eq!(truth, 8, "pinned fixture truth");
    assert!(
        monitor.stats().matches_found >= truth as u64,
        "every injected cycle must be found (found {})",
        monitor.stats().matches_found
    );
    // Exact pin: a change here means matching semantics moved.
    assert_eq!(monitor.stats().matches_found, 24);
}

#[test]
fn zookeeper_fixture_detects_exactly_the_injected_bugs() {
    let out = ingest("otlp", "zookeeper_spans.jsonl");
    let truth = fixtures::zookeeper().truth;
    assert_eq!(truth, 6, "pinned fixture truth");
    assert_eq!(detections(&out, "ordering_violation.pat"), truth);
}

#[test]
fn saga_fixture_detects_exactly_the_missing_compensations() {
    let out = ingest("otlp", "saga_spans.jsonl");
    let truth = fixtures::saga().truth;
    assert_eq!(truth, 8, "pinned fixture truth");
    assert_eq!(detections(&out, "saga_compensation.pat"), truth);
}

#[test]
fn session_fixture_detects_exactly_the_ryw_breaches() {
    let out = ingest("session", "session_handoff.jsonl");
    let truth = fixtures::session_handoff().truth;
    assert_eq!(truth, 4, "pinned fixture truth");
    assert_eq!(detections(&out, "read_your_writes.pat"), truth);
}

#[test]
fn correct_runs_stay_silent() {
    // A recording with no injected violations must produce zero
    // matches for its curated pattern: the patterns alert on the bug,
    // not on the workload.
    use ocep_repro::adapters::testgen;

    for (format, rec, pat) in [
        (
            "otlp",
            testgen::zookeeper_otlp(2013, 4, 12, 0.0),
            "ordering_violation.pat",
        ),
        (
            "otlp",
            testgen::saga_otlp(5, 40, 0.3, 0.0),
            "saga_compensation.pat",
        ),
        (
            "session",
            testgen::session_ryw(3, 10, 0.0),
            "read_your_writes.pat",
        ),
    ] {
        assert_eq!(rec.truth, 0, "{pat}: clean generator run");
        let out = rec.parse(format);
        assert_eq!(detections(&out, pat), 0, "{pat} must stay silent");
    }
    let rec = testgen::mpi_deadlock(7, 8, 40, 3, 0.0, 2);
    assert_eq!(rec.truth, 0);
    let out = rec.parse("mpi");
    let pattern = Pattern::parse(&fixture("deadlock_cycle.pat")).unwrap();
    let mut monitor = Monitor::new(pattern, out.n_traces);
    for e in &out.events {
        monitor.observe(e);
    }
    assert_eq!(monitor.stats().matches_found, 0, "no cycles injected");
}
