//! Scalability regression guards: per-event work must stay bounded as
//! runs grow (the §VI bounded-storage story plus the O(1) partner
//! resolution), so a refactor that reintroduces linear scans fails here.

use ocep_repro::ocep::{Monitor, MonitorConfig};
use ocep_repro::simulator::workloads::{atomicity, message_race};

fn race_candidates(messages_per_sender: usize) -> (u64, u64) {
    let g = message_race::generate(&message_race::Params {
        n_processes: 6,
        messages_per_sender,
        seed: 3,
    });
    let mut monitor = Monitor::new(g.pattern(), g.n_traces);
    for e in g.poet.store().iter_arrival() {
        let _ = monitor.observe(e);
    }
    (monitor.stats().searches, monitor.stats().candidates)
}

#[test]
fn race_search_work_scales_linearly_with_run_length() {
    // Doubling the run doubles the searches; candidates examined per
    // search must stay roughly constant (partner index + concurrency
    // windows), not grow with history size.
    let (searches_1x, cands_1x) = race_candidates(40);
    let (searches_2x, cands_2x) = race_candidates(80);
    assert!(searches_2x >= searches_1x * 2 - 4);
    let per_search_1x = cands_1x as f64 / searches_1x as f64;
    let per_search_2x = cands_2x as f64 / searches_2x as f64;
    assert!(
        per_search_2x < per_search_1x * 2.0,
        "per-search candidate work grew {per_search_1x:.1} -> {per_search_2x:.1}: \
         a linear scan crept back in"
    );
}

#[test]
fn dedup_bounds_history_under_unary_storms() {
    // The atomicity workload with huge rounds: stored history must be a
    // small fraction of events observed.
    let g = atomicity::generate(&atomicity::Params {
        n_threads: 4,
        rounds_per_thread: 200,
        bug_prob: 0.01,
        seed: 5,
    });
    let mut monitor = Monitor::new(g.pattern(), g.n_traces);
    for e in g.poet.store().iter_arrival() {
        let _ = monitor.observe(e);
    }
    let events = monitor.stats().events as usize;
    // enter_method is the only stored class (routed into both pattern
    // leaves); everything else is never stored.
    let enters = g
        .poet
        .store()
        .iter_arrival()
        .filter(|e| e.ty() == "enter_method")
        .count();
    assert_eq!(monitor.history_size(), 2 * enters);
    assert!(monitor.history_size() < events / 2);
}

#[test]
fn search_cost_is_independent_of_irrelevant_traffic() {
    // Adding non-matching traffic must not change search work at all
    // (§V-B: "the runtime of the matching algorithm is only affected by
    // the events that are actually in the pattern").
    use ocep_repro::pattern::Pattern;
    use ocep_repro::poet::{EventKind, PoetServer};
    use ocep_repro::vclock::TraceId;

    let src = "A := [*, a, *]; B := [*, b, *]; pattern := A -> B;";
    let run = |noise: usize| {
        let mut poet = PoetServer::new(2);
        let mut monitor =
            Monitor::with_config(Pattern::parse(src).unwrap(), 2, MonitorConfig::default());
        poet.record(TraceId::new(0), EventKind::Unary, "a", "");
        for i in 0..noise {
            poet.record(TraceId::new(1), EventKind::Unary, "noise", i.to_string());
        }
        poet.record(TraceId::new(0), EventKind::Unary, "b", "");
        for e in poet.store().iter_arrival() {
            let _ = monitor.observe(e);
        }
        (monitor.stats().nodes, monitor.stats().candidates)
    };
    assert_eq!(run(0), run(10_000));
}
